//! The simulated CMP: cores + shared L2 + memory, with measurement windows.

use std::sync::atomic::{AtomicBool, Ordering};

use vpc_cache::{L2Utilization, SgbStats, SharedL2};
use vpc_cpu::Core;
use vpc_sim::{Cycle, ThreadId};

use crate::config::{CmpConfig, WorkloadSpec};

/// Process-wide default for quiescence-aware cycle skipping. On by
/// default; the experiment binaries' `--no-skip` escape hatch clears it.
static SKIP_BY_DEFAULT: AtomicBool = AtomicBool::new(true);

/// Sets the process-wide default for quiescence-aware cycle skipping.
/// Systems built afterwards capture this setting; systems that already
/// exist are unaffected. Thread-safe (the parallel experiment pool builds
/// systems from worker threads).
pub fn set_cycle_skipping_default(enabled: bool) {
    SKIP_BY_DEFAULT.store(enabled, Ordering::SeqCst);
}

/// The current process-wide default for quiescence-aware cycle skipping.
pub fn cycle_skipping_default() -> bool {
    SKIP_BY_DEFAULT.load(Ordering::SeqCst)
}

/// Counter baseline captured at the start of a measurement window.
#[derive(Debug, Clone)]
pub struct Snapshot {
    at: Cycle,
    retired: Vec<u64>,
    tag_busy: u64,
    data_busy: u64,
    bus_busy: u64,
    thread_data_busy: Vec<u64>,
    ports: Vec<SgbStats>,
}

/// Per-window measurements: the quantities the paper's figures plot.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Window length in processor cycles.
    pub cycles: Cycle,
    /// Instructions per cycle, per thread.
    pub ipc: Vec<f64>,
    /// Shared-resource utilization over the window.
    pub util: L2Utilization,
    /// Data-array utilization attributable to each thread (Figure 9's
    /// per-thread utilization bars).
    pub data_util_per_thread: Vec<f64>,
    /// Fraction of L2 requests that are writes, per thread (Figure 7).
    pub l2_write_frac: Vec<f64>,
    /// Store gathering rate, per thread (Figure 7).
    pub gathering_rate: Vec<f64>,
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "measured {} cycles", self.cycles)?;
        for (i, ipc) in self.ipc.iter().enumerate() {
            writeln!(
                f,
                "  T{i}: IPC {ipc:.3}, data-array share {:.1}%, L2 writes {:.0}%, gathering {:.0}%",
                self.data_util_per_thread[i] * 100.0,
                self.l2_write_frac[i] * 100.0,
                self.gathering_rate[i] * 100.0,
            )?;
        }
        write!(
            f,
            "  utilization: data {:.1}%, bus {:.1}%, tag {:.1}%",
            self.util.data_array * 100.0,
            self.util.data_bus * 100.0,
            self.util.tag_array * 100.0
        )
    }
}

/// The simulated CMP system.
#[derive(Debug)]
pub struct CmpSystem {
    cores: Vec<Core>,
    l2: SharedL2,
    now: Cycle,
    /// Whether [`CmpSystem::run`] may fast-forward through quiescent
    /// regions (captured from [`cycle_skipping_default`] at construction).
    skip_enabled: bool,
}

impl CmpSystem {
    /// Builds a system running `workloads[i]` on processor `i`.
    ///
    /// # Panics
    ///
    /// Panics if the number of workloads does not match
    /// `config.processors`.
    pub fn new(config: CmpConfig, workloads: &[WorkloadSpec]) -> CmpSystem {
        let cores = vec![config.core; workloads.len()];
        CmpSystem::with_core_configs(config, &cores, workloads)
    }

    /// Builds a system from already-instantiated workloads (e.g.
    /// [`vpc_workloads::TraceWorkload`]s loaded from files), one per
    /// processor.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `config.processors` workloads are given.
    pub fn with_workloads(
        config: CmpConfig,
        workloads: Vec<Box<dyn vpc_cpu::Workload>>,
    ) -> CmpSystem {
        assert_eq!(workloads.len(), config.processors, "one workload per processor required");
        let cores = workloads
            .into_iter()
            .enumerate()
            .map(|(i, w)| Core::new(config.core, ThreadId(i as u8), w))
            .collect();
        let l2 =
            SharedL2::with_channel_mode(config.l2.clone(), config.mem, config.channels.clone());
        CmpSystem { cores, l2, now: 0, skip_enabled: cycle_skipping_default() }
    }

    /// Builds a system with heterogeneous cores: `core_configs[i]` runs
    /// `workloads[i]` (e.g. one core prefetches while the others do not).
    ///
    /// # Panics
    ///
    /// Panics unless both slices have `config.processors` entries.
    pub fn with_core_configs(
        config: CmpConfig,
        core_configs: &[vpc_cpu::CoreConfig],
        workloads: &[WorkloadSpec],
    ) -> CmpSystem {
        assert_eq!(workloads.len(), config.processors, "one workload per processor required");
        assert_eq!(core_configs.len(), config.processors, "one core config per processor required");
        let cores = workloads
            .iter()
            .zip(core_configs)
            .enumerate()
            .map(|(i, (w, core_cfg))| {
                let thread = ThreadId(i as u8);
                Core::new(*core_cfg, thread, w.build(thread))
            })
            .collect();
        let l2 =
            SharedL2::with_channel_mode(config.l2.clone(), config.mem, config.channels.clone());
        CmpSystem { cores, l2, now: 0, skip_enabled: cycle_skipping_default() }
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the whole system by `cycles` processor cycles.
    ///
    /// With cycle skipping enabled (the default), after each real tick the
    /// system asks every component for its next-activity cycle and, when
    /// the minimum lies beyond the next cycle, fast-forwards straight to
    /// it — advancing the cores' per-tick stall counters arithmetically so
    /// every statistic matches the naive loop exactly. Output is
    /// byte-identical to [`CmpSystem::run_reference`] (see `DESIGN.md`
    /// §10 and the `skip_equivalence` property tests).
    pub fn run(&mut self, cycles: Cycle) {
        if !self.skip_enabled {
            self.run_reference(cycles);
            return;
        }
        let end = self.now + cycles;
        // Exponential backoff on failed skip attempts: when the scan
        // concludes "next activity is the very next cycle", re-scanning
        // immediately is pure overhead, so double the naive-tick stretch
        // before trying again (capped). This is a scheduling heuristic
        // only — whether a cycle is reached by ticking or by a skip
        // attempt that found nothing, the simulated history is identical.
        let mut backoff: Cycle = 0;
        let mut failures: u32 = 0;
        while self.now < end {
            for core in &mut self.cores {
                core.tick(self.now, &mut self.l2);
            }
            self.l2.tick(self.now);
            while let Some(resp) = self.l2.pop_response(self.now) {
                self.cores[resp.thread.index()].on_l2_response(resp.line, self.now);
            }
            if backoff > 0 {
                backoff -= 1;
                self.now += 1;
                continue;
            }
            // Cores first, cheapest check leading: any core acting on the
            // very next cycle caps the target at now + 1, making the much
            // pricier L2/memory scan pointless — skip it entirely. This
            // keeps the protocol's overhead negligible while cores run;
            // the full scan only happens once every core is stalled.
            let horizon = self.now + 1;
            let mut na: Option<Cycle> = None;
            for core in &self.cores {
                if let Some(c) = core.next_activity(self.now, &self.l2) {
                    na = Some(na.map_or(c, |b| b.min(c)));
                    if c == horizon {
                        break;
                    }
                }
            }
            if na != Some(horizon) {
                if let Some(c) = self.l2.next_activity(self.now) {
                    na = Some(na.map_or(c, |b| b.min(c)));
                }
            }
            // A fully quiescent system (na == None) sleeps to the end of
            // the requested span; new input can only come from a caller.
            let target = na.unwrap_or(end).clamp(horizon, end);
            // Only engage for skips long enough to beat the cost of the
            // scan that found them; a shorter window is ticked naively
            // (identical history either way) and counts toward backoff.
            if target > self.now + 8 || (target > horizon && target == end) {
                for core in &mut self.cores {
                    core.fast_forward(self.now, target);
                }
                failures = 0;
                self.now = target;
            } else {
                failures = (failures + 1).min(6);
                backoff = 1 << failures; // 2, 4, ... capped at 64
                self.now += 1;
            }
        }
    }

    /// Advances the whole system by `cycles` with the naive
    /// tick-every-cycle loop, never skipping — the reference the
    /// quiescence property tests compare [`CmpSystem::run`] against.
    pub fn run_reference(&mut self, cycles: Cycle) {
        let end = self.now + cycles;
        while self.now < end {
            for core in &mut self.cores {
                core.tick(self.now, &mut self.l2);
            }
            self.l2.tick(self.now);
            while let Some(resp) = self.l2.pop_response(self.now) {
                self.cores[resp.thread.index()].on_l2_response(resp.line, self.now);
            }
            self.now += 1;
        }
    }

    /// Enables or disables quiescence-aware cycle skipping for this
    /// system, overriding the process-wide default captured at
    /// construction.
    pub fn set_cycle_skipping(&mut self, enabled: bool) {
        self.skip_enabled = enabled;
    }

    /// Captures a counter baseline for a measurement window.
    pub fn snapshot(&self) -> Snapshot {
        let (tag_busy, data_busy, bus_busy) = self.l2.busy_cycles();
        Snapshot {
            at: self.now,
            retired: self.cores.iter().map(Core::retired).collect(),
            tag_busy,
            data_busy,
            bus_busy,
            thread_data_busy: (0..self.cores.len())
                .map(|t| self.l2.thread_data_busy(ThreadId(t as u8)))
                .collect(),
            ports: (0..self.cores.len()).map(|t| self.l2.port_stats(ThreadId(t as u8))).collect(),
        }
    }

    /// Measures activity since `since` (typically taken after a warm-up
    /// run), yielding the figures' quantities.
    pub fn measure(&self, since: &Snapshot) -> Measurement {
        let cycles = self.now - since.at;
        let banks = self.l2.config().banks as u64;
        let window = (cycles * banks).max(1);
        let busy = self.l2.busy_cycles();
        let util = L2Utilization {
            tag_array: (busy.0 - since.tag_busy) as f64 / window as f64,
            data_array: (busy.1 - since.data_busy) as f64 / window as f64,
            data_bus: (busy.2 - since.bus_busy) as f64 / window as f64,
        };
        let mut ipc = Vec::new();
        let mut write_frac = Vec::new();
        let mut gathering = Vec::new();
        let mut data_util_per_thread = Vec::new();
        for (i, core) in self.cores.iter().enumerate() {
            ipc.push((core.retired() - since.retired[i]) as f64 / cycles.max(1) as f64);
            let busy = self.l2.thread_data_busy(ThreadId(i as u8)) - since.thread_data_busy[i];
            data_util_per_thread.push(busy as f64 / window as f64);
            let port = self.l2.port_stats(ThreadId(i as u8));
            let writes = port.writes_out.get() - since.ports[i].writes_out.get();
            let loads = port.loads_out.get() - since.ports[i].loads_out.get();
            let stores_in = port.stores_in.get() - since.ports[i].stores_in.get();
            let gathered = port.stores_gathered.get() - since.ports[i].stores_gathered.get();
            write_frac.push(if writes + loads == 0 {
                0.0
            } else {
                writes as f64 / (writes + loads) as f64
            });
            gathering.push(if stores_in == 0 { 0.0 } else { gathered as f64 / stores_in as f64 });
        }
        Measurement {
            cycles,
            ipc,
            util,
            data_util_per_thread,
            l2_write_frac: write_frac,
            gathering_rate: gathering,
        }
    }

    /// Convenience: warm up, then measure a window.
    pub fn run_measured(&mut self, warmup: Cycle, window: Cycle) -> Measurement {
        self.run(warmup);
        let snap = self.snapshot();
        self.run(window);
        self.measure(&snap)
    }

    /// Advances the system by `cycles`, feeding the data-array service
    /// each thread received in every ledger-window-sized chunk into
    /// `ledger` (capacity per window = window cycles × banks, the same
    /// denominator as [`CmpSystem::measure`]). A trailing partial window
    /// shorter than [`crate::metrics::QosLedger::window`] is not
    /// recorded.
    pub fn run_with_ledger(&mut self, cycles: Cycle, ledger: &mut crate::metrics::QosLedger) {
        assert_eq!(ledger.threads(), self.cores.len(), "one ledger entry per thread");
        let window = ledger.window().max(1);
        let banks = self.l2.config().banks as u64;
        let mut remaining = cycles;
        while remaining >= window {
            let before: Vec<u64> = (0..self.cores.len())
                .map(|t| self.l2.thread_data_busy(ThreadId(t as u8)))
                .collect();
            self.run(window);
            let service: Vec<u64> = (0..self.cores.len())
                .map(|t| self.l2.thread_data_busy(ThreadId(t as u8)) - before[t])
                .collect();
            ledger.record_window(&service, window * banks);
            remaining -= window;
        }
        self.run(remaining);
    }

    /// IPC of `thread` since time zero.
    pub fn ipc(&self, thread: ThreadId) -> f64 {
        self.cores[thread.index()].ipc(self.now)
    }

    /// The shared L2 (for inspection).
    pub fn l2(&self) -> &SharedL2 {
        &self.l2
    }

    /// The core running thread `thread`.
    pub fn core(&self, thread: ThreadId) -> &Core {
        &self.cores[thread.index()]
    }

    /// Writes `thread`'s VPC control registers: bandwidth share `beta` on
    /// every bank's arbiters and capacity share `alpha` as a way quota.
    /// Returns `false` when the machine was built without QoS mechanisms.
    pub fn reconfigure_thread(
        &mut self,
        thread: ThreadId,
        beta: vpc_sim::Share,
        alpha: vpc_sim::Share,
    ) -> bool {
        self.l2.reconfigure(thread, beta, alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorkloadSpec;

    fn quick_config(threads: usize) -> CmpConfig {
        let mut cfg = CmpConfig::table1_with_threads(threads);
        cfg.l2.total_sets = 512; // lighter for tests
        cfg
    }

    #[test]
    fn loads_alone_saturates_two_banks() {
        let cfg = quick_config(1);
        let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads]);
        let m = sys.run_measured(20_000, 60_000);
        assert!(
            m.util.data_array > 0.85,
            "Loads should nearly saturate 2 banks' data arrays: {:?}",
            m.util
        );
        // Figure 5: data bus utilization equals data array utilization for
        // the Loads benchmark (8-cycle read, 8-cycle line transfer).
        assert!(
            (m.util.data_array - m.util.data_bus).abs() < 0.1,
            "data bus should track data array for Loads: {:?}",
            m.util
        );
        assert!(m.ipc[0] > 0.2, "Loads IPC should approach 0.3: {}", m.ipc[0]);
    }

    #[test]
    fn stores_alone_saturates_two_banks() {
        let cfg = quick_config(1);
        let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Stores]);
        let m = sys.run_measured(20_000, 60_000);
        assert!(
            m.util.data_array > 0.85,
            "Stores should saturate 2 banks' data arrays: {:?}",
            m.util
        );
        assert!(m.gathering_rate[0] < 0.05, "Stores cannot gather (distinct lines)");
        assert!(m.l2_write_frac[0] > 0.95, "Stores is pure writes");
    }

    #[test]
    fn trace_workloads_drive_the_system() {
        let cfg = quick_config(1);
        let trace: vpc_workloads::TraceWorkload = "L 0x10\nN\nS 0x20\nB 2\n".parse().unwrap();
        let mut sys = CmpSystem::with_workloads(cfg, vec![Box::new(trace)]);
        sys.run(20_000);
        assert!(sys.core(ThreadId(0)).retired() > 1000, "trace replays in a loop");
    }

    #[test]
    fn measurement_display_is_complete() {
        let cfg = quick_config(2);
        let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Idle]);
        let m = sys.run_measured(2_000, 4_000);
        let text = m.to_string();
        assert!(text.contains("T0:") && text.contains("T1:"));
        assert!(text.contains("utilization"));
    }

    #[test]
    fn measurement_window_excludes_warmup() {
        let cfg = quick_config(1);
        let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Idle]);
        sys.run(1000);
        let snap = sys.snapshot();
        sys.run(1000);
        let m = sys.measure(&snap);
        assert_eq!(m.cycles, 1000);
        // Idle workload: high IPC, no L2 traffic.
        assert!(m.ipc[0] > 4.0);
        assert_eq!(m.util.data_array, 0.0);
    }
}
