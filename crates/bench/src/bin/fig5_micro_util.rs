//! Figure 5: microbenchmark L2 utilization vs. number of banks.

use std::time::Instant;

use vpc::experiments::fig5;
use vpc::prelude::*;
use vpc::report::{to_json, Fig5Report};

fn main() {
    let budget = vpc_bench::budget_from_args();
    let jobs = vpc_bench::jobs_from_args();
    let start = Instant::now();
    let result = fig5::run(&CmpConfig::table1(), budget);
    let wall = start.elapsed();
    if vpc_bench::json_requested() {
        println!("{}", to_json(&Fig5Report::from(&result)));
    } else {
        vpc_bench::header("Figure 5", budget);
        println!("{result}");
    }
    vpc_bench::report_timings("fig5", jobs, wall);
}
