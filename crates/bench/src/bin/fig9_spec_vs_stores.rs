//! Figure 9: SPEC subject thread vs. three Stores background threads.

use std::time::Instant;

use vpc::experiments::fig9;
use vpc::prelude::*;
use vpc::report::{to_json, Fig9Report};
use vpc_workloads::SPEC_NAMES;

fn main() {
    let budget = vpc_bench::budget_from_args();
    let jobs = vpc_bench::jobs_from_args();
    let trace_path = vpc_bench::trace_from_args();
    let start = Instant::now();
    let result = fig9::run(&CmpConfig::table1(), &SPEC_NAMES, budget);
    let wall = start.elapsed();
    if vpc_bench::json_requested() {
        println!("{}", to_json(&Fig9Report::from(&result)));
    } else {
        vpc_bench::header("Figure 9", budget);
        println!("{result}");
    }
    vpc_bench::report_timings("fig9", jobs, wall);
    if let Some(path) = &trace_path {
        vpc_bench::write_job_traces(path);
    }
}
