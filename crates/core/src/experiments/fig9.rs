//! Figure 9: a SPEC subject thread against three aggressive Stores
//! background threads.
//!
//! The subject runs on processor 1 with VPC bandwidth share
//! `beta_1 ∈ {0.25, 0.5, 1.0}` (leftover split equally among the Stores
//! threads); the FCFS baseline shows how badly an unmanaged cache lets the
//! background traffic degrade the subject. IPCs are normalized to the
//! subject's target at `beta = 1` (its private-machine performance with
//! full bandwidth and a quarter of the ways), so a value of 1.0 means "as
//! fast as the equivalent standalone machine".

use std::fmt;

use vpc_arbiters::{ArbiterPolicy, IntraThreadOrder};
use vpc_sim::exec::{self, Job};
use vpc_sim::Share;

use crate::config::{CmpConfig, WorkloadSpec};
use crate::experiments::{pct, RunBudget};
use crate::system::CmpSystem;
use crate::target::target_ipc;

/// The subject's results for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Subject benchmark.
    pub benchmark: &'static str,
    /// Subject IPC under FCFS with the three Stores threads.
    pub fcfs_norm: f64,
    /// Subject normalized IPC under VPC with `beta_1 = 1/4`.
    pub vpc25_norm: f64,
    /// ... `beta_1 = 1/2`.
    pub vpc50_norm: f64,
    /// ... `beta_1 = 1`.
    pub vpc100_norm: f64,
    /// Target (normalized) for `beta_1 = 1/4` — the QoS floor the VPC
    /// configuration must meet.
    pub target25_norm: f64,
    /// Target (normalized) for `beta_1 = 1/2`.
    pub target50_norm: f64,
    /// Subject's data-array utilization under FCFS.
    pub fcfs_util: f64,
    /// Subject's data-array utilization at `beta_1 = 1/4` (VPC).
    pub vpc25_util: f64,
    /// Subject's data-array utilization at `beta_1 = 1/2` (VPC).
    pub vpc50_util: f64,
    /// Subject's data-array utilization at `beta_1 = 1` (VPC).
    pub vpc100_util: f64,
}

/// The Figure 9 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Result {
    /// One row per subject benchmark.
    pub rows: Vec<Fig9Row>,
}

impl Fig9Result {
    /// Finds a benchmark's row.
    pub fn row(&self, benchmark: &str) -> Option<&Fig9Row> {
        self.rows.iter().find(|r| r.benchmark == benchmark)
    }

    /// Fraction of rows whose VPC configurations meet their targets
    /// (within `slack`, e.g. 0.05 for 5%).
    pub fn qos_met_fraction(&self, slack: f64) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let met = self
            .rows
            .iter()
            .filter(|r| {
                r.vpc25_norm >= r.target25_norm * (1.0 - slack)
                    && r.vpc50_norm >= r.target50_norm * (1.0 - slack)
                    && r.vpc100_norm >= 1.0 - slack
            })
            .count();
        met as f64 / self.rows.len() as f64
    }
}

impl fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9: SPEC subject vs 3x Stores — normalized IPC (1.0 = standalone beta=1 target)"
        )?;
        writeln!(
            f,
            "{:<10} {:>8} {:>9} {:>9} {:>9} {:>10} {:>10}",
            "subject", "FCFS", "VPC 25%", "VPC 50%", "VPC 100%", "target25", "target50"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>8.3} {:>9.3} {:>9.3} {:>9.3} {:>10.3} {:>10.3}   util {:>4.0}/{:>3.0}/{:>3.0}/{:>3.0}%",
                r.benchmark,
                r.fcfs_norm,
                r.vpc25_norm,
                r.vpc50_norm,
                r.vpc100_norm,
                r.target25_norm,
                r.target50_norm,
                r.fcfs_util * 100.0,
                r.vpc25_util * 100.0,
                r.vpc50_util * 100.0,
                r.vpc100_util * 100.0,
            )?;
        }
        writeln!(f, "QoS targets met (5% slack): {}", pct(self.qos_met_fraction(0.05)))
    }
}

/// Runs the subject benchmark against three Stores threads under an
/// arbitrary arbiter policy, returning the subject's raw IPC.
pub fn run_subject_with(
    base: &CmpConfig,
    benchmark: &'static str,
    arbiter: ArbiterPolicy,
    budget: RunBudget,
) -> f64 {
    run_subject(base, benchmark, arbiter, budget)
}

/// Runs the subject benchmark against three Stores threads with the given
/// subject bandwidth share, returning the subject's raw IPC.
pub fn run_subject(
    base: &CmpConfig,
    benchmark: &'static str,
    arbiter: ArbiterPolicy,
    budget: RunBudget,
) -> f64 {
    run_subject_detailed(base, benchmark, arbiter, budget).0
}

/// Like [`run_subject`], also returning the subject's share of the
/// data-array utilization (the second series of the paper's Figure 9).
pub fn run_subject_detailed(
    base: &CmpConfig,
    benchmark: &'static str,
    arbiter: ArbiterPolicy,
    budget: RunBudget,
) -> (f64, f64) {
    let mut cfg = base.clone().with_arbiter(arbiter);
    cfg.processors = 4;
    cfg.l2.threads = 4;
    let workloads = [
        WorkloadSpec::Spec(benchmark),
        WorkloadSpec::Stores,
        WorkloadSpec::Stores,
        WorkloadSpec::Stores,
    ];
    let mut sys = CmpSystem::new(cfg, &workloads);
    let m = sys.run_measured(budget.warmup, budget.window);
    (m.ipc[0], m.data_util_per_thread[0])
}

/// A VPC policy giving the subject `beta_1 = num/den` and splitting the
/// remainder equally among the three background threads.
pub fn subject_share_policy(num: u32, den: u32) -> ArbiterPolicy {
    let subject = Share::new(num, den).expect("valid subject share");
    let rest = den - num;
    // Each background thread gets (rest/den)/3 = rest/(3*den).
    let bg = Share::new(rest, 3 * den).expect("valid background share");
    ArbiterPolicy::Vpc { shares: vec![subject, bg, bg, bg], order: IntraThreadOrder::ReadOverWrite }
}

/// The number of independent simulations behind one Figure 9 row: three
/// private-machine targets plus four co-scheduled runs.
const CELLS_PER_ROW: usize = 7;

/// Runs the full Figure 9 series for the given benchmarks (pass
/// [`vpc_workloads::SPEC_NAMES`] for the paper's full set). Every target
/// and every per-share run is an independent simulation, so the whole
/// `benchmarks x 7` grid runs as one parallel job batch.
pub fn run(base: &CmpConfig, benchmarks: &[&'static str], budget: RunBudget) -> Fig9Result {
    let quarter = Share::new(1, 4).expect("alpha = 1/4");
    // Each cell reports (ipc, data-array utilization); targets have no
    // utilization series and report 0.0 there.
    let mut jobs: Vec<Job<'_, (f64, f64)>> = Vec::new();
    for &benchmark in benchmarks {
        let spec = WorkloadSpec::Spec(benchmark);
        let target_cells = [("target100", Share::FULL), ("target50", Share::new(1, 2).unwrap())];
        for (label, beta) in target_cells {
            jobs.push(Job::new(format!("fig9/{benchmark}/{label}"), move || {
                (target_ipc(base, spec, beta, quarter, budget.warmup, budget.window), 0.0)
            }));
        }
        jobs.push(Job::new(format!("fig9/{benchmark}/target25"), move || {
            (target_ipc(base, spec, quarter, quarter, budget.warmup, budget.window), 0.0)
        }));
        jobs.push(Job::new(format!("fig9/{benchmark}/fcfs"), move || {
            run_subject_detailed(base, benchmark, ArbiterPolicy::Fcfs, budget)
        }));
        for (label, num, den) in [("vpc25", 1u32, 4u32), ("vpc50", 1, 2), ("vpc100", 1, 1)] {
            jobs.push(Job::new(format!("fig9/{benchmark}/{label}"), move || {
                run_subject_detailed(base, benchmark, subject_share_policy(num, den), budget)
            }));
        }
    }

    let cells = exec::map_indexed(jobs, exec::jobs());
    let rows = benchmarks
        .iter()
        .zip(cells.chunks_exact(CELLS_PER_ROW))
        .map(|(&benchmark, cell)| {
            let [t100, t50, t25, fcfs, vpc25, vpc50, vpc100] =
                <[(f64, f64); CELLS_PER_ROW]>::try_from(cell).expect("7 cells per row");
            let norm = |ipc: f64| if t100.0 > 0.0 { ipc / t100.0 } else { 0.0 };
            Fig9Row {
                benchmark,
                fcfs_norm: norm(fcfs.0),
                vpc25_norm: norm(vpc25.0),
                vpc50_norm: norm(vpc50.0),
                vpc100_norm: norm(vpc100.0),
                target25_norm: norm(t25.0),
                target50_norm: norm(t50.0),
                fcfs_util: fcfs.1,
                vpc25_util: vpc25.1,
                vpc50_util: vpc50.1,
                vpc100_util: vpc100.1,
            }
        })
        .collect();
    Fig9Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> CmpConfig {
        let mut base = CmpConfig::table1();
        base.l2.total_sets = 2048;
        base
    }

    #[test]
    fn vpc_protects_subject_from_stores_background() {
        let base = quick_base();
        let budget = RunBudget::quick();
        let r = run(&base, &["art"], budget);
        let row = r.row("art").unwrap();
        // Under VPC the subject's normalized IPC grows with its share and
        // meets the QoS floor; FCFS leaves it below its VPC-100% level.
        assert!(
            row.vpc100_norm >= row.vpc50_norm * 0.95 && row.vpc50_norm >= row.vpc25_norm * 0.95,
            "performance should be monotone in share: {row:?}"
        );
        assert!(row.vpc25_norm >= row.target25_norm * 0.9, "VPC 25% must meet its target: {row:?}");
        assert!(
            row.fcfs_norm < row.vpc100_norm,
            "FCFS lets the background degrade the subject: {row:?}"
        );
    }
}
