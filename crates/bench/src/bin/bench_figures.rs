//! One benchmark per table/figure of the paper: each scenario runs a
//! reduced-budget version of the corresponding experiment end to end, so
//! the bench both regenerates every result's machinery and tracks the
//! harness's performance over time. The full-length runs (paper-scale
//! windows, all benchmarks/mixes) live in the other `vpc-bench` binaries.
//!
//! Run with `--json` for a machine-readable `BENCH_*.json` baseline, and
//! `--quick` for a fast smoke pass.

use std::hint::black_box;
use std::time::Instant;

use vpc::experiments::{ablations, fig10, fig4, fig5, fig6, fig7, fig8, fig9, RunBudget};
use vpc::prelude::*;
use vpc_bench::harness::Suite;

fn small_base() -> CmpConfig {
    let mut cfg = CmpConfig::table1();
    cfg.l2.total_sets = 1024;
    cfg
}

fn tiny() -> RunBudget {
    RunBudget { warmup: 4_000, window: 12_000 }
}

fn main() {
    let mut suite = Suite::from_args("figures");
    let jobs = vpc_bench::jobs_from_args();
    let start = Instant::now();
    let base = small_base();

    suite.bench("fig4_bank_timing", 100, || black_box(fig4::run(&base)));
    suite.bench("fig5_micro_utilization", 30, || black_box(fig5::run(&base, tiny())));
    // One representative benchmark per weight class keeps the bench quick.
    suite.bench("fig6_spec_utilization", 30, || {
        for name in ["art", "gcc", "sixtrack"] {
            black_box(fig6::run_one(&base, name, tiny()));
        }
    });
    suite.bench("fig7_store_gathering", 30, || {
        let mut cfg = base.clone();
        cfg.processors = 1;
        cfg.l2.threads = 1;
        let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Spec("mesa")]);
        black_box(sys.run_measured(tiny().warmup, tiny().window).gathering_rate[0])
    });
    // The full 18-benchmark table:
    suite.bench("fig7_full/all_benchmarks", 10, || black_box(fig7::run(&base, tiny())));
    suite.bench("fig8/loads_stores_sweep", 10, || black_box(fig8::run(&base, tiny())));
    suite.bench("fig9/subject_vs_stores", 10, || black_box(fig9::run(&base, &["gcc"], tiny())));
    suite.bench("fig10/heterogeneous_mix", 10, || {
        black_box(fig10::run(&base, &[["gcc", "gzip", "twolf", "ammp"]], tiny()))
    });
    suite.bench("ablations/work_conservation", 10, || {
        black_box(ablations::work_conservation(&base, tiny()))
    });

    suite.finish();
    vpc_bench::report_timings("bench_figures", jobs, start.elapsed());
}
