//! Ablations: reordering, capacity manager, preemption latency, work
//! conservation.

use vpc::experiments::ablations;
use vpc::prelude::*;

fn main() {
    let budget = vpc_bench::budget_from_args();
    vpc_bench::header("Ablations", budget);
    let base = CmpConfig::table1();
    println!("{}", ablations::reorder(&base, budget));
    println!("{}", ablations::capacity(&base, budget));
    println!("{}", ablations::preemption(&base, budget));
    println!("{}", ablations::memory_fq(&base, budget));
    println!("{}", ablations::prefetch(&base, budget));
    println!("{}", ablations::fairness_policies(&base, budget));
    println!("{}", ablations::scaling(&base, budget));
    println!("{}", ablations::work_conservation(&base, budget));
}
