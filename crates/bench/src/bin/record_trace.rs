//! Records any built-in workload into the trace text format on stdout, so
//! traces can be inspected, edited, and replayed through
//! `vpc_workloads::TraceWorkload`.
//!
//! ```sh
//! cargo run --release -p vpc-bench --bin record_trace -- art 10000 > art.trace
//! ```

use std::process::ExitCode;

use vpc_cpu::Workload;
use vpc_sim::ThreadId;
use vpc_workloads::{loads_micro, record, spec, stores_micro, SPEC_NAMES};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "art".into());
    let count: usize = match args.next().unwrap_or_else(|| "10000".into()).parse() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: bad op count: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut workload: Box<dyn Workload> = match name.as_str() {
        "Loads" | "loads" => Box::new(loads_micro(ThreadId(0))),
        "Stores" | "stores" => Box::new(stores_micro(ThreadId(0))),
        other => match spec::workload(other, ThreadId(0)) {
            Some(w) => Box::new(w),
            None => {
                eprintln!(
                    "error: unknown workload {other:?}; try Loads, Stores, or one of {SPEC_NAMES:?}"
                );
                return ExitCode::FAILURE;
            }
        },
    };
    print!(
        "# {count} ops of {name}, recorded by record_trace\n{}",
        record(workload.as_mut(), count)
    );
    ExitCode::SUCCESS
}
