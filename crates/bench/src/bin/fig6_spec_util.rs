//! Figure 6: SPEC solo L2 utilization.

use std::time::Instant;

use vpc::experiments::fig6;
use vpc::prelude::*;
use vpc::report::{to_json, Fig6Report};

fn main() {
    let budget = vpc_bench::budget_from_args();
    let jobs = vpc_bench::jobs_from_args();
    let trace_path = vpc_bench::trace_from_args();
    let start = Instant::now();
    let result = fig6::run(&CmpConfig::table1(), budget);
    let wall = start.elapsed();
    if vpc_bench::json_requested() {
        println!("{}", to_json(&Fig6Report::from(&result)));
    } else {
        vpc_bench::header("Figure 6", budget);
        println!("{result}");
    }
    vpc_bench::report_timings("fig6", jobs, wall);
    if let Some(path) = &trace_path {
        vpc_bench::write_job_traces(path);
    }
}
