//! The on-chip memory controller: per-thread buffers and channels.

use std::collections::VecDeque;

use vpc_sim::trace::{self, EventData, ResourceId, TraceEvent};
use vpc_sim::{AccessKind, Cycle, LineAddr, Share, ThreadId};

use crate::channel::DramChannel;
use crate::fq::FqClock;
use crate::timing::MemConfig;

/// How threads map onto SDRAM channels.
///
/// The paper's evaluation isolates cache sharing with one private channel
/// per thread (§5.1); the VPM framework also covers the shared-channel
/// case, scheduled either FCFS (no QoS) or by the fair-queuing memory
/// scheduler the paper builds on (§2.1).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ChannelMode {
    /// One private channel per thread (Table 1's configuration).
    #[default]
    PerThread,
    /// A single channel shared by all threads, scheduled oldest-first.
    SharedFcfs,
    /// A single shared channel under fair queuing with per-thread
    /// bandwidth shares.
    SharedFq {
        /// Share of channel bandwidth per thread; missing entries are zero.
        shares: Vec<Share>,
    },
}

/// A line-granularity request from the L2 cache to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Owning hardware thread; selects the (private) channel.
    pub thread: ThreadId,
    /// Line to fetch or write back.
    pub line: LineAddr,
    /// Fetch (read) or writeback (write).
    pub kind: AccessKind,
    /// Opaque token returned with the response (reads only).
    pub token: u64,
}

/// A completed memory read returning a line to the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Thread the line belongs to.
    pub thread: ThreadId,
    /// The fetched line.
    pub line: LineAddr,
    /// Token from the originating [`MemRequest`].
    pub token: u64,
}

#[derive(Debug)]
struct ThreadQueues {
    reads: VecDeque<(u64, MemRequest)>,
    writes: VecDeque<(u64, MemRequest)>,
}

/// The on-chip memory controller (§5.1): per-thread transaction buffers (16
/// read entries), write buffers (8 entries), closed page policy, one private
/// channel per thread.
///
/// Reads have priority; buffered writes drain when the write buffer crosses
/// its threshold or the thread has no pending reads. Responses surface
/// through [`MemoryController::pop_response`] after [`MemoryController::tick`].
#[derive(Debug)]
pub struct MemoryController {
    config: MemConfig,
    mode: ChannelMode,
    channels: Vec<DramChannel>,
    queues: Vec<ThreadQueues>,
    responses: VecDeque<MemResponse>,
    /// Tokens completed by channels, pending conversion to responses.
    scratch: Vec<u64>,
    /// Reused candidate list for shared-channel scheduling, so the
    /// per-tick scan allocates nothing in steady state.
    cand_scratch: Vec<(u64, MemRequest)>,
    /// Reused `(thread, estimate)` list handed to the fair-queuing clock.
    fq_scratch: Vec<(ThreadId, u64)>,
    /// (token -> (thread, line)) for in-flight reads.
    pending_reads: Vec<(u64, ThreadId, LineAddr)>,
    /// Fair-queuing state for [`ChannelMode::SharedFq`].
    fq: Option<FqClock>,
    /// Arrival sequence numbers for shared-channel FCFS ordering.
    next_seq: u64,
}

impl MemoryController {
    /// Creates a controller with one private channel per thread.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(config: MemConfig, threads: usize) -> MemoryController {
        MemoryController::with_mode(config, threads, ChannelMode::PerThread)
    }

    /// Creates a controller with the given channel topology.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_mode(config: MemConfig, threads: usize, mode: ChannelMode) -> MemoryController {
        assert!(threads > 0, "at least one thread required");
        let (channels, fq) = match &mode {
            ChannelMode::PerThread => {
                ((0..threads).map(|_| DramChannel::new(config)).collect::<Vec<_>>(), None)
            }
            ChannelMode::SharedFcfs => (vec![DramChannel::new(config)], None),
            ChannelMode::SharedFq { shares } => {
                (vec![DramChannel::new(config)], Some(FqClock::new(threads, shares)))
            }
        };
        MemoryController {
            channels,
            queues: (0..threads)
                .map(|_| ThreadQueues { reads: VecDeque::new(), writes: VecDeque::new() })
                .collect(),
            responses: VecDeque::new(),
            scratch: Vec::new(),
            cand_scratch: Vec::new(),
            fq_scratch: Vec::new(),
            pending_reads: Vec::new(),
            fq,
            next_seq: 0,
            config,
            mode,
        }
    }

    /// Whether `thread`'s buffer for `kind` has room.
    pub fn can_accept(&self, thread: ThreadId, kind: AccessKind) -> bool {
        let q = &self.queues[thread.index()];
        match kind {
            AccessKind::Read => q.reads.len() < self.config.transaction_buffer,
            AccessKind::Write => q.writes.len() < self.config.write_buffer,
        }
    }

    /// Buffers a request. Returns `false` (dropping nothing — the caller
    /// must retry) if the thread's buffer is full.
    pub fn enqueue(&mut self, req: MemRequest, now: Cycle) -> bool {
        if !self.can_accept(req.thread, req.kind) {
            return false;
        }
        if let Some(fq) = &mut self.fq {
            fq.on_arrival(req.thread, now);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let q = &mut self.queues[req.thread.index()];
        match req.kind {
            AccessKind::Read => q.reads.push_back((seq, req)),
            AccessKind::Write => q.writes.push_back((seq, req)),
        }
        true
    }

    /// Advances the controller one processor cycle: schedules eligible
    /// transactions onto each channel and collects completed reads.
    pub fn tick(&mut self, now: Cycle) {
        match self.mode {
            ChannelMode::PerThread => self.tick_private(now),
            ChannelMode::SharedFcfs | ChannelMode::SharedFq { .. } => self.tick_shared(now),
        }
        for c in 0..self.channels.len() {
            self.scratch.clear();
            self.channels[c].drain_completed(now, &mut self.scratch);
            for &token in &self.scratch {
                let idx = self
                    .pending_reads
                    .iter()
                    .position(|&(t0, _, _)| t0 == token)
                    .expect("completed read was pending");
                let (_, thread, line) = self.pending_reads.swap_remove(idx);
                self.responses.push_back(MemResponse { thread, line, token });
            }
        }
        // Leave all scratch buffers empty so controller state (and its
        // `Debug` rendering) never depends on how often we were ticked.
        self.scratch.clear();
    }

    /// The request thread `t` would send next, under read priority with
    /// lazy write draining.
    fn thread_candidate(&self, t: usize) -> Option<(u64, MemRequest)> {
        let q = &self.queues[t];
        let take_write = q.reads.is_empty() || q.writes.len() >= self.config.write_drain_threshold;
        if let Some(&(seq, req)) = q.reads.front() {
            let _ = take_write;
            return Some((seq, req));
        }
        if take_write {
            return q.writes.front().copied();
        }
        None
    }

    fn pop_candidate(&mut self, t: usize, kind: AccessKind) {
        let q = &mut self.queues[t];
        match kind {
            AccessKind::Read => q.reads.pop_front(),
            AccessKind::Write => q.writes.pop_front(),
        };
    }

    fn issue_on(&mut self, channel_idx: usize, req: MemRequest, now: Cycle) {
        self.pop_candidate(req.thread.index(), req.kind);
        self.channels[channel_idx].issue(req.line, req.kind, req.token, now);
        trace::emit(|| TraceEvent {
            at: now,
            data: EventData::DramIssue {
                channel: channel_idx as u16,
                thread: req.thread,
                line: req.line,
                kind: req.kind,
            },
        });
        if req.kind.is_read() {
            self.pending_reads.push((req.token, req.thread, req.line));
        }
    }

    fn tick_private(&mut self, now: Cycle) {
        for t in 0..self.channels.len() {
            if let Some((_, req)) = self.thread_candidate(t) {
                if self.channels[t].bank_available(req.line, now) {
                    self.issue_on(t, req, now);
                }
            }
        }
    }

    fn tick_shared(&mut self, now: Cycle) {
        // Admission control: keep at most one bus reservation ahead, so the
        // scheduler (not bus FIFO order) decides who goes next while the
        // data bus stays saturated.
        let t = self.config.timing;
        if self.channels[0].bus_free_at() > now + t.t_rcd + t.t_cl {
            return;
        }
        // One transaction per cycle onto the single shared channel. The
        // candidate list is a reused scratch buffer so steady-state ticks
        // allocate nothing.
        let mut candidates = std::mem::take(&mut self.cand_scratch);
        candidates.clear();
        for t in 0..self.queues.len() {
            if let Some((seq, req)) = self.thread_candidate(t) {
                if self.channels[0].bank_available(req.line, now) {
                    candidates.push((seq, req));
                }
            }
        }
        if candidates.is_empty() {
            self.cand_scratch = candidates;
            return;
        }
        let winner = match &mut self.fq {
            // Fair queuing: earliest virtual finish time first.
            Some(fq) => {
                let estimate = self.config.timing.idle_read_latency();
                let mut list = std::mem::take(&mut self.fq_scratch);
                list.clear();
                list.extend(candidates.iter().map(|(_, r)| (r.thread, estimate)));
                let w = fq.pick(&list).expect("candidates nonempty");
                list.clear();
                self.fq_scratch = list;
                w
            }
            // FCFS: oldest arrival across all threads.
            None => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, (seq, _))| *seq)
                .map(|(i, _)| i)
                .expect("candidates nonempty"),
        };
        let (_, req) = candidates[winner];
        self.issue_on(0, req, now);
        // Observability: the losing candidates were deferred this slot; a
        // fair-queued channel also reports their virtual start times.
        if trace::is_enabled() {
            for (i, (_, loser)) in candidates.iter().enumerate() {
                if i == winner {
                    continue;
                }
                let virtual_start = self.fq.as_ref().map(|fq| fq.virtual_start(loser.thread));
                trace::emit(|| TraceEvent {
                    at: now,
                    data: EventData::Defer {
                        resource: ResourceId::dram_channel(0),
                        thread: loser.thread,
                        virtual_start,
                    },
                });
            }
        }
        candidates.clear();
        self.cand_scratch = candidates;
    }

    /// The earliest cycle at which this controller can change observable
    /// state absent new [`MemoryController::enqueue`] calls: a queued
    /// response waiting to pop, an in-flight transaction completing, or a
    /// buffered request becoming schedulable. `None` when fully idle.
    ///
    /// Conservative by design: the returned cycle is never *later* than a
    /// real state change (see `DESIGN.md` §10) — an early wake-up is a
    /// harmless no-op tick.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let horizon = now + 1;
        if !self.responses.is_empty() {
            return Some(horizon);
        }
        let mut best: Option<Cycle> = None;
        let mut consider = |c: Cycle| best = Some(best.map_or(c, |b: Cycle| b.min(c)));
        for ch in &self.channels {
            if let Some(done) = ch.next_completion() {
                consider(done.max(horizon));
            }
        }
        match self.mode {
            ChannelMode::PerThread => {
                for t in 0..self.channels.len() {
                    if let Some((_, req)) = self.thread_candidate(t) {
                        consider(self.channels[t].bank_ready_at(req.line).max(horizon));
                    }
                }
            }
            ChannelMode::SharedFcfs | ChannelMode::SharedFq { .. } => {
                // Admission control re-opens once `now` catches up to the
                // bus reservation horizon; a candidate then issues when its
                // bank is also ready.
                let t = self.config.timing;
                let gate = self.channels[0].bus_free_at().saturating_sub(t.t_rcd + t.t_cl);
                for thr in 0..self.queues.len() {
                    if let Some((_, req)) = self.thread_candidate(thr) {
                        consider(self.channels[0].bank_ready_at(req.line).max(gate).max(horizon));
                    }
                }
            }
        }
        best
    }

    /// Reconfigures `thread`'s share of a shared fair-queued channel.
    /// Returns `false` in other channel modes.
    pub fn reconfigure_share(&mut self, thread: ThreadId, share: Share) -> bool {
        match &mut self.fq {
            Some(fq) => {
                fq.set_share(thread, share);
                true
            }
            None => false,
        }
    }

    /// Pops the next completed read, if any.
    pub fn pop_response(&mut self) -> Option<MemResponse> {
        self.responses.pop_front()
    }

    /// Whether any work (buffered, in flight, or unreturned) remains.
    pub fn is_idle(&self) -> bool {
        self.responses.is_empty()
            && self.pending_reads.is_empty()
            && self.queues.iter().all(|q| q.reads.is_empty() && q.writes.is_empty())
            && self.channels.iter().all(|c| c.in_flight_len() == 0)
    }

    /// Per-thread channel statistics (reads, writes, mean read latency).
    /// In shared-channel modes the single channel's aggregate statistics
    /// are returned for every thread.
    pub fn channel_stats(&self, thread: ThreadId) -> (u64, u64, f64) {
        let ch = &self.channels[thread.index().min(self.channels.len() - 1)];
        (ch.reads(), ch.writes(), ch.mean_read_latency())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(thread: u8, line: u64, token: u64) -> MemRequest {
        MemRequest { thread: ThreadId(thread), line: LineAddr(line), kind: AccessKind::Read, token }
    }

    fn write(thread: u8, line: u64, token: u64) -> MemRequest {
        MemRequest {
            thread: ThreadId(thread),
            line: LineAddr(line),
            kind: AccessKind::Write,
            token,
        }
    }

    fn run(mc: &mut MemoryController, from: Cycle, to: Cycle, out: &mut Vec<MemResponse>) {
        for now in from..to {
            mc.tick(now);
            while let Some(r) = mc.pop_response() {
                out.push(r);
            }
        }
    }

    #[test]
    fn read_completes_with_realistic_latency() {
        let mut mc = MemoryController::new(MemConfig::ddr2_800(), 1);
        assert!(mc.enqueue(read(0, 0, 7), 0));
        let mut out = Vec::new();
        run(&mut mc, 0, 200, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 7);
        let (reads, _, lat) = mc.channel_stats(ThreadId(0));
        assert_eq!(reads, 1);
        assert!((60.0..120.0).contains(&lat), "idle read latency {lat} out of range");
    }

    #[test]
    fn buffers_enforce_capacity() {
        let mut mc = MemoryController::new(MemConfig::ddr2_800(), 1);
        // tick is never called, so nothing drains.
        for i in 0..16 {
            assert!(mc.enqueue(read(0, i, i), 0));
        }
        assert!(!mc.can_accept(ThreadId(0), AccessKind::Read));
        assert!(!mc.enqueue(read(0, 99, 99), 0));
        for i in 0..8 {
            assert!(mc.enqueue(write(0, 100 + i, 0), 0));
        }
        assert!(!mc.enqueue(write(0, 200, 0), 0));
    }

    #[test]
    fn private_channels_isolate_threads() {
        // Thread 1 hammering its channel must not slow thread 0's read.
        let mut solo = MemoryController::new(MemConfig::ddr2_800(), 2);
        solo.enqueue(read(0, 0, 1), 0);
        let mut out = Vec::new();
        run(&mut solo, 0, 400, &mut out);
        let solo_done = out.len();
        assert_eq!(solo_done, 1);
        let (_, _, solo_lat) = solo.channel_stats(ThreadId(0));

        let mut shared = MemoryController::new(MemConfig::ddr2_800(), 2);
        for i in 0..16 {
            shared.enqueue(read(1, i * 7, 100 + i), 0);
        }
        shared.enqueue(read(0, 0, 1), 0);
        let mut out = Vec::new();
        run(&mut shared, 0, 400, &mut out);
        assert!(out.iter().any(|r| r.token == 1));
        let (_, _, busy_lat) = shared.channel_stats(ThreadId(0));
        assert_eq!(solo_lat, busy_lat, "private channel latency unaffected by other thread");
    }

    #[test]
    fn writes_drain_when_no_reads_pending() {
        let mut mc = MemoryController::new(MemConfig::ddr2_800(), 1);
        mc.enqueue(write(0, 0, 0), 0);
        let mut out = Vec::new();
        run(&mut mc, 0, 400, &mut out);
        assert!(out.is_empty(), "writes produce no responses");
        assert!(mc.is_idle());
        let (_, writes, _) = mc.channel_stats(ThreadId(0));
        assert_eq!(writes, 1);
    }

    #[test]
    fn reads_have_priority_over_writes() {
        let mut mc = MemoryController::new(MemConfig::ddr2_800(), 1);
        // Below-threshold writes wait while reads flow.
        mc.enqueue(write(0, 50, 0), 0);
        mc.enqueue(read(0, 1, 1), 0);
        mc.tick(0);
        let (reads, writes, _) = mc.channel_stats(ThreadId(0));
        assert_eq!((reads, writes), (1, 0), "read issued first");
    }

    #[test]
    fn bank_parallelism_beats_serialization() {
        // 16 reads to 16 different banks vs 16 reads to one bank.
        let mut parallel = MemoryController::new(MemConfig::ddr2_800(), 1);
        let banks = MemConfig::ddr2_800().total_banks() as u64;
        for i in 0..16 {
            parallel.enqueue(read(0, i, i), 0);
        }
        let mut serial = MemoryController::new(MemConfig::ddr2_800(), 1);
        for i in 0..16 {
            serial.enqueue(read(0, i * banks, i), 0);
        }
        let mut done_parallel = 0;
        let mut done_serial = 0;
        let mut out = Vec::new();
        for now in 0..1200 {
            parallel.tick(now);
            serial.tick(now);
            while parallel.pop_response().is_some() {
                done_parallel += 1;
            }
            while serial.pop_response().is_some() {
                done_serial += 1;
            }
            let _ = now;
        }
        run(&mut parallel, 1200, 1201, &mut out);
        assert!(
            done_parallel > done_serial,
            "bank-level parallelism must help ({done_parallel} vs {done_serial})"
        );
    }

    #[test]
    fn shared_fcfs_orders_across_threads() {
        let mut mc = MemoryController::with_mode(MemConfig::ddr2_800(), 2, ChannelMode::SharedFcfs);
        // Thread 1's request arrives first; different banks so both are
        // eligible immediately.
        mc.enqueue(read(1, 1, 10), 0);
        mc.enqueue(read(0, 2, 20), 0);
        let mut out = Vec::new();
        run(&mut mc, 0, 400, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].token, 10, "oldest arrival first on the shared channel");
    }

    #[test]
    fn shared_fq_divides_channel_bandwidth() {
        use vpc_sim::Share;
        // Thread 0 gets 3/4 of the channel, thread 1 gets 1/4; both keep
        // 16 reads queued. Grant counts should track the shares.
        let shares = vec![Share::new(3, 4).unwrap(), Share::new(1, 4).unwrap()];
        let mut mc =
            MemoryController::with_mode(MemConfig::ddr2_800(), 2, ChannelMode::SharedFq { shares });
        let mut served = [0u64; 2];
        let mut tokens = 100u64;
        for t in 0..2u8 {
            for i in 0..8 {
                tokens += 1;
                mc.enqueue(read(t, i * 2 + u64::from(t), tokens), 0);
            }
        }
        for now in 0..20_000u64 {
            mc.tick(now);
            while let Some(r) = mc.pop_response() {
                served[r.thread.index()] += 1;
                // Keep the queues backlogged.
                tokens += 1;
                mc.enqueue(read(r.thread.0, tokens % 64, tokens), now);
            }
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (2.2..4.0).contains(&ratio),
            "3:1 shares should give ~3:1 service, got {ratio} ({served:?})"
        );
    }

    #[test]
    fn shared_fq_reconfigures_at_runtime() {
        use vpc_sim::Share;
        let shares = vec![Share::new(1, 2).unwrap(), Share::new(1, 2).unwrap()];
        let mut mc =
            MemoryController::with_mode(MemConfig::ddr2_800(), 2, ChannelMode::SharedFq { shares });
        assert!(mc.reconfigure_share(ThreadId(0), Share::new(3, 4).unwrap()));
        let mut plain = MemoryController::new(MemConfig::ddr2_800(), 2);
        assert!(
            !plain.reconfigure_share(ThreadId(0), Share::FULL),
            "private channels have no shares"
        );
    }

    #[test]
    fn is_idle_tracks_outstanding_work() {
        let mut mc = MemoryController::new(MemConfig::ddr2_800(), 1);
        assert!(mc.is_idle());
        mc.enqueue(read(0, 0, 1), 0);
        assert!(!mc.is_idle());
        let mut out = Vec::new();
        run(&mut mc, 0, 300, &mut out);
        assert!(mc.is_idle());
    }
}
