//! Quickstart: build the paper's Table 1 CMP, run two microbenchmarks that
//! fight over the shared L2, and watch the VPC arbiters divide the cache's
//! bandwidth exactly as allocated.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vpc::prelude::*;

fn main() {
    // The paper's 2 GHz, 4-processor system (Table 1), restricted to the
    // two threads this example uses: a 16 MB, 32-way, 2-bank shared L2 at
    // half core frequency behind per-thread DDR2-800 channels.
    println!("== Virtual Private Caches: quickstart ==\n");

    // 1. The problem: under the conventional read-over-write arbiter, a
    //    thread streaming loads starves a neighbor's stores completely.
    let cfg = CmpConfig::table1_with_threads(2).with_arbiter(ArbiterPolicy::RowFcfs);
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Stores]);
    let m = sys.run_measured(30_000, 120_000);
    println!("RoW-FCFS arbiter (conventional uniprocessor policy):");
    println!("  Loads  IPC = {:.3}", m.ipc[0]);
    println!("  Stores IPC = {:.3}   <- starved by the load stream\n", m.ipc[1]);

    // 2. The fix: VPC arbiters. Give Stores 25% of every shared resource's
    //    bandwidth (tag array, data array, data bus) and Loads the rest.
    let shares = vec![Share::new(3, 4).unwrap(), Share::new(1, 4).unwrap()];
    let cfg = CmpConfig::table1_with_threads(2).with_vpc_shares(shares);
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Stores]);
    let m = sys.run_measured(30_000, 120_000);

    // The QoS reference: each thread's IPC on a *real private machine*
    // provisioned like its VPC (Section 5.3 of the paper).
    let base = CmpConfig::table1_with_threads(2);
    let half_ways = Share::new(1, 2).unwrap();
    let loads_target = target_ipc(
        &base,
        WorkloadSpec::Loads,
        Share::new(3, 4).unwrap(),
        half_ways,
        30_000,
        120_000,
    );
    let stores_target = target_ipc(
        &base,
        WorkloadSpec::Stores,
        Share::new(1, 4).unwrap(),
        half_ways,
        30_000,
        120_000,
    );

    println!("VPC arbiters (Loads 75% / Stores 25%):");
    println!("  Loads  IPC = {:.3}  (target {:.3})", m.ipc[0], loads_target);
    println!("  Stores IPC = {:.3}  (target {:.3})", m.ipc[1], stores_target);
    println!("  data array utilization = {:.0}%\n", m.util.data_array * 100.0);

    let ok = m.ipc[0] >= loads_target * 0.95 && m.ipc[1] >= stores_target * 0.95;
    println!(
        "QoS objective {}: each virtual private cache performs at least as well\n\
         as the equivalent real private cache, regardless of the other thread.",
        if ok { "MET" } else { "MISSED" }
    );
}
