//! Figure 8: Loads + Stores under RoW-FCFS, FCFS, and VPC arbiters.

use std::time::Instant;

use vpc::experiments::fig8;
use vpc::prelude::*;
use vpc::report::{to_json, Fig8Report};

fn main() {
    let budget = vpc_bench::budget_from_args();
    let jobs = vpc_bench::jobs_from_args();
    let trace_path = vpc_bench::trace_from_args();
    let start = Instant::now();
    let result = fig8::run(&CmpConfig::table1_with_threads(2), budget);
    let wall = start.elapsed();
    if vpc_bench::json_requested() {
        println!("{}", to_json(&Fig8Report::from(&result)));
    } else {
        vpc_bench::header("Figure 8", budget);
        println!("{result}");
    }
    vpc_bench::report_timings("fig8", jobs, wall);
    if let Some(path) = &trace_path {
        vpc_bench::write_job_traces(path);
    }
}
