//! A shared resource guarded by an arbiter.

use vpc_sim::trace::{self, EventData, ResourceId, TraceEvent};
use vpc_sim::{Cycle, ThreadId, UtilizationMeter, MAX_THREADS};

use crate::arbiter::Arbiter;
use crate::request::ArbRequest;

/// A non-preemptible, busy-until resource (tag array, data array, or data
/// bus) together with its arbiter and utilization meter — one of the
/// arbiter-plus-resource blocks of the paper's Figure 2b.
///
/// The owner enqueues requests as they become eligible and calls
/// [`ArbitratedResource::try_grant`] each (resource) cycle; at most one
/// request is granted per free period and the resource stays busy for the
/// request's service time.
///
/// ```
/// use vpc_arbiters::{ArbitratedResource, ArbRequest, FcfsArbiter};
/// use vpc_sim::{AccessKind, ThreadId};
///
/// let mut tag = ArbitratedResource::new(Box::new(FcfsArbiter::new()));
/// tag.enqueue(ArbRequest::new(1, ThreadId(0), AccessKind::Read, 4), 0);
/// let granted = tag.try_grant(0).unwrap();
/// assert_eq!(granted.id, 1);
/// assert!(tag.try_grant(2).is_none());  // still busy until cycle 4
/// assert!(!tag.is_busy(4));
/// ```
#[derive(Debug)]
pub struct ArbitratedResource {
    arbiter: Box<dyn Arbiter>,
    busy_until: Cycle,
    meter: UtilizationMeter,
    per_thread_busy: [u64; MAX_THREADS],
    grants: u64,
    trace_id: Option<ResourceId>,
    /// Reused by the per-grant backlog trace report so steady-state grants
    /// allocate nothing.
    backlog_scratch: Vec<(ThreadId, Option<u64>)>,
}

impl ArbitratedResource {
    /// Wraps `arbiter` around an initially idle resource.
    pub fn new(arbiter: Box<dyn Arbiter>) -> ArbitratedResource {
        ArbitratedResource {
            arbiter,
            busy_until: 0,
            meter: UtilizationMeter::default(),
            per_thread_busy: [0; MAX_THREADS],
            grants: 0,
            trace_id: None,
            backlog_scratch: Vec::new(),
        }
    }

    /// Names this resource for [`vpc_sim::trace`] observability: with an id
    /// set and a recorder installed, every grant emits a
    /// [`EventData::Grant`] (with the arbiter's virtual start/finish times)
    /// plus one [`EventData::Defer`] per thread left backlogged. Pure
    /// instrumentation — arbitration behavior is unchanged.
    pub fn set_trace_id(&mut self, id: ResourceId) {
        self.trace_id = Some(id);
    }

    /// Enters `req` into arbitration at `now`.
    pub fn enqueue(&mut self, req: ArbRequest, now: Cycle) {
        self.arbiter.enqueue(req, now);
    }

    /// Whether the resource is servicing a request at `now`.
    pub fn is_busy(&self, now: Cycle) -> bool {
        now < self.busy_until
    }

    /// If the resource is free at `now` and a request is pending, grants it:
    /// the resource becomes busy for the request's service time and the
    /// granted request is returned so the owner can advance its state
    /// machine.
    pub fn try_grant(&mut self, now: Cycle) -> Option<ArbRequest> {
        if self.is_busy(now) {
            return None;
        }
        let req = self.arbiter.select(now)?;
        self.busy_until = now + req.service_time;
        self.meter.add_busy(req.service_time);
        self.per_thread_busy[req.thread.index()] += req.service_time;
        self.grants += 1;
        if let Some(resource) = self.trace_id {
            if trace::is_enabled() {
                let virt = self.arbiter.last_grant_virtual();
                trace::emit(|| TraceEvent {
                    at: now,
                    data: EventData::Grant {
                        resource,
                        thread: req.thread,
                        kind: req.kind,
                        service: req.service_time,
                        virtual_start: virt.map(|(s, _)| s),
                        virtual_finish: virt.map(|(_, f)| f),
                    },
                });
                self.backlog_scratch.clear();
                self.arbiter.backlogged_threads(&mut self.backlog_scratch);
                for &(thread, virtual_start) in &self.backlog_scratch {
                    trace::emit(|| TraceEvent {
                        at: now,
                        data: EventData::Defer { resource, thread, virtual_start },
                    });
                }
            }
        }
        Some(req)
    }

    /// The cycle the current service completes (or the past, if idle).
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Number of requests pending in arbitration.
    pub fn pending(&self) -> usize {
        self.arbiter.len()
    }

    /// Total requests granted.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Busy-cycle meter for utilization reporting.
    pub fn meter(&self) -> UtilizationMeter {
        self.meter
    }

    /// Busy cycles attributable to `thread`'s requests — the per-thread
    /// utilization breakdown the paper's sharing figures plot.
    pub fn thread_busy_cycles(&self, thread: ThreadId) -> u64 {
        self.per_thread_busy[thread.index()]
    }

    /// Access to the underlying arbiter (e.g. to reconfigure VPC shares).
    pub fn arbiter_mut(&mut self) -> &mut dyn Arbiter {
        self.arbiter.as_mut()
    }

    /// The earliest cycle at which this resource can change observable
    /// state absent new enqueues: with requests pending, the next
    /// [`ArbitratedResource::try_grant`] that is not blocked by the busy
    /// window will grant one. `None` when nothing is pending — an idle
    /// resource never acts spontaneously (`busy_until` elapsing is not
    /// itself an observable change; it only enables a future grant).
    ///
    /// Conservative by design: the returned cycle is never *later* than a
    /// real state change, which is the direction the quiescence protocol
    /// requires (see `DESIGN.md` §10).
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.arbiter.is_empty() {
            None
        } else {
            Some(self.busy_until.max(now + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::FcfsArbiter;
    use vpc_sim::{AccessKind, ThreadId};

    fn req(id: u64, service: u64) -> ArbRequest {
        ArbRequest::new(id, ThreadId(0), AccessKind::Read, service)
    }

    #[test]
    fn grants_respect_busy_time() {
        let mut res = ArbitratedResource::new(Box::new(FcfsArbiter::new()));
        res.enqueue(req(1, 8), 0);
        res.enqueue(req(2, 8), 0);
        assert_eq!(res.try_grant(0).unwrap().id, 1);
        assert!(res.try_grant(4).is_none(), "busy until 8");
        assert_eq!(res.try_grant(8).unwrap().id, 2);
        assert_eq!(res.grants(), 2);
    }

    #[test]
    fn utilization_accumulates_service_time() {
        let mut res = ArbitratedResource::new(Box::new(FcfsArbiter::new()));
        res.enqueue(req(1, 8), 0);
        res.enqueue(req(2, 16), 0);
        res.try_grant(0);
        res.try_grant(8);
        assert_eq!(res.meter().busy_cycles(), 24);
        assert!((res.meter().utilization(48) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_thread_busy_attribution() {
        let mut res = ArbitratedResource::new(Box::new(FcfsArbiter::new()));
        res.enqueue(ArbRequest::new(1, ThreadId(0), AccessKind::Read, 8), 0);
        res.enqueue(ArbRequest::new(2, ThreadId(1), AccessKind::Write, 16), 0);
        res.try_grant(0);
        res.try_grant(8);
        assert_eq!(res.thread_busy_cycles(ThreadId(0)), 8);
        assert_eq!(res.thread_busy_cycles(ThreadId(1)), 16);
        assert_eq!(res.meter().busy_cycles(), 24);
    }

    #[test]
    fn idle_resource_grants_nothing() {
        let mut res = ArbitratedResource::new(Box::new(FcfsArbiter::new()));
        assert!(res.try_grant(0).is_none());
        assert_eq!(res.pending(), 0);
        assert!(!res.is_busy(0));
    }
}
