//! The VPC fair-queuing arbiter (paper §4.1).
//!
//! Each shared cache resource (tag array, data array, data bus) gets one
//! [`VpcArbiter`]. The arbiter keeps, per thread, a small buffer of pending
//! request IDs and a virtual-time register `R.S_i` tracking when the thread's
//! *virtual private resource* next becomes available. Selection is earliest
//! virtual finish time first (EDF):
//!
//! * Eq. 3': `S_i^k = R.S_i` — the optimized implementation needs no stored
//!   per-request arrival times.
//! * Eq. 4:  `F_i^k = S_i^k + L_i^k / beta_i` (writes on the data array have
//!   twice the service requirement, which callers encode in
//!   [`ArbRequest::service_time`]).
//! * Eq. 5:  on grant, `R.S_i <- F_i^k`.
//! * Eq. 6:  when a request arrives to an *empty* thread queue and
//!   `R.S_i <= R.clk`, then `R.S_i <- R.clk`.
//!
//! Because `R.S_i` depends only on the amount of service the thread has
//! received — not on which specific request is served — requests within a
//! thread's buffer may be reordered (read-over-write) without changing the
//! bandwidth each thread receives relative to others (§4.1.1).

use std::collections::VecDeque;

use vpc_sim::{Cycle, Share, ThreadId};

use crate::arbiter::Arbiter;
use crate::request::ArbRequest;

/// Ordering applied within a single thread's arbitration buffer.
///
/// Intra-thread reordering is the performance optimization §4.1.1 enables:
/// it cannot cause cross-thread starvation because the virtual-time
/// bookkeeping is per-thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntraThreadOrder {
    /// Service the thread's requests strictly in arrival order.
    Fifo,
    /// Prefer the thread's oldest pending *read* over older writes
    /// (read-over-write), falling back to FIFO when no read is pending.
    #[default]
    ReadOverWrite,
}

#[derive(Debug)]
struct ThreadState {
    /// Pending request IDs (Figure 3's per-thread buffer).
    buffer: VecDeque<ArbRequest>,
    /// `R.S_i`: the virtual time the thread's virtual resource next becomes
    /// available.
    r_s: u64,
    /// `beta_i`: the thread's share of this resource's bandwidth.
    share: Share,
}

impl ThreadState {
    fn new() -> ThreadState {
        ThreadState { buffer: VecDeque::new(), r_s: 0, share: Share::ZERO }
    }
}

/// The paper's fair-queuing arbiter with per-thread virtual-time registers.
///
/// See the [module documentation](self) for the algorithm. Threads with a
/// [`Share::ZERO`] allocation hold no bandwidth guarantee and are serviced
/// (oldest first) only when no guaranteed thread is backlogged.
#[derive(Debug)]
pub struct VpcArbiter {
    threads: Vec<ThreadState>,
    order: IntraThreadOrder,
    pending: usize,
    /// Virtual finish time of the most recent grant, for analysis/tests.
    last_deadline: Option<u64>,
    /// Virtual `(start, finish)` of the most recent guaranteed grant, for
    /// trace observability.
    last_virtual: Option<(u64, u64)>,
}

impl VpcArbiter {
    /// Creates an arbiter for `num_threads` threads, all initially with zero
    /// share; configure guarantees with [`VpcArbiter::set_share`].
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize, order: IntraThreadOrder) -> VpcArbiter {
        assert!(num_threads > 0, "at least one thread required");
        VpcArbiter {
            threads: (0..num_threads).map(|_| ThreadState::new()).collect(),
            order,
            pending: 0,
            last_deadline: None,
            last_virtual: None,
        }
    }

    /// Sets thread `thread`'s bandwidth share `beta_i`. In hardware this is
    /// a system-software-visible control register; `R.L_i` values derived
    /// from it are recomputed on the fly here.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range for this arbiter.
    pub fn set_share(&mut self, thread: ThreadId, share: Share) {
        self.threads[thread.index()].share = share;
    }

    /// Returns thread `thread`'s configured share.
    pub fn share(&self, thread: ThreadId) -> Share {
        self.threads[thread.index()].share
    }

    /// The sum of all configured shares, or `None` if they over-commit the
    /// resource (`sum(beta_i) > 1`), which voids the EDF guarantee.
    pub fn total_share(&self) -> Option<Share> {
        Share::checked_sum(self.threads.iter().map(|t| t.share))
    }

    /// `R.S_i` for thread `thread` — exposed for tests and analysis.
    pub fn virtual_start(&self, thread: ThreadId) -> u64 {
        self.threads[thread.index()].r_s
    }

    /// The virtual finish time (deadline) of the most recently granted
    /// request, if that request belonged to a guaranteed (nonzero-share)
    /// thread.
    pub fn last_deadline(&self) -> Option<u64> {
        self.last_deadline
    }

    /// Index into the thread's buffer of the request its reorder policy
    /// would send next.
    fn candidate_index(&self, thread: usize) -> Option<usize> {
        let buffer = &self.threads[thread].buffer;
        if buffer.is_empty() {
            return None;
        }
        match self.order {
            IntraThreadOrder::Fifo => Some(0),
            IntraThreadOrder::ReadOverWrite => {
                Some(buffer.iter().position(|r| r.kind.is_read()).unwrap_or(0))
            }
        }
    }
}

impl Arbiter for VpcArbiter {
    fn enqueue(&mut self, mut req: ArbRequest, now: Cycle) {
        req.arrival = now;
        let state = &mut self.threads[req.thread.index()];
        // Eq. 6: arriving to an empty queue resets a stale virtual clock to
        // real time, so R.S_i always holds the next request's virtual start.
        if state.buffer.is_empty() && state.r_s < now {
            state.r_s = now;
        }
        state.buffer.push_back(req);
        self.pending += 1;
    }

    fn select(&mut self, now: Cycle) -> Option<ArbRequest> {
        // Guaranteed threads first: earliest virtual finish time (EDF).
        let mut best: Option<(u64, u64, usize, usize)> = None; // (F, arrival, thread, pos)
        for t in 0..self.threads.len() {
            if self.threads[t].share.is_zero() {
                continue;
            }
            let Some(pos) = self.candidate_index(t) else { continue };
            let req = self.threads[t].buffer[pos];
            let virt_service = self.threads[t]
                .share
                .scaled_latency(req.service_time)
                .expect("nonzero share has finite virtual service time");
            let finish = self.threads[t].r_s + virt_service; // Eq. 3' + Eq. 4
            let key = (finish, req.arrival, t, pos);
            if best.is_none_or(|b| (key.0, key.1, key.2) < (b.0, b.1, b.2)) {
                best = Some(key);
            }
        }
        if let Some((finish, _arrival, t, pos)) = best {
            let start = self.threads[t].r_s; // Eq. 3': S_i^k = R.S_i
            let req = self.threads[t].buffer.remove(pos).expect("candidate position valid");
            self.threads[t].r_s = finish; // Eq. 5
            self.pending -= 1;
            self.last_deadline = Some(finish);
            self.last_virtual = Some((start, finish));
            return Some(req);
        }

        // Excess bandwidth for zero-share threads: oldest request first.
        let mut best_free: Option<(u64, usize, usize)> = None; // (arrival, thread, pos)
        for t in 0..self.threads.len() {
            if !self.threads[t].share.is_zero() {
                continue;
            }
            let Some(pos) = self.candidate_index(t) else { continue };
            let req = self.threads[t].buffer[pos];
            if best_free.is_none_or(|b| (req.arrival, t) < (b.0, b.1)) {
                best_free = Some((req.arrival, t, pos));
            }
        }
        let (_, t, pos) = best_free?;
        let req = self.threads[t].buffer.remove(pos).expect("candidate position valid");
        // A zero-share grant still advances real time only; R.S_i is
        // untouched because the thread holds no virtual resource.
        let _ = now;
        self.pending -= 1;
        self.last_deadline = None;
        self.last_virtual = None;
        Some(req)
    }

    fn len(&self) -> usize {
        self.pending
    }

    fn reconfigure_share(&mut self, thread: ThreadId, share: Share) -> bool {
        self.set_share(thread, share);
        true
    }

    fn last_grant_virtual(&self) -> Option<(u64, u64)> {
        self.last_virtual
    }

    fn backlogged_threads(&self, out: &mut Vec<(ThreadId, Option<u64>)>) {
        out.extend(
            self.threads
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.buffer.is_empty())
                .map(|(t, s)| (ThreadId(t as u8), Some(s.r_s))),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::check::{self, Config};
    use vpc_sim::{ensure, AccessKind};

    fn share(n: u32, d: u32) -> Share {
        Share::new(n, d).unwrap()
    }

    fn read(id: u64, t: u8, service: u64) -> ArbRequest {
        ArbRequest::new(id, ThreadId(t), AccessKind::Read, service)
    }

    fn write(id: u64, t: u8, service: u64) -> ArbRequest {
        ArbRequest::new(id, ThreadId(t), AccessKind::Write, service)
    }

    fn equal_share_arbiter(n: usize) -> VpcArbiter {
        let mut arb = VpcArbiter::new(n, IntraThreadOrder::Fifo);
        for t in 0..n {
            arb.set_share(ThreadId(t as u8), share(1, n as u32));
        }
        arb
    }

    #[test]
    fn eq6_resets_stale_virtual_clock() {
        let mut arb = equal_share_arbiter(2);
        arb.enqueue(read(1, 0, 8), 0);
        arb.select(0);
        assert_eq!(arb.virtual_start(ThreadId(0)), 16); // 8 / (1/2)
                                                        // Thread 0 goes idle; a request arriving at cycle 100 must not be
                                                        // credited for the idle period.
        arb.enqueue(read(2, 0, 8), 100);
        assert_eq!(arb.virtual_start(ThreadId(0)), 100);
        let granted = arb.select(100).unwrap();
        assert_eq!(granted.id, 2);
        assert_eq!(arb.virtual_start(ThreadId(0)), 116);
    }

    #[test]
    fn eq6_does_not_rewind_backlogged_clock() {
        let mut arb = equal_share_arbiter(2);
        arb.enqueue(read(1, 0, 8), 0);
        arb.select(0);
        // R.S = 16. A request arriving at cycle 4 (before the virtual
        // resource frees) keeps the backlogged virtual clock.
        arb.enqueue(read(2, 0, 8), 4);
        assert_eq!(arb.virtual_start(ThreadId(0)), 16);
    }

    #[test]
    fn edf_prefers_larger_share() {
        let mut arb = VpcArbiter::new(2, IntraThreadOrder::Fifo);
        arb.set_share(ThreadId(0), share(3, 4));
        arb.set_share(ThreadId(1), share(1, 4));
        arb.enqueue(read(1, 0, 8), 0);
        arb.enqueue(read(2, 1, 8), 0);
        // F0 = ceil(8/(3/4)) = 11, F1 = 32.
        assert_eq!(arb.select(0).unwrap().id, 1);
        assert_eq!(arb.virtual_start(ThreadId(0)), 11);
        assert_eq!(arb.select(0).unwrap().id, 2);
        assert_eq!(arb.virtual_start(ThreadId(1)), 32);
    }

    #[test]
    fn bandwidth_split_matches_shares_when_both_backlogged() {
        // Two threads, shares 3/4 and 1/4, both continuously backlogged with
        // 8-cycle reads: over any long window thread 0 gets ~3x the grants.
        let mut arb = VpcArbiter::new(2, IntraThreadOrder::Fifo);
        arb.set_share(ThreadId(0), share(3, 4));
        arb.set_share(ThreadId(1), share(1, 4));
        let mut id = 0;
        let mut grants = [0u64; 2];
        let mut now = 0u64;
        for _ in 0..4000 {
            // Keep both queues non-empty.
            while arb.threads[0].buffer.len() < 2 {
                id += 1;
                arb.enqueue(read(id, 0, 8), now);
            }
            while arb.threads[1].buffer.len() < 2 {
                id += 1;
                arb.enqueue(read(id, 1, 8), now);
            }
            let g = arb.select(now).unwrap();
            grants[g.thread.index()] += 1;
            now += g.service_time;
        }
        let ratio = grants[0] as f64 / grants[1] as f64;
        assert!((2.9..3.1).contains(&ratio), "grant ratio {ratio} != ~3.0");
    }

    #[test]
    fn write_double_cost_halves_write_grant_rate() {
        // Equal shares; thread 0 sends 8-cycle reads, thread 1 sends
        // 16-cycle writes. Equal *bandwidth* means thread 1 gets half the
        // grants (stores need twice the data-array bandwidth, §5.3).
        let mut arb = equal_share_arbiter(2);
        let mut id = 0;
        let mut grants = [0u64; 2];
        let mut now = 0u64;
        for _ in 0..3000 {
            while arb.threads[0].buffer.len() < 2 {
                id += 1;
                arb.enqueue(read(id, 0, 8), now);
            }
            while arb.threads[1].buffer.len() < 2 {
                id += 1;
                arb.enqueue(write(id, 1, 16), now);
            }
            let g = arb.select(now).unwrap();
            grants[g.thread.index()] += 1;
            now += g.service_time;
        }
        let ratio = grants[0] as f64 / grants[1] as f64;
        assert!((1.9..2.1).contains(&ratio), "grant ratio {ratio} != ~2.0");
    }

    #[test]
    fn zero_share_thread_only_gets_excess() {
        let mut arb = VpcArbiter::new(2, IntraThreadOrder::Fifo);
        arb.set_share(ThreadId(0), Share::FULL);
        // Thread 1 has zero share.
        arb.enqueue(read(1, 1, 8), 0);
        arb.enqueue(read(2, 0, 8), 0);
        assert_eq!(arb.select(0).unwrap().id, 2, "guaranteed thread first");
        assert_eq!(arb.select(8).unwrap().id, 1, "excess goes to zero-share thread");
    }

    #[test]
    fn row_reordering_is_intra_thread_only() {
        let mut arb = VpcArbiter::new(2, IntraThreadOrder::ReadOverWrite);
        arb.set_share(ThreadId(0), share(1, 2));
        arb.set_share(ThreadId(1), share(1, 2));
        // Thread 0: write then read. RoW lets its read jump its own write...
        arb.enqueue(write(1, 0, 16), 0);
        arb.enqueue(read(2, 0, 8), 0);
        // ...but thread 1's virtual finish time is unaffected.
        arb.enqueue(read(3, 1, 8), 0);
        let first = arb.select(0).unwrap();
        assert_eq!(first.id, 2, "thread 0's read bypasses its own write (RoW)");
        let second = arbiter_drain_one(&mut arb, 8);
        assert_eq!(second.thread, ThreadId(1), "thread 1 unaffected by thread 0 reordering");
    }

    fn arbiter_drain_one(arb: &mut VpcArbiter, now: Cycle) -> ArbRequest {
        arb.select(now).expect("request pending")
    }

    #[test]
    fn total_share_detects_overcommit() {
        let mut arb = VpcArbiter::new(3, IntraThreadOrder::Fifo);
        arb.set_share(ThreadId(0), share(1, 2));
        arb.set_share(ThreadId(1), share(1, 2));
        assert_eq!(arb.total_share(), Some(Share::FULL));
        arb.set_share(ThreadId(2), share(1, 4));
        assert_eq!(arb.total_share(), None);
    }

    /// Reference model of the per-thread virtual clock used to check the
    /// §3.2 guarantee: each of a thread's services completes no later than
    /// its virtual finish time plus the maximum service time (the
    /// preemption latency of a non-preemptible resource).
    struct GuaranteeChecker {
        v: Vec<u64>,
        queue_len: Vec<usize>,
        shares: Vec<Share>,
        max_service: u64,
    }

    impl GuaranteeChecker {
        fn new(shares: Vec<Share>) -> GuaranteeChecker {
            let n = shares.len();
            GuaranteeChecker { v: vec![0; n], queue_len: vec![0; n], shares, max_service: 0 }
        }

        fn on_enqueue(&mut self, thread: usize, now: u64, service: u64) {
            if self.queue_len[thread] == 0 && self.v[thread] < now {
                self.v[thread] = now;
            }
            self.queue_len[thread] += 1;
            self.max_service = self.max_service.max(service);
        }

        fn on_complete(&mut self, thread: usize, finish: u64, service: u64) -> Result<(), String> {
            self.queue_len[thread] -= 1;
            if let Some(virt) = self.shares[thread].scaled_latency(service) {
                self.v[thread] += virt;
                ensure!(
                    finish <= self.v[thread] + self.max_service,
                    "thread {thread} finished at {finish}, deadline {} + max {}",
                    self.v[thread],
                    self.max_service
                );
            }
            Ok(())
        }
    }

    /// The paper's minimum-bandwidth guarantee, tested against random
    /// arrival patterns with non-over-committed shares: every service of
    /// a guaranteed thread completes by its virtual deadline plus one
    /// maximum service time.
    #[test]
    fn deadline_guarantee_holds() {
        check::forall("deadline_guarantee_holds", Config::cases(64), |rng| {
            let order = if rng.chance(0.5) {
                IntraThreadOrder::Fifo
            } else {
                IntraThreadOrder::ReadOverWrite
            };
            let shares = vec![share(1, 2), share(1, 4), share(1, 8), Share::ZERO];
            let mut arb = VpcArbiter::new(4, order);
            for (t, s) in shares.iter().enumerate() {
                arb.set_share(ThreadId(t as u8), *s);
            }
            let mut checker = GuaranteeChecker::new(shares);
            let mut id = 0u64;
            let mut busy_until = 0u64;
            for now in 0..2000u64 {
                // Random arrivals.
                for t in 0..4u8 {
                    if rng.chance(0.3) {
                        id += 1;
                        let is_write = rng.chance(0.4);
                        let service = if is_write { 16 } else { 8 };
                        let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
                        arb.enqueue(ArbRequest::new(id, ThreadId(t), kind, service), now);
                        checker.on_enqueue(t as usize, now, service);
                    }
                }
                // Service when free.
                if now >= busy_until {
                    if let Some(req) = arb.select(now) {
                        let finish = now + req.service_time;
                        busy_until = finish;
                        checker.on_complete(req.thread.index(), finish, req.service_time)?;
                    }
                }
            }
            Ok(())
        });
    }

    /// Work conservation: the arbiter always grants when any request is
    /// pending, regardless of shares.
    #[test]
    fn work_conserving() {
        check::forall("work_conserving", Config::cases(64), |rng| {
            let mut arb = VpcArbiter::new(3, IntraThreadOrder::ReadOverWrite);
            arb.set_share(ThreadId(0), share(1, 4));
            // Threads 1, 2 left at zero share.
            let mut id = 0;
            for step in 0..500u64 {
                let t = rng.below(3) as u8;
                id += 1;
                arb.enqueue(read(id, t, 8), step);
                ensure!(arb.select(step).is_some(), "pending request must be granted");
            }
            Ok(())
        });
    }

    /// R.S_i never decreases: virtual time is monotone per thread.
    #[test]
    fn virtual_start_is_monotone() {
        check::forall("virtual_start_is_monotone", Config::cases(64), |rng| {
            let mut arb = equal_share_arbiter(2);
            let mut last = [0u64; 2];
            let mut id = 0;
            let mut now = 0u64;
            for _ in 0..500 {
                if rng.chance(0.7) {
                    id += 1;
                    arb.enqueue(read(id, (id % 2) as u8, 8), now);
                }
                if rng.chance(0.6) {
                    let _ = arb.select(now);
                }
                for (t, slot) in last.iter_mut().enumerate() {
                    let v = arb.virtual_start(ThreadId(t as u8));
                    ensure!(v >= *slot, "R.S went backwards");
                    *slot = v;
                }
                now += rng.below(4);
            }
            Ok(())
        });
    }
}
