//! Ablations of the VPC design choices DESIGN.md calls out.
//!
//! These go beyond the paper's figures and probe the mechanisms directly:
//!
//! * [`reorder`] — intra-thread read-over-write reordering inside the VPC
//!   arbiter buffers (§4.1.1's optimization) on vs. off;
//! * [`capacity`] — the VPC Capacity Manager vs. unmanaged LRU when a
//!   cache-sensitive subject shares with streaming threads;
//! * [`preemption`] — sensitivity of a low-MLP subject to the data array's
//!   service quantum (the non-preemptible resource's preemption latency,
//!   §4.1.2);
//! * [`work_conservation`] — a backlogged thread picks up an idle
//!   partner's unused bandwidth and exceeds its own allocation's target.

use std::fmt;

use vpc_arbiters::{ArbiterPolicy, IntraThreadOrder};
use vpc_cache::CapacityPolicy;
use vpc_mem::ChannelMode;
use vpc_sim::exec::{self, Job};
use vpc_sim::Share;

use crate::config::{CmpConfig, WorkloadSpec};
use crate::experiments::RunBudget;
use crate::system::CmpSystem;
use crate::target::target_ipc;

/// Result of the intra-thread reordering ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderResult {
    /// Subject IPC with FIFO thread buffers.
    pub fifo_ipc: f64,
    /// Subject IPC with read-over-write reordering.
    pub row_ipc: f64,
    /// Partner (Stores) IPC with FIFO buffers.
    pub fifo_partner_ipc: f64,
    /// Partner (Stores) IPC with RoW reordering.
    pub row_partner_ipc: f64,
}

impl fmt::Display for ReorderResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: VPC intra-thread reordering (mixed subject + Stores partner)")?;
        writeln!(f, "  subject IPC: FIFO {:.3} -> RoW {:.3}", self.fifo_ipc, self.row_ipc)?;
        writeln!(
            f,
            "  partner IPC: FIFO {:.3} -> RoW {:.3} (bandwidth guarantee unaffected)",
            self.fifo_partner_ipc, self.row_partner_ipc
        )
    }
}

/// Runs a load+store mixed subject (vpr) against a Stores partner under
/// VPC 50/50, with and without intra-thread RoW reordering.
pub fn reorder(base: &CmpConfig, budget: RunBudget) -> ReorderResult {
    let half = Share::new(1, 2).expect("half share");
    let run_with = |order: IntraThreadOrder| {
        let mut cfg =
            base.clone().with_arbiter(ArbiterPolicy::Vpc { shares: vec![half, half], order });
        cfg.processors = 2;
        cfg.l2.threads = 2;
        cfg.l2.capacity = CapacityPolicy::vpc_equal(2);
        let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Spec("vpr"), WorkloadSpec::Stores]);
        let m = sys.run_measured(budget.warmup, budget.window);
        (m.ipc[0], m.ipc[1])
    };
    let run_with = &run_with;
    let jobs = [("fifo", IntraThreadOrder::Fifo), ("row", IntraThreadOrder::ReadOverWrite)]
        .map(|(label, order)| {
            Job::new(format!("ablations/reorder/{label}"), move || run_with(order))
        })
        .into_iter()
        .collect();
    let results = exec::map_indexed(jobs, exec::jobs());
    let (fifo_ipc, fifo_partner_ipc) = results[0];
    let (row_ipc, row_partner_ipc) = results[1];
    ReorderResult { fifo_ipc, row_ipc, fifo_partner_ipc, row_partner_ipc }
}

/// Result of the capacity-manager ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityResult {
    /// Subject IPC with unmanaged LRU capacity.
    pub lru_ipc: f64,
    /// Subject IPC with the VPC Capacity Manager (equal quotas).
    pub vpc_ipc: f64,
}

impl fmt::Display for CapacityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: capacity manager (cache-sensitive subject vs 3 streaming threads)")?;
        writeln!(
            f,
            "  subject IPC: shared LRU {:.3} -> VPC way quotas {:.3}",
            self.lru_ipc, self.vpc_ipc
        )
    }
}

/// A cache-sensitive subject (gzip) shares a *small* L2 (scaled so the
/// streaming threads can actually flush it within the run) with three
/// streaming threads, under identical FCFS arbiters — isolating the
/// capacity effect.
pub fn capacity(base: &CmpConfig, budget: RunBudget) -> CapacityResult {
    let run_with = |capacity: CapacityPolicy| {
        let mut cfg = base.clone().with_capacity(capacity);
        cfg.processors = 4;
        cfg.l2.threads = 4;
        // 512 sets x 32 ways x 64 B = 1 MB: small enough to thrash.
        cfg.l2.total_sets = 512;
        let workloads = [
            WorkloadSpec::Spec("gzip"),
            WorkloadSpec::Spec("swim"),
            WorkloadSpec::Spec("equake"),
            WorkloadSpec::Spec("swim"),
        ];
        let mut sys = CmpSystem::new(cfg, &workloads);
        let m = sys.run_measured(budget.warmup, budget.window * 2);
        m.ipc[0]
    };
    let run_with = &run_with;
    let jobs = [("lru", CapacityPolicy::Lru), ("vpc", CapacityPolicy::vpc_equal(4))]
        .map(|(label, policy)| {
            Job::new(format!("ablations/capacity/{label}"), move || run_with(policy))
        })
        .into_iter()
        .collect();
    let results = exec::map_indexed(jobs, exec::jobs());
    CapacityResult { lru_ipc: results[0], vpc_ipc: results[1] }
}

/// One point of the preemption-latency sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptionPoint {
    /// Configured data-array service time.
    pub data_latency: u64,
    /// Subject IPC normalized to its (equally-reconfigured) target.
    pub normalized_ipc: f64,
    /// Subject's mean L2 read latency (intake to critical word).
    pub mean_read_latency: f64,
    /// Subject's p95 L2 read latency.
    pub p95_read_latency: u64,
}

/// Result of the preemption-latency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PreemptionResult {
    /// One point per configured data-array latency.
    pub points: Vec<PreemptionPoint>,
}

impl fmt::Display for PreemptionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: preemption latency (mcf at beta=1/2 vs 3x Stores)")?;
        for p in &self.points {
            writeln!(
                f,
                "  data latency {:2} cycles -> normalized IPC {:.3}, L2 read latency mean {:5.1} / p95 {:3}",
                p.data_latency, p.normalized_ipc, p.mean_read_latency, p.p95_read_latency
            )?;
        }
        writeln!(f, "  (normalized IPC >= ~1.0 everywhere: preemption latency does not break the QoS target, \u{00a7}4.1.2,")?;
        writeln!(f, "   while the latency tail grows with the non-preemptible service quantum)")
    }
}

/// Sweeps the data-array service time for a low-MLP subject (mcf, whose
/// isolated misses cannot amortize preemption latency) running against
/// three Stores threads at `beta = 1/2`. The paper's §4.1.2 claim — that
/// the preemption latency of the non-preemptible resources does not often
/// have a significant effect on meeting targets — holds if the normalized
/// IPC stays at or above ~1.0 across the sweep.
pub fn preemption(base: &CmpConfig, budget: RunBudget) -> PreemptionResult {
    let quarter = Share::new(1, 4).expect("quarter");
    let subject = vpc_sim::ThreadId(0);
    let jobs = [4u64, 8, 16]
        .iter()
        .map(|&lat| {
            Job::new(format!("ablations/preemption/data_latency_{lat}"), move || {
                let mut cfg = base.clone();
                cfg.l2.data_latency = lat;
                let run_cfg =
                    cfg.clone().with_arbiter(crate::experiments::fig9::subject_share_policy(1, 2));
                let workloads = [
                    WorkloadSpec::Spec("mcf"),
                    WorkloadSpec::Stores,
                    WorkloadSpec::Stores,
                    WorkloadSpec::Stores,
                ];
                let mut sys = CmpSystem::new(run_cfg, &workloads);
                let m = sys.run_measured(budget.warmup, budget.window);
                let hist = sys.l2().read_latency(subject);
                let target = target_ipc(
                    &cfg,
                    WorkloadSpec::Spec("mcf"),
                    Share::new(1, 2).unwrap(),
                    quarter,
                    budget.warmup,
                    budget.window,
                );
                PreemptionPoint {
                    data_latency: lat,
                    normalized_ipc: if target > 0.0 { m.ipc[0] / target } else { 0.0 },
                    mean_read_latency: hist.mean(),
                    p95_read_latency: hist.percentile(0.95),
                }
            })
        })
        .collect();
    PreemptionResult { points: exec::map_indexed(jobs, exec::jobs()) }
}

/// Result of the shared-memory-channel scheduling ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryFqResult {
    /// Latency-sensitive subject's IPC when the shared channel is FCFS.
    pub fcfs_ipc: f64,
    /// Subject's IPC under equal-share fair queuing (beta = 1/4 each).
    pub fq_equal_ipc: f64,
    /// Subject's IPC with differentiated service: beta = 1/2 for the
    /// subject, 1/6 for each stream.
    pub fq_half_ipc: f64,
    /// Reference: subject's IPC with a private channel (the paper's
    /// isolation configuration).
    pub private_ipc: f64,
}

impl fmt::Display for MemoryFqResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: shared memory channel (mcf vs 3x swim, VPC cache arbiters)")?;
        writeln!(f, "  shared channel, FCFS        : subject IPC {:.3}", self.fcfs_ipc)?;
        writeln!(f, "  shared channel, FQ beta=1/4 : subject IPC {:.3}", self.fq_equal_ipc)?;
        writeln!(f, "  shared channel, FQ beta=1/2 : subject IPC {:.3}", self.fq_half_ipc)?;
        writeln!(
            f,
            "  private channel             : subject IPC {:.3} (isolation reference)",
            self.private_ipc
        )
    }
}

/// Extends the VPM framework to main-memory bandwidth (§2.1's FQ memory
/// scheduler): a latency-sensitive subject (mcf) and three streaming
/// threads (swim) share *one* DDR2 channel. FCFS lets the streams crowd
/// the channel; fair queuing enforces the subject's allocation, and
/// growing the allocation (differentiated service) buys back most of the
/// private-channel performance. Equal-share FQ also exposes a known
/// virtual-clock property: a bursty low-MLP client's back-to-back requests
/// carry deadlines spaced at `1/beta`, so its *burst* latency can exceed
/// FCFS even though its bandwidth share is guaranteed.
pub fn memory_fq(base: &CmpConfig, budget: RunBudget) -> MemoryFqResult {
    let run_with = |channels: ChannelMode| {
        let mut cfg =
            base.clone().with_arbiter(ArbiterPolicy::vpc_equal(4)).with_channels(channels);
        cfg.processors = 4;
        cfg.l2.threads = 4;
        let workloads = [
            WorkloadSpec::Spec("mcf"),
            WorkloadSpec::Spec("swim"),
            WorkloadSpec::Spec("swim"),
            WorkloadSpec::Spec("swim"),
        ];
        let mut sys = CmpSystem::new(cfg, &workloads);
        sys.run_measured(budget.warmup, budget.window).ipc[0]
    };
    let quarter = Share::new(1, 4).expect("quarter");
    let half = Share::new(1, 2).expect("half");
    let sixth = Share::new(1, 6).expect("sixth");
    let run_with = &run_with;
    let jobs = [
        ("fcfs", ChannelMode::SharedFcfs),
        ("fq_equal", ChannelMode::SharedFq { shares: vec![quarter; 4] }),
        ("fq_half", ChannelMode::SharedFq { shares: vec![half, sixth, sixth, sixth] }),
        ("private", ChannelMode::PerThread),
    ]
    .map(|(label, channels)| {
        Job::new(format!("ablations/memory_fq/{label}"), move || run_with(channels))
    })
    .into_iter()
    .collect();
    let results = exec::map_indexed(jobs, exec::jobs());
    MemoryFqResult {
        fcfs_ipc: results[0],
        fq_equal_ipc: results[1],
        fq_half_ipc: results[2],
        private_ipc: results[3],
    }
}

/// One fairness policy's row in the comparison the paper defers to future
/// work (§4.1.3).
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessRow {
    /// Policy label ("VPC", "DRR", "SFQ").
    pub policy: String,
    /// Loads IPC at a 50/50 Loads+Stores split (target from the private
    /// machine: how precisely the policy divides bandwidth).
    pub loads_ipc: f64,
    /// Stores IPC at the same split.
    pub stores_ipc: f64,
    /// A latency-sensitive subject's (mcf at beta=1/2) IPC against three
    /// Stores threads: how well the policy bounds short-term latency.
    pub subject_ipc: f64,
}

/// Results of the fairness-policy comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessResult {
    /// One row per policy.
    pub rows: Vec<FairnessRow>,
    /// Loads target at beta = 1/2 (alpha = 1/2).
    pub loads_target: f64,
    /// Stores target at beta = 1/2 (alpha = 1/2).
    pub stores_target: f64,
    /// Subject target at beta = 1/2 (alpha = 1/4).
    pub subject_target: f64,
}

impl fmt::Display for FairnessResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: fairness policies (the comparison §4.1.3 defers to future work)")?;
        writeln!(
            f,
            "{:<6} {:>10} {:>11} {:>12} (targets: {:.3} / {:.3} / {:.3})",
            "policy",
            "Loads IPC",
            "Stores IPC",
            "subject IPC",
            self.loads_target,
            self.stores_target,
            self.subject_target
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:>10.3} {:>11.3} {:>12.3}",
                r.policy, r.loads_ipc, r.stores_ipc, r.subject_ipc
            )?;
        }
        Ok(())
    }
}

/// Compares the VPC arbiter against deficit round robin and start-time
/// fair queuing on (a) bandwidth-division precision (Loads+Stores, 50/50)
/// and (b) a latency-sensitive subject against hostile stores (mcf at
/// beta = 1/2 vs 3x Stores).
pub fn fairness_policies(base: &CmpConfig, budget: RunBudget) -> FairnessResult {
    let half = Share::new(1, 2).expect("half");
    let sixth = Share::new(1, 6).expect("sixth");
    let quarter = Share::new(1, 4).expect("quarter");
    let two_way = |label: &str| -> ArbiterPolicy {
        match label {
            "VPC" => ArbiterPolicy::Vpc {
                shares: vec![half, half],
                order: IntraThreadOrder::ReadOverWrite,
            },
            "DRR" => ArbiterPolicy::Drr { shares: vec![half, half] },
            "SFQ" => ArbiterPolicy::Sfq { shares: vec![half, half] },
            _ => unreachable!("unknown policy"),
        }
    };
    let four_way = |label: &str| -> ArbiterPolicy {
        let shares = vec![half, sixth, sixth, sixth];
        match label {
            "VPC" => ArbiterPolicy::Vpc { shares, order: IntraThreadOrder::ReadOverWrite },
            "DRR" => ArbiterPolicy::Drr { shares },
            "SFQ" => ArbiterPolicy::Sfq { shares },
            _ => unreachable!("unknown policy"),
        }
    };
    let two_way = &two_way;
    let four_way = &four_way;
    let jobs = ["VPC", "DRR", "SFQ"]
        .iter()
        .map(|&label| {
            Job::new(format!("ablations/fairness/{label}"), move || {
                // (a) Loads + Stores at 50/50.
                let mut cfg = base.clone().with_arbiter(two_way(label));
                cfg.processors = 2;
                cfg.l2.threads = 2;
                cfg.l2.capacity = CapacityPolicy::vpc_equal(2);
                let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Stores]);
                let m = sys.run_measured(budget.warmup, budget.window);
                // (b) mcf at beta = 1/2 vs 3x Stores.
                let subject_ipc = crate::experiments::fig9::run_subject_with(
                    base,
                    "mcf",
                    four_way(label),
                    budget,
                );
                FairnessRow {
                    policy: label.to_string(),
                    loads_ipc: m.ipc[0],
                    stores_ipc: m.ipc[1],
                    subject_ipc,
                }
            })
        })
        .collect();
    let rows = exec::map_indexed(jobs, exec::jobs());
    FairnessResult {
        rows,
        loads_target: target_ipc(
            base,
            WorkloadSpec::Loads,
            half,
            half,
            budget.warmup,
            budget.window,
        ),
        stores_target: target_ipc(
            base,
            WorkloadSpec::Stores,
            half,
            half,
            budget.warmup,
            budget.window,
        ),
        subject_target: target_ipc(
            base,
            WorkloadSpec::Spec("mcf"),
            half,
            quarter,
            budget.warmup,
            budget.window,
        ),
    }
}

/// Result of the VPC-with-prefetching ablation (the paper's future work).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchResult {
    /// Subject IPC while the neighbor does not prefetch.
    pub subject_no_pf: f64,
    /// Subject IPC while the neighbor prefetches at degree 4.
    pub subject_with_pf: f64,
    /// Subject's QoS target (beta = alpha = 1/2).
    pub subject_target: f64,
    /// The prefetching neighbor's IPC without prefetching.
    pub neighbor_no_pf: f64,
    /// The prefetching neighbor's IPC with prefetching.
    pub neighbor_with_pf: f64,
}

impl fmt::Display for PrefetchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: VPC-supported prefetching (the paper's future work)")?;
        writeln!(
            f,
            "  neighbor (swim, low-MLP core): IPC {:.3} -> {:.3} with degree-4 prefetch",
            self.neighbor_no_pf, self.neighbor_with_pf
        )?;
        writeln!(
            f,
            "  subject  (gcc): IPC {:.3} -> {:.3} (target {:.3}) — prefetch traffic is charged to",
            self.subject_no_pf, self.subject_with_pf, self.subject_target
        )?;
        writeln!(f, "  the issuing thread's share, so the subject's QoS guarantee is undisturbed")
    }
}

/// A low-MLP streaming neighbor (swim on a 2-entry-LMQ core) turns on
/// degree-4 sequential prefetching while sharing the cache 50/50 with a
/// subject (gcc) under VPC arbiters. Prefetches consume the *issuing*
/// thread's bandwidth share, so the neighbor speeds itself up without
/// taking anything from the subject — VPC makes prefetching QoS-safe.
pub fn prefetch(base: &CmpConfig, budget: RunBudget) -> PrefetchResult {
    let half = Share::new(1, 2).expect("half");
    let run_with = |degree: usize| {
        let mut cfg = base.clone().with_vpc_shares(vec![half, half]);
        cfg.processors = 2;
        cfg.l2.threads = 2;
        cfg.l2.capacity = CapacityPolicy::vpc_equal(2);
        let mut subject_core = cfg.core;
        let mut neighbor_core = cfg.core;
        neighbor_core.l1.lmq_entries = 2;
        neighbor_core.prefetch_degree = degree;
        subject_core.prefetch_degree = 0;
        let workloads = [WorkloadSpec::Spec("gcc"), WorkloadSpec::Spec("swim")];
        let mut sys = CmpSystem::with_core_configs(cfg, &[subject_core, neighbor_core], &workloads);
        let m = sys.run_measured(budget.warmup, budget.window);
        (m.ipc[0], m.ipc[1])
    };
    let run_with = &run_with;
    let jobs = [("off", 0usize), ("degree4", 4)]
        .map(|(label, degree)| {
            Job::new(format!("ablations/prefetch/{label}"), move || run_with(degree))
        })
        .into_iter()
        .collect();
    let results = exec::map_indexed(jobs, exec::jobs());
    let (subject_no_pf, neighbor_no_pf) = results[0];
    let (subject_with_pf, neighbor_with_pf) = results[1];
    PrefetchResult {
        subject_no_pf,
        subject_with_pf,
        subject_target: target_ipc(
            base,
            WorkloadSpec::Spec("gcc"),
            half,
            half,
            budget.warmup,
            budget.window,
        ),
        neighbor_no_pf,
        neighbor_with_pf,
    }
}

/// Result of the thread-count scaling check.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingResult {
    /// (thread count, fraction of threads meeting their equal-share target
    /// within 10%).
    pub points: Vec<(usize, f64)>,
}

impl fmt::Display for ScalingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: scaling (equal-share VPC, gcc on every thread)")?;
        for (threads, met) in &self.points {
            writeln!(
                f,
                "  {threads} threads -> {:.0}% of threads meet their 1/{threads} target",
                met * 100.0
            )?;
        }
        Ok(())
    }
}

/// Scales the CMP from 2 to 8 threads (the per-thread structure limit),
/// every thread running the same mid-weight profile (gcc) under equal VPC
/// shares; checks that each thread still meets its `1/n` target. Bank
/// count scales with threads as a designer would provision it.
pub fn scaling(base: &CmpConfig, budget: RunBudget) -> ScalingResult {
    let jobs = [2usize, 4, 8]
        .iter()
        .map(|&threads| {
            Job::new(format!("ablations/scaling/{threads}_threads"), move || {
                let share = Share::new(1, threads as u32).expect("1/threads");
                let banks = (threads / 2).max(2);
                let mut cfg = base
                    .clone()
                    .with_banks(banks)
                    .with_arbiter(ArbiterPolicy::Vpc {
                        shares: vec![share; threads],
                        order: IntraThreadOrder::ReadOverWrite,
                    })
                    .with_capacity(CapacityPolicy::Vpc { shares: vec![share; threads] });
                cfg.processors = threads;
                cfg.l2.threads = threads;
                let workloads = vec![WorkloadSpec::Spec("gcc"); threads];
                let mut sys = CmpSystem::new(cfg, &workloads);
                let m = sys.run_measured(budget.warmup, budget.window);
                let target_base = base.clone().with_banks(banks);
                let target = target_ipc(
                    &target_base,
                    WorkloadSpec::Spec("gcc"),
                    share,
                    share,
                    budget.warmup,
                    budget.window,
                );
                let met = m.ipc.iter().filter(|&&ipc| ipc >= target * 0.9).count();
                (threads, met as f64 / threads as f64)
            })
        })
        .collect();
    ScalingResult { points: exec::map_indexed(jobs, exec::jobs()) }
}

/// Result of the work-conservation check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkConservationResult {
    /// Loads IPC at `beta = 1/2` with a busy Stores partner.
    pub busy_partner_ipc: f64,
    /// Loads IPC at `beta = 1/2` with an idle partner (excess bandwidth
    /// redistributed).
    pub idle_partner_ipc: f64,
    /// Loads target at `beta = 1/2` (the guarantee).
    pub half_target: f64,
    /// Loads target at `beta = 1` (the ceiling work conservation can
    /// approach).
    pub full_target: f64,
}

impl fmt::Display for WorkConservationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation: work conservation (Loads at beta=1/2)")?;
        writeln!(
            f,
            "  busy partner: IPC {:.3} (guarantee {:.3})",
            self.busy_partner_ipc, self.half_target
        )?;
        writeln!(
            f,
            "  idle partner: IPC {:.3} (ceiling {:.3}) — excess bandwidth redistributed",
            self.idle_partner_ipc, self.full_target
        )
    }
}

/// Runs Loads at `beta = 1/2` against a busy Stores partner and against an
/// idle partner.
pub fn work_conservation(base: &CmpConfig, budget: RunBudget) -> WorkConservationResult {
    let half = Share::new(1, 2).expect("half");
    let run_with = |partner: WorkloadSpec| {
        let mut cfg = base.clone().with_arbiter(ArbiterPolicy::Vpc {
            shares: vec![half, half],
            order: IntraThreadOrder::ReadOverWrite,
        });
        cfg.processors = 2;
        cfg.l2.threads = 2;
        cfg.l2.capacity = CapacityPolicy::vpc_equal(2);
        let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, partner]);
        let m = sys.run_measured(budget.warmup, budget.window);
        m.ipc[0]
    };
    let run_with = &run_with;
    let jobs = [("busy", WorkloadSpec::Stores), ("idle", WorkloadSpec::Idle)]
        .map(|(label, partner)| {
            Job::new(format!("ablations/work_conservation/{label}"), move || run_with(partner))
        })
        .into_iter()
        .collect();
    let results = exec::map_indexed(jobs, exec::jobs());
    WorkConservationResult {
        busy_partner_ipc: results[0],
        idle_partner_ipc: results[1],
        half_target: target_ipc(
            base,
            WorkloadSpec::Loads,
            half,
            half,
            budget.warmup,
            budget.window,
        ),
        full_target: target_ipc(
            base,
            WorkloadSpec::Loads,
            Share::FULL,
            half,
            budget.warmup,
            budget.window,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> CmpConfig {
        let mut base = CmpConfig::table1();
        base.l2.total_sets = 2048;
        base
    }

    #[test]
    fn qos_scales_to_eight_threads() {
        let r = scaling(&quick_base(), RunBudget::quick());
        for (threads, met) in &r.points {
            assert!(*met >= 0.99, "every thread must meet its 1/{threads} target: {r}");
        }
    }

    #[test]
    fn work_conservation_redistributes_excess() {
        let r = work_conservation(&quick_base(), RunBudget::quick());
        assert!(
            r.idle_partner_ipc > r.busy_partner_ipc * 1.2,
            "idle partner should free bandwidth: busy {:.3} vs idle {:.3}",
            r.busy_partner_ipc,
            r.idle_partner_ipc
        );
        assert!(
            r.idle_partner_ipc > r.half_target,
            "with an idle partner, Loads should exceed its guarantee"
        );
    }

    #[test]
    fn reordering_does_not_break_partner_guarantee() {
        let r = reorder(&quick_base(), RunBudget::quick());
        // RoW reordering is intra-thread: the partner's bandwidth share is
        // unchanged (within noise).
        let rel = (r.row_partner_ipc - r.fifo_partner_ipc).abs() / r.fifo_partner_ipc.max(1e-9);
        assert!(rel < 0.15, "partner IPC moved {rel:.2} under subject-side reordering: {r}");
    }

    #[test]
    fn fq_memory_scheduling_protects_latency_sensitive_subject() {
        let r = memory_fq(&quick_base(), RunBudget::quick());
        assert!(
            r.fq_half_ipc > r.fq_equal_ipc,
            "a larger channel share must help the subject: {r}"
        );
        assert!(
            r.private_ipc >= r.fq_half_ipc * 0.9,
            "private channels are the isolation ceiling: {r}"
        );
    }

    #[test]
    fn all_fairness_policies_divide_bandwidth() {
        let r = fairness_policies(&quick_base(), RunBudget::quick());
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(
                row.loads_ipc >= r.loads_target * 0.85,
                "{}: Loads near its 50% target: {row:?} vs {:.3}",
                row.policy,
                r.loads_target
            );
            assert!(
                row.stores_ipc >= r.stores_target * 0.85,
                "{}: Stores near its 50% target: {row:?} vs {:.3}",
                row.policy,
                r.stores_target
            );
        }
    }

    #[test]
    fn prefetching_neighbor_cannot_break_subject_qos() {
        let r = prefetch(&quick_base(), RunBudget::quick());
        assert!(
            r.neighbor_with_pf > r.neighbor_no_pf,
            "prefetching must help the low-MLP neighbor: {r}"
        );
        assert!(
            r.subject_with_pf >= r.subject_target * 0.9,
            "subject must keep meeting its target despite neighbor prefetching: {r}"
        );
    }

    #[test]
    fn capacity_manager_protects_working_set() {
        let r = capacity(&quick_base(), RunBudget::quick());
        assert!(r.vpc_ipc >= r.lru_ipc * 0.95, "VPC quotas must not hurt the subject: {r}");
    }
}
