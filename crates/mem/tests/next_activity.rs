//! The quiescence contract for [`MemoryController`]: a controller ticked
//! only at its reported next-activity cycles (plus request arrivals) ends
//! up in exactly the state of one ticked every single cycle — same
//! responses at the same cycles, same channel stats, same `Debug`
//! rendering — under every channel mode.

use vpc_mem::{ChannelMode, MemConfig, MemRequest, MemoryController};
use vpc_sim::check::{self, gen, Config};
use vpc_sim::{ensure, ensure_eq, Cycle, Share, SplitMix64};

fn random_mode(rng: &mut SplitMix64, threads: usize) -> ChannelMode {
    match rng.below(3) {
        0 => ChannelMode::PerThread,
        1 => ChannelMode::SharedFcfs,
        _ => {
            ChannelMode::SharedFq { shares: vec![Share::new(1, threads as u32).unwrap(); threads] }
        }
    }
}

/// A pre-generated arrival schedule, identical for both instances.
fn schedule(rng: &mut SplitMix64, threads: usize, horizon: Cycle) -> Vec<(Cycle, MemRequest)> {
    let mut out = Vec::new();
    let mut at = 0;
    let mut token = 0u64;
    while at < horizon {
        at += rng.below(40) + 1;
        token += 1;
        out.push((
            at,
            MemRequest {
                thread: gen::thread_id(rng, threads),
                line: gen::line_addr(rng, 64),
                kind: gen::access_kind(rng),
                token,
            },
        ));
    }
    out
}

/// Tick-every-cycle vs. tick-only-at-next-activity over the same arrival
/// schedule: response streams and final state must match exactly.
#[test]
fn sparse_ticking_matches_dense_ticking() {
    check::forall("sparse_ticking_matches_dense_ticking", Config::cases(24), |rng| {
        let threads = rng.below(3) as usize + 2;
        let mode = random_mode(rng, threads);
        let arrivals = schedule(rng, threads, 4_000);
        let end: Cycle = 12_000; // long tail so both instances drain

        let mut dense = MemoryController::with_mode(MemConfig::ddr2_800(), threads, mode.clone());
        let mut dense_log = Vec::new();
        let mut next = 0;
        for now in 0..end {
            while next < arrivals.len() && arrivals[next].0 == now {
                if dense.can_accept(arrivals[next].1.thread, arrivals[next].1.kind) {
                    dense.enqueue(arrivals[next].1, now);
                }
                next += 1;
            }
            dense.tick(now);
            while let Some(resp) = dense.pop_response() {
                dense_log.push((now, resp));
            }
        }

        let mut sparse = MemoryController::with_mode(MemConfig::ddr2_800(), threads, mode);
        let mut sparse_log = Vec::new();
        let mut next = 0;
        let mut now: Cycle = 0;
        while now < end {
            while next < arrivals.len() && arrivals[next].0 == now {
                if sparse.can_accept(arrivals[next].1.thread, arrivals[next].1.kind) {
                    sparse.enqueue(arrivals[next].1, now);
                }
                next += 1;
            }
            sparse.tick(now);
            while let Some(resp) = sparse.pop_response() {
                sparse_log.push((now, resp));
            }
            // Jump to the next arrival or the controller's own next
            // activity, whichever is sooner — the cycles in between are
            // the ones the controller claims are no-ops.
            let arrival = arrivals.get(next).map(|&(at, _)| at).unwrap_or(end);
            let wake = sparse.next_activity(now).unwrap_or(end).min(arrival);
            now = wake.clamp(now + 1, end);
        }

        ensure_eq!(dense_log, sparse_log, "response streams diverged");
        ensure!(dense.is_idle() && sparse.is_idle(), "both controllers drained");
        ensure_eq!(format!("{dense:?}"), format!("{sparse:?}"), "final controller state diverged");
        Ok(())
    });
}
