//! Core-level architectural properties: in-order retirement and
//! conservation of instructions, under random workloads and a live L2.

use vpc_arbiters::ArbiterPolicy;
use vpc_cache::{L2Config, SharedL2};
use vpc_cpu::{Core, CoreConfig, FixedTrace, Op, Workload};
use vpc_mem::MemConfig;
use vpc_sim::check::{self, Config};
use vpc_sim::{ensure, ensure_eq, LineAddr, SplitMix64, ThreadId};

fn random_trace(rng: &mut SplitMix64, len: usize) -> FixedTrace {
    let ops: Vec<Op> = (0..len)
        .map(|_| match rng.below(10) {
            0..=3 => Op::NonMem,
            4..=6 => Op::Load(LineAddr(rng.below(96))),
            7..=8 => Op::Store(LineAddr(rng.below(96))),
            _ => Op::Bubble(1 + rng.below(4) as u8),
        })
        .collect();
    // Ensure at least one real instruction so the trace is useful.
    let mut ops = ops;
    ops.push(Op::NonMem);
    FixedTrace::new("random", ops)
}

/// The retired instruction mix equals the dispatched program's mix
/// prefix: retirement is in order, nothing is lost or duplicated.
#[test]
fn retirement_follows_program_order() {
    check::forall("retirement_follows_program_order", Config::cases(16), |rng| {
        let trace = random_trace(rng, 64);
        // Reference: the exact op sequence the core will see.
        let mut reference = trace.clone();
        let mut core = Core::new(CoreConfig::table1(), ThreadId(0), Box::new(trace));
        let mut cfg = L2Config::table1(1, ArbiterPolicy::RowFcfs);
        cfg.total_sets = 128;
        let mut l2 = SharedL2::new(cfg, MemConfig::ddr2_800());
        for now in 0..30_000u64 {
            core.tick(now, &mut l2);
            l2.tick(now);
            while let Some(resp) = l2.pop_response(now) {
                core.on_l2_response(resp.line, now);
            }
        }
        // Reconstruct the expected mix of the first `retired` instructions.
        let retired = core.retired();
        let (mut want_loads, mut want_stores, mut want_other) = (0u64, 0u64, 0u64);
        let mut seen = 0;
        while seen < retired {
            match reference.next_op() {
                Op::Load(_) => {
                    want_loads += 1;
                    seen += 1;
                }
                Op::Store(_) => {
                    want_stores += 1;
                    seen += 1;
                }
                Op::NonMem => {
                    want_other += 1;
                    seen += 1;
                }
                Op::Bubble(_) => {}
            }
        }
        let s = core.stats();
        ensure_eq!(s.loads.get(), want_loads, "load count mismatch");
        ensure_eq!(s.stores.get(), want_stores, "store count mismatch");
        ensure_eq!(s.non_mem.get(), want_other, "non-mem count mismatch");
        ensure!(retired > 0, "the core made progress");
        Ok(())
    });
}
