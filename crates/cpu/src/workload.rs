//! The instruction-stream interface cores execute.

use std::fmt;

use vpc_sim::LineAddr;

/// One instruction, at the granularity the memory system cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// A non-memory instruction (fixed-point, float, branch, ...) with unit
    /// pipelined execute latency.
    NonMem,
    /// A load from the given cache line.
    Load(LineAddr),
    /// A store to the given cache line.
    Store(LineAddr),
    /// A frontend bubble: the dispatch stage stalls for the given number
    /// of cycles and no instruction is counted. Models dependence chains,
    /// branch mispredictions and fetch stalls, giving workloads a base CPI
    /// without simulating a full dependence graph.
    Bubble(u8),
}

/// An instruction stream feeding one core.
///
/// Workloads are infinite generators: the evaluation runs fixed cycle
/// windows (like the paper's sampled traces) and reports rates, so the
/// stream never ends.
pub trait Workload: fmt::Debug {
    /// Produces the next instruction.
    fn next_op(&mut self) -> Op;

    /// Short display name for reports ("Loads", "art", ...).
    fn name(&self) -> &str;
}

/// A workload replaying a fixed sequence of operations in a loop.
///
/// Useful in tests and for microbenchmark-style kernels.
///
/// ```
/// use vpc_cpu::{FixedTrace, Op, Workload};
/// use vpc_sim::LineAddr;
///
/// let mut w = FixedTrace::new("two-op", vec![Op::NonMem, Op::Load(LineAddr(1))]);
/// assert_eq!(w.next_op(), Op::NonMem);
/// assert_eq!(w.next_op(), Op::Load(LineAddr(1)));
/// assert_eq!(w.next_op(), Op::NonMem); // wraps around
/// ```
#[derive(Debug, Clone)]
pub struct FixedTrace {
    name: String,
    ops: Vec<Op>,
    pos: usize,
}

impl FixedTrace {
    /// Creates a looping trace.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> FixedTrace {
        assert!(!ops.is_empty(), "trace must contain at least one op");
        FixedTrace { name: name.into(), ops, pos: 0 }
    }
}

impl Workload for FixedTrace {
    fn next_op(&mut self) -> Op {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_trace_loops() {
        let mut w = FixedTrace::new("t", vec![Op::Load(LineAddr(1)), Op::Store(LineAddr(2))]);
        let seq: Vec<Op> = (0..5).map(|_| w.next_op()).collect();
        assert_eq!(
            seq,
            vec![
                Op::Load(LineAddr(1)),
                Op::Store(LineAddr(2)),
                Op::Load(LineAddr(1)),
                Op::Store(LineAddr(2)),
                Op::Load(LineAddr(1)),
            ]
        );
        assert_eq!(w.name(), "t");
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_trace_rejected() {
        let _ = FixedTrace::new("empty", vec![]);
    }
}
