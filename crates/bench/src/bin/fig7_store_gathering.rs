//! Figure 7: L2 write fraction and store gathering rate.

use vpc::experiments::fig7;
use vpc::prelude::*;
use vpc::report::{to_json, Fig7Report};

fn main() {
    let budget = vpc_bench::budget_from_args();
    let result = fig7::run(&CmpConfig::table1(), budget);
    if vpc_bench::json_requested() {
        println!("{}", to_json(&Fig7Report::from(&result)));
    } else {
        vpc_bench::header("Figure 7", budget);
        println!("{result}");
    }
}
