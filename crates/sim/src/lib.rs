//! Simulation kernel for the Virtual Private Caches (VPC) reproduction.
//!
//! This crate holds the small, dependency-free foundation every other crate
//! in the workspace builds on:
//!
//! * [`types`] — processor cycles, thread identifiers, addresses and the
//!   request/response protocol spoken between cores, caches and memory.
//! * [`share`] — [`Share`], an exact rational bandwidth/capacity share
//!   `p/q` used by the VPC arbiters and capacity manager. The paper's
//!   virtual-time bookkeeping (`R.L_i = L / beta_i`) is done in integer
//!   processor cycles with no floating-point drift.
//! * [`rng`] — [`SplitMix64`], a tiny deterministic RNG so every workload
//!   and experiment is exactly reproducible from a seed.
//! * [`stats`] — counters and utilization meters used to produce the
//!   figures' utilization series.
//! * [`check`] — the deterministic property-testing microharness every
//!   crate's randomized tests run on, built on [`SplitMix64`] so the whole
//!   suite is reproducible offline with zero external dependencies.
//! * [`exec`] — a scoped thread-pool/job-map layer the experiment runners
//!   use to spread independent simulations across worker threads while
//!   keeping output byte-identical to a serial run.
//! * [`trace`] — a bounded, thread-local cycle-level event recorder
//!   (arbiter grants/defers with virtual times, bank hits/misses/evicts,
//!   SGB gathers/drains, DRAM issues) that never perturbs simulated state
//!   and composes with per-job capture in [`exec`].
//!
//! # Examples
//!
//! ```
//! use vpc_sim::{Share, SplitMix64};
//!
//! // A thread allocated 25% of a resource whose service time is 8 cycles
//! // has a virtual service time of 32 cycles (Eq. 2 of the paper).
//! let beta = Share::new(1, 4).unwrap();
//! assert_eq!(beta.scaled_latency(8), Some(32));
//!
//! let mut rng = SplitMix64::new(0xC0FFEE);
//! let a = rng.next_u64();
//! let b = rng.next_u64();
//! assert_ne!(a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod exec;
pub mod rng;
pub mod share;
pub mod stats;
pub mod trace;
pub mod types;

pub use rng::SplitMix64;
pub use share::{ParseShareError, Share, ShareError};
pub use stats::{Counter, Histogram, RateMeter, UtilizationMeter};
pub use types::{
    line_of, AccessKind, CacheRequest, CacheResponse, Cycle, LineAddr, ThreadId, MAX_THREADS,
};
