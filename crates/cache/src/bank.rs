//! One shared L2 cache bank (paper Figure 2b).
//!
//! A bank contains, per thread, an input port with a store gathering buffer;
//! a pool of cache controller state machines (8 per thread in Table 1); and
//! three arbitrated shared resources — the tag array, the data array, and
//! the bank's data bus. The controller round-robins over threads' ports,
//! conflict-checks the selected request against active state machines (so
//! reordering downstream cannot violate consistency, §4.1.1), allocates a
//! state machine, and the request then arbitrates for the tag array, then
//! (hits) the data array, then (reads) the data bus. Misses evict/castout,
//! fetch from memory, and fill; fill data returns to the processor directly
//! over the data bus while the array is updated.
//!
//! The bank logic runs at half core frequency: [`L2Bank::tick`] acts only on
//! even processor cycles.

use std::collections::VecDeque;

use vpc_arbiters::{ArbRequest, ArbitratedResource};
use vpc_capacity::{ReplacementPolicy, TagSet, TrueLru, VpcCapacityManager};
use vpc_mem::MemRequest;
use vpc_sim::trace::{self, EventData, TraceEvent};
use vpc_sim::{AccessKind, CacheRequest, CacheResponse, Counter, Cycle, LineAddr, ThreadId};

use crate::config::{CapacityPolicy, L2Config};
use crate::sgb::{SgbStats, ThreadPort};

/// Phase codes packed into arbitration request ids (`id = sm << 3 | code`).
mod phase {
    pub const TAG_LOOKUP: u64 = 0;
    pub const TAG_VICTIM: u64 = 1;
    pub const TAG_FILL: u64 = 2;
    pub const DATA_HIT: u64 = 0;
    pub const DATA_CASTOUT: u64 = 1;
    pub const DATA_FILL: u64 = 2;
    pub const BUS_HIT: u64 = 0;
    pub const BUS_FILL: u64 = 1;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SmState {
    /// Waiting for (or accessing) the tag array for the initial lookup.
    TagLookup,
    /// Hit: waiting for / accessing the data array.
    DataAccess,
    /// Read hit: waiting for / on the data bus.
    BusTransfer,
    /// Miss with a dirty victim: reading the victim line out of the data
    /// array for castout.
    Castout,
    /// Miss: victim/state tag update access.
    VictimTag,
    /// Miss: fetch outstanding in the memory system.
    MemWait,
    /// Fill in progress; counts outstanding fill parts (tag update, data
    /// write, bus return).
    Fill { parts: u8 },
}

#[derive(Debug, Clone, Copy)]
struct Sm {
    thread: ThreadId,
    line: LineAddr,
    kind: AccessKind,
    token: u64,
    /// Controller intake time, for read-latency accounting.
    started: Cycle,
    state: SmState,
}

/// What finished when a scheduled resource access completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Completion {
    TagLookup,
    DataHit,
    Bus,
    Castout,
    VictimTag,
    FillPart,
}

/// Per-bank transaction counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct BankStats {
    /// Read requests that hit.
    pub read_hits: Counter,
    /// Read requests that missed.
    pub read_misses: Counter,
    /// Write requests that hit.
    pub write_hits: Counter,
    /// Write requests that missed (write-allocate fetches).
    pub write_misses: Counter,
    /// Dirty victim castouts written back to memory.
    pub castouts: Counter,
}

/// One L2 cache bank.
#[derive(Debug)]
pub struct L2Bank {
    cfg: L2Config,
    bank_idx: usize,
    sets: Vec<TagSet>,
    policy: Box<dyn ReplacementPolicy>,
    ports: Vec<ThreadPort>,
    sms: Vec<Option<Sm>>,
    sm_used: Vec<usize>,
    tag: ArbitratedResource,
    data: ArbitratedResource,
    bus: ArbitratedResource,
    rr_next: usize,
    events: Vec<(Cycle, usize, Completion)>,
    /// Cached minimum due-cycle over `events` (`u64::MAX` when empty), so
    /// the per-tick completion scan is O(1) when nothing is due.
    events_min: Cycle,
    /// Free-slot bitmask over `sms` (bit set = slot free), replacing the
    /// linear `position(Option::is_none)` scan with an O(1) lowest-bit
    /// lookup that allocates the same lowest free index.
    sm_free: Vec<u64>,
    mem_out: VecDeque<MemRequest>,
    responses: VecDeque<(Cycle, CacheResponse)>,
    pending_fetches: Vec<(u64, usize)>,
    castout_lines: Vec<Option<LineAddr>>,
    next_mem_token: u64,
    stats: BankStats,
    /// Per-thread read latency (controller intake to critical word).
    read_latency: Vec<vpc_sim::Histogram>,
}

impl L2Bank {
    /// Creates bank `bank_idx` of a cache described by `cfg`.
    pub fn new(cfg: &L2Config, bank_idx: usize) -> L2Bank {
        let policy: Box<dyn ReplacementPolicy> = match &cfg.capacity {
            CapacityPolicy::Lru => Box::new(TrueLru),
            CapacityPolicy::Vpc { shares } => {
                Box::new(VpcCapacityManager::from_shares(shares, cfg.ways as u32))
            }
        };
        let ports = (0..cfg.threads)
            .map(|t| {
                ThreadPort::new(
                    ThreadId(t as u8),
                    cfg.sgb_entries,
                    cfg.sgb_retire_at,
                    cfg.sgb_idle_drain,
                )
            })
            .collect();
        L2Bank {
            sets: (0..cfg.sets_per_bank()).map(|_| TagSet::new(cfg.ways)).collect(),
            policy,
            ports,
            sms: vec![None; cfg.threads * cfg.sm_per_thread],
            castout_lines: vec![None; cfg.threads * cfg.sm_per_thread],
            sm_used: vec![0; cfg.threads],
            tag: {
                let mut r = ArbitratedResource::new(cfg.resource_arbiters().0.build(cfg.threads));
                r.set_trace_id(trace::ResourceId::tag_array(bank_idx as u16));
                r
            },
            data: {
                let mut r = ArbitratedResource::new(cfg.resource_arbiters().1.build(cfg.threads));
                r.set_trace_id(trace::ResourceId::data_array(bank_idx as u16));
                r
            },
            bus: {
                let mut r = ArbitratedResource::new(cfg.resource_arbiters().2.build(cfg.threads));
                r.set_trace_id(trace::ResourceId::data_bus(bank_idx as u16));
                r
            },
            rr_next: 0,
            events: Vec::new(),
            events_min: u64::MAX,
            sm_free: {
                let n = cfg.threads * cfg.sm_per_thread;
                let mut words = vec![!0u64; n.div_ceil(64)];
                if !n.is_multiple_of(64) {
                    *words.last_mut().expect("at least one word") = (1u64 << (n % 64)) - 1;
                }
                words
            },
            mem_out: VecDeque::new(),
            responses: VecDeque::new(),
            pending_fetches: Vec::new(),
            next_mem_token: 0,
            stats: BankStats::default(),
            read_latency: (0..cfg.threads).map(|_| vpc_sim::Histogram::new()).collect(),
            cfg: cfg.clone(),
            bank_idx,
        }
    }

    /// Whether `thread`'s input port can take another request (crossbar
    /// port credit).
    pub fn can_accept(&self, thread: ThreadId) -> bool {
        self.ports[thread.index()].input_occupancy() < self.cfg.input_queue_cap
    }

    /// Submits a request from the interconnect at `now`; it reaches the
    /// bank's port after the interconnect latency.
    pub fn submit(&mut self, req: CacheRequest, now: Cycle) {
        self.ports[req.thread.index()].push(now + self.cfg.interconnect_latency, req);
    }

    /// Advances the bank. Only even cycles act (the L2 runs at half core
    /// frequency).
    pub fn tick(&mut self, now: Cycle) {
        if !now.is_multiple_of(2) {
            return;
        }
        self.process_events(now);
        self.controller_intake(now);
        self.grant_tag(now);
        self.grant_data(now);
        self.grant_bus(now);
    }

    /// Delivers a memory fetch completion for `token`.
    ///
    /// # Panics
    ///
    /// Panics if the token does not match an outstanding fetch.
    pub fn on_mem_response(&mut self, token: u64, now: Cycle) {
        // Tokens are issued monotonically per bank, so `pending_fetches`
        // stays sorted by construction and a binary search suffices.
        let idx = self
            .pending_fetches
            .binary_search_by_key(&token, |&(t, _)| t)
            .expect("memory response matches an outstanding fetch");
        let (_, sm_idx) = self.pending_fetches.remove(idx);
        let sm = self.sms[sm_idx].expect("fetching SM is live");
        debug_assert_eq!(sm.state, SmState::MemWait);

        // Fill parts: optional tag update, the data-array line write, and
        // (reads) the direct-from-memory bus return.
        let mut parts = 0u8;
        if self.cfg.extra_tag_accesses_per_miss >= 1 {
            self.tag.enqueue(
                ArbRequest::new(
                    arb_id(sm_idx, phase::TAG_FILL),
                    sm.thread,
                    sm.kind,
                    self.cfg.tag_latency,
                ),
                now,
            );
            parts += 1;
        }
        // Full-line fill write: a single data-array access (fresh ECC).
        self.data.enqueue(
            ArbRequest::new(
                arb_id(sm_idx, phase::DATA_FILL),
                sm.thread,
                AccessKind::Write,
                self.cfg.data_latency,
            ),
            now,
        );
        parts += 1;
        if sm.kind.is_read() {
            self.bus.enqueue(
                ArbRequest::new(
                    arb_id(sm_idx, phase::BUS_FILL),
                    sm.thread,
                    AccessKind::Read,
                    self.cfg.bus_latency,
                ),
                now,
            );
            parts += 1;
        }
        // The line was installed (reserved) at miss time; now make it
        // MRU and, for write-allocates, dirty.
        let set = self.cfg.set_of(sm.line);
        if let Some(way) = self.sets[set].lookup(sm.line) {
            self.sets[set].touch(way, now);
            if !sm.kind.is_read() {
                self.sets[set].mark_dirty(way);
            }
        }
        self.set_state(sm_idx, SmState::Fill { parts });
    }

    /// Next memory request to forward, if the controller can accept it.
    pub fn peek_mem_request(&self) -> Option<&MemRequest> {
        self.mem_out.front()
    }

    /// Removes the request returned by [`L2Bank::peek_mem_request`].
    pub fn pop_mem_request(&mut self) -> Option<MemRequest> {
        self.mem_out.pop_front()
    }

    /// Pops the next response whose critical word has reached the core.
    pub fn pop_response(&mut self, now: Cycle) -> Option<CacheResponse> {
        if self.responses.front().is_some_and(|&(at, _)| at <= now) {
            self.responses.pop_front().map(|(_, r)| r)
        } else {
            None
        }
    }

    /// Whether the bank holds no work at all.
    pub fn is_idle(&self) -> bool {
        self.sms.iter().all(Option::is_none)
            && self.ports.iter().all(ThreadPort::is_empty)
            && self.mem_out.is_empty()
            && self.responses.is_empty()
            && self.events.is_empty()
    }

    /// Transaction counters.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Store-gathering statistics for `thread`'s port.
    pub fn port_stats(&self, thread: ThreadId) -> SgbStats {
        self.ports[thread.index()].stats()
    }

    /// `thread`'s read-latency histogram (controller intake to critical
    /// word), covering hits and misses.
    pub fn read_latency(&self, thread: ThreadId) -> &vpc_sim::Histogram {
        &self.read_latency[thread.index()]
    }

    /// Data-array busy cycles attributable to `thread`.
    pub fn thread_data_busy(&self, thread: ThreadId) -> u64 {
        self.data.thread_busy_cycles(thread)
    }

    /// Busy-cycle meters for (tag array, data array, data bus).
    pub fn meters(
        &self,
    ) -> (vpc_sim::UtilizationMeter, vpc_sim::UtilizationMeter, vpc_sim::UtilizationMeter) {
        (self.tag.meter(), self.data.meter(), self.bus.meter())
    }

    /// Looks a line up without side effects (for tests and debugging).
    pub fn probe(&self, line: LineAddr) -> bool {
        self.sets[self.cfg.set_of(line)].lookup(line).is_some()
    }

    /// Reconfigures `thread`'s bandwidth share on all three shared
    /// resources (the VPC control registers). Returns `false` if the
    /// configured arbiters do not support shares.
    pub fn reconfigure_bandwidth(&mut self, thread: ThreadId, share: vpc_sim::Share) -> bool {
        let a = self.tag.arbiter_mut().reconfigure_share(thread, share);
        let b = self.data.arbiter_mut().reconfigure_share(thread, share);
        let c = self.bus.arbiter_mut().reconfigure_share(thread, share);
        a && b && c
    }

    /// Reconfigures `thread`'s way quota. Returns `false` under plain LRU.
    pub fn reconfigure_capacity(&mut self, thread: ThreadId, ways: u32) -> bool {
        self.policy.reconfigure_quota(thread, ways)
    }

    /// The earliest cycle at which this bank can change observable state
    /// absent new [`L2Bank::submit`] / [`L2Bank::on_mem_response`] input:
    /// a scheduled completion, a queued response maturing, a resource
    /// grant, a port arrival, or a controller intake the bank would
    /// accept. `None` when nothing is pending at any future cycle.
    ///
    /// Bank-cycle terms round up to even (the bank acts at half core
    /// frequency); response maturation does not (responses are polled
    /// every core cycle). Conservative by design: the returned cycle is
    /// never *later* than a real state change (see `DESIGN.md` §10) — an
    /// early wake-up is a harmless no-op tick.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let horizon = now + 1;
        let even = |c: Cycle| c + (c & 1);
        // A matured response is deliverable on the very next cycle — the
        // only term not rounded to a bank (even) cycle, so check it first
        // and then early-return whenever a term hits the bank-cycle floor:
        // no later check can improve on it.
        if let Some(&(at, _)) = self.responses.front() {
            if at <= horizon {
                return Some(horizon);
            }
        }
        let floor = even(horizon);
        let mut best: Cycle = u64::MAX;
        if let Some(&(at, _)) = self.responses.front() {
            best = best.min(at);
        }
        if self.events_min != u64::MAX {
            best = best.min(even(self.events_min.max(horizon)));
        }
        for r in [&self.tag, &self.data, &self.bus] {
            if let Some(c) = r.next_activity(now) {
                best = best.min(even(c));
            }
        }
        if best == floor {
            return Some(floor);
        }
        for (t, port) in self.ports.iter().enumerate() {
            if let Some(ready) = port.next_arrival() {
                best = best.min(even(ready.max(horizon)));
            }
            if port.peek_would_mutate() {
                // The naive loop's next bank cycle performs the mutating
                // peek (partial-flush marking), so it is real activity.
                best = best.min(even(horizon));
            }
            if let Some((c, line)) = port.next_candidate_line(horizon) {
                // The candidate only constitutes activity if intake would
                // accept it; a blocked candidate unblocks via events or
                // new input, which the other terms cover.
                if self.sm_used[t] < self.cfg.sm_per_thread
                    && !self.sms.iter().flatten().any(|sm| sm.line == line)
                {
                    best = best.min(even(c));
                }
            }
            if best == floor {
                return Some(floor);
            }
        }
        (best != u64::MAX).then_some(best)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn set_state(&mut self, sm_idx: usize, state: SmState) {
        if let Some(sm) = self.sms[sm_idx].as_mut() {
            sm.state = state;
        }
    }

    fn free_sm(&mut self, sm_idx: usize) {
        if let Some(sm) = self.sms[sm_idx].take() {
            self.sm_used[sm.thread.index()] -= 1;
            self.sm_free[sm_idx / 64] |= 1 << (sm_idx % 64);
        }
    }

    /// Allocates the lowest free SM slot — the same index the former
    /// `position(Option::is_none)` scan produced, found in O(1).
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted (the caller's per-thread quota
    /// check guarantees a free slot).
    fn alloc_sm(&mut self) -> usize {
        for (w, word) in self.sm_free.iter_mut().enumerate() {
            if *word != 0 {
                let bit = word.trailing_zeros() as usize;
                *word &= *word - 1;
                return w * 64 + bit;
            }
        }
        panic!("SM pool has a free slot");
    }

    fn schedule(&mut self, at: Cycle, sm_idx: usize, what: Completion) {
        self.events_min = self.events_min.min(at);
        self.events.push((at, sm_idx, what));
    }

    fn process_events(&mut self, now: Cycle) {
        if self.events_min > now {
            return;
        }
        // The swap_remove scan order is load-bearing: same-cycle
        // completions are handled in the order the swaps produce, and that
        // order is observable downstream (FCFS arbitration, `mem_out`
        // order). Keep the legacy scan; the cached minimum above makes the
        // common nothing-due tick O(1), and the new minimum falls out of
        // the same pass: every surviving event is examined exactly once
        // (swap_remove only pulls not-yet-visited elements forward).
        let mut min = u64::MAX;
        let mut i = 0;
        while i < self.events.len() {
            if self.events[i].0 <= now {
                let (_, sm_idx, what) = self.events.swap_remove(i);
                self.handle_completion(sm_idx, what, now);
            } else {
                min = min.min(self.events[i].0);
                i += 1;
            }
        }
        self.events_min = min;
    }

    fn handle_completion(&mut self, sm_idx: usize, what: Completion, now: Cycle) {
        let sm = self.sms[sm_idx].expect("completion for live SM");
        match what {
            Completion::TagLookup => self.finish_tag_lookup(sm_idx, sm, now),
            Completion::DataHit => {
                if sm.kind.is_read() {
                    // Read data goes through the read-claim queue onto the bus.
                    self.bus.enqueue(
                        ArbRequest::new(
                            arb_id(sm_idx, phase::BUS_HIT),
                            sm.thread,
                            AccessKind::Read,
                            self.cfg.bus_latency,
                        ),
                        now,
                    );
                    self.set_state(sm_idx, SmState::BusTransfer);
                } else {
                    // Write hit is complete once the ECC read-merge-write ends.
                    self.free_sm(sm_idx);
                }
            }
            Completion::Bus => self.free_sm(sm_idx),
            Completion::Castout => {
                self.stats.castouts.inc();
                let victim =
                    self.castout_lines[sm_idx].take().expect("castout line recorded at miss");
                let token = self.make_token();
                self.mem_out.push_back(MemRequest {
                    thread: sm.thread,
                    line: victim,
                    kind: AccessKind::Write,
                    token,
                });
                self.after_victim(sm_idx, sm, now);
            }
            Completion::VictimTag => self.issue_fetch(sm_idx, sm),
            Completion::FillPart => {
                if let SmState::Fill { parts } = sm.state {
                    if parts <= 1 {
                        self.free_sm(sm_idx);
                    } else {
                        self.set_state(sm_idx, SmState::Fill { parts: parts - 1 });
                    }
                }
            }
        }
    }

    fn finish_tag_lookup(&mut self, sm_idx: usize, sm: Sm, now: Cycle) {
        let set = self.cfg.set_of(sm.line);
        let hit = self.sets[set].lookup(sm.line).is_some();
        trace::emit(|| TraceEvent {
            at: now,
            data: EventData::BankAccess {
                bank: self.bank_idx as u16,
                thread: sm.thread,
                line: sm.line,
                kind: sm.kind,
                hit,
            },
        });
        if let Some(way) = self.sets[set].lookup(sm.line) {
            // Hit.
            self.sets[set].touch(way, now);
            let service = if sm.kind.is_read() {
                self.stats.read_hits.inc();
                self.cfg.data_latency
            } else {
                self.stats.write_hits.inc();
                self.sets[set].mark_dirty(way);
                self.cfg.write_latency()
            };
            self.data.enqueue(
                ArbRequest::new(arb_id(sm_idx, phase::DATA_HIT), sm.thread, sm.kind, service),
                now,
            );
            self.set_state(sm_idx, SmState::DataAccess);
            return;
        }
        // Miss: reserve the victim way immediately (the line is installed
        // now so conflict checks and later requests see it; it becomes
        // usable when the fill completes, which same-line conflicts block
        // on anyway).
        if sm.kind.is_read() {
            self.stats.read_misses.inc();
        } else {
            self.stats.write_misses.inc();
        }
        let way = self.sets[set].find_way_for(sm.line, sm.thread, self.policy.as_ref());
        let evicted = self.sets[set].fill(way, sm.line, sm.thread, now);
        if let Some(ev) = &evicted {
            trace::emit(|| TraceEvent {
                at: now,
                data: EventData::Evict {
                    bank: self.bank_idx as u16,
                    thread: sm.thread,
                    line: ev.line,
                    victim: ev.owner,
                    dirty: ev.dirty,
                },
            });
        }
        match evicted {
            Some(ev) if ev.dirty => {
                // Castout: read the dirty victim out of the data array.
                self.data.enqueue(
                    ArbRequest::new(
                        arb_id(sm_idx, phase::DATA_CASTOUT),
                        sm.thread,
                        AccessKind::Read,
                        self.cfg.data_latency,
                    ),
                    now,
                );
                self.castout_lines[sm_idx] = Some(ev.line);
                self.set_state(sm_idx, SmState::Castout);
            }
            _ => self.after_victim(sm_idx, sm, now),
        }
    }

    fn after_victim(&mut self, sm_idx: usize, sm: Sm, now: Cycle) {
        if self.cfg.extra_tag_accesses_per_miss >= 2 {
            self.tag.enqueue(
                ArbRequest::new(
                    arb_id(sm_idx, phase::TAG_VICTIM),
                    sm.thread,
                    sm.kind,
                    self.cfg.tag_latency,
                ),
                now,
            );
            self.set_state(sm_idx, SmState::VictimTag);
        } else {
            self.issue_fetch(sm_idx, sm);
        }
    }

    fn issue_fetch(&mut self, sm_idx: usize, sm: Sm) {
        let token = self.make_token();
        self.mem_out.push_back(MemRequest {
            thread: sm.thread,
            line: sm.line,
            kind: AccessKind::Read,
            token,
        });
        self.pending_fetches.push((token, sm_idx));
        self.set_state(sm_idx, SmState::MemWait);
    }

    fn make_token(&mut self) -> u64 {
        let token = ((self.bank_idx as u64) << 48) | self.next_mem_token;
        self.next_mem_token += 1;
        token
    }

    fn controller_intake(&mut self, now: Cycle) {
        // One request enters the controller pipeline per L2 cycle.
        let threads = self.cfg.threads;
        for offset in 0..threads {
            let t = (self.rr_next + offset) % threads;
            self.ports[t].pump(now);
            let Some(candidate) = self.ports[t].peek_candidate(now) else { continue };
            if self.sm_used[t] >= self.cfg.sm_per_thread {
                continue;
            }
            let line = candidate.request.line;
            // Consistency conflict check: no active SM may work on the same
            // line (also merges secondary misses by making them wait).
            let conflict = self.sms.iter().flatten().any(|sm| sm.line == line);
            if conflict {
                continue;
            }
            let sm_idx = self.alloc_sm();
            let req = candidate.request;
            self.sms[sm_idx] = Some(Sm {
                thread: req.thread,
                line: req.line,
                kind: req.kind,
                token: req.token,
                started: now,
                state: SmState::TagLookup,
            });
            self.sm_used[t] += 1;
            self.ports[t].take_candidate(&candidate, now);
            self.tag.enqueue(
                ArbRequest::new(
                    arb_id(sm_idx, phase::TAG_LOOKUP),
                    req.thread,
                    req.kind,
                    self.cfg.tag_latency,
                ),
                now,
            );
            self.rr_next = (t + 1) % threads;
            break;
        }
    }

    fn grant_tag(&mut self, now: Cycle) {
        // At most one grant per free period; busy-until blocks the rest.
        if let Some(granted) = self.tag.try_grant(now) {
            let (sm_idx, code) = split_id(granted.id);
            let done = now + granted.service_time;
            let completion = match code {
                phase::TAG_LOOKUP => Completion::TagLookup,
                phase::TAG_VICTIM => Completion::VictimTag,
                phase::TAG_FILL => Completion::FillPart,
                _ => unreachable!("unknown tag phase"),
            };
            self.schedule(done, sm_idx, completion);
        }
    }

    fn grant_data(&mut self, now: Cycle) {
        if let Some(granted) = self.data.try_grant(now) {
            let (sm_idx, code) = split_id(granted.id);
            let done = now + granted.service_time;
            let completion = match code {
                phase::DATA_HIT => Completion::DataHit,
                phase::DATA_CASTOUT => Completion::Castout,
                phase::DATA_FILL => Completion::FillPart,
                _ => unreachable!("unknown data phase"),
            };
            self.schedule(done, sm_idx, completion);
        }
    }

    fn grant_bus(&mut self, now: Cycle) {
        if let Some(granted) = self.bus.try_grant(now) {
            let (sm_idx, code) = split_id(granted.id);
            let sm = self.sms[sm_idx].expect("bus grant for live SM");
            // The requesting core receives the critical word shortly after
            // the transfer starts.
            let ready = now + self.cfg.critical_word_latency;
            self.read_latency[sm.thread.index()].record(ready - sm.started);
            self.responses.push_back((
                ready,
                CacheResponse { thread: sm.thread, line: sm.line, token: sm.token },
            ));
            let done = now + granted.service_time;
            let completion = match code {
                phase::BUS_HIT => Completion::Bus,
                phase::BUS_FILL => Completion::FillPart,
                _ => unreachable!("unknown bus phase"),
            };
            self.schedule(done, sm_idx, completion);
        }
    }
}

fn arb_id(sm_idx: usize, code: u64) -> u64 {
    ((sm_idx as u64) << 3) | code
}

fn split_id(id: u64) -> (usize, u64) {
    ((id >> 3) as usize, id & 0x7)
}
