//! End-to-end guarantees of the observability layer: the trace stream is
//! a pure function of the simulated system (identical at any worker
//! count), ring overflow never disturbs retained events, and the fig5
//! contention trace matches its checked-in golden byte-for-byte.

use std::path::PathBuf;
use std::sync::Mutex;

use vpc::experiments::{fig5, RunBudget};
use vpc::json::JsonValue;
use vpc::prelude::*;
use vpc_sim::check::{self, Config};
use vpc_sim::exec::{self, Job};
use vpc_sim::trace::{self, EventData, TraceEvent};
use vpc_sim::{ensure_eq, Cycle};

/// The worker-count and capture overrides are process-global, so the
/// tests touching them serialize on one mutex and restore the defaults.
static EXEC_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn ring_overflow_keeps_prefix_and_counts_drops() {
    check::forall("ring_overflow", Config::cases(128), |rng| {
        let capacity = rng.below(64) as usize;
        let total = rng.below(200);
        let mut log = trace::TraceLog::new(capacity);
        let event = |i: u64| TraceEvent {
            at: i as Cycle,
            data: EventData::SgbGather { thread: ThreadId(0), line: vpc_sim::LineAddr(i) },
        };
        for i in 0..total {
            log.push(event(i));
        }
        let retained = total.min(capacity as u64);
        ensure_eq!(log.events().len() as u64, retained, "retained count");
        ensure_eq!(log.dropped(), total - retained, "drop count");
        ensure_eq!(log.total(), total, "total offered");
        for (i, e) in log.events().iter().enumerate() {
            ensure_eq!(*e, event(i as u64), "event {i} reordered or rewritten");
        }
        Ok(())
    });
}

/// Runs a small contention grid through the exec pool with per-job
/// capture armed and returns the labeled logs, restoring all globals.
fn captured_grid(workers: usize) -> Vec<(String, trace::TraceLog)> {
    exec::set_jobs(Some(workers));
    trace::set_capture(Some(4096));
    let jobs: Vec<Job<()>> = [2usize, 4]
        .into_iter()
        .map(|banks| {
            Job::new(format!("grid/{banks}B"), move || {
                let mut cfg = CmpConfig::table1().with_banks(banks);
                cfg.l2.total_sets = 512;
                let cfg = cfg.with_vpc_shares(vec![Share::new(1, 4).unwrap(); 4]);
                let mut sys = CmpSystem::new(cfg, &fig5::contention_workloads());
                sys.run(4_000);
            })
        })
        .collect();
    exec::map_indexed(jobs, exec::jobs());
    let logs = trace::take_job_logs();
    trace::set_capture(None);
    exec::set_jobs(None);
    exec::take_timings();
    logs
}

#[test]
fn job_trace_streams_identical_at_jobs_1_and_4() {
    let _guard = EXEC_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = captured_grid(1);
    let parallel = captured_grid(4);
    assert_eq!(serial.len(), 2, "one log per job");
    for ((label_s, log_s), (label_p, log_p)) in serial.iter().zip(&parallel) {
        assert_eq!(label_s, label_p, "job logs arrive in input order");
        assert_eq!(log_s, log_p, "trace stream for {label_s} depends on the worker count");
        assert!(!log_s.events().is_empty(), "{label_s} recorded no events");
    }
}

/// Environment variable that switches the golden test into updater mode
/// (same flow as `tests/golden_quick.rs`).
const UPDATE_ENV: &str = "VPC_UPDATE_GOLDENS";

#[test]
fn trace_fig5_matches_golden() {
    let log = fig5::trace_scenario(&CmpConfig::table1(), RunBudget::quick(), 512);
    let doc = vpc::trace::chrome_trace("fig5/contention Loads+3xStores", &log);
    let rendered = doc.pretty() + "\n";
    // The export must round-trip through the in-tree parser.
    let parsed = JsonValue::parse(&rendered).expect("chrome trace parses back");
    assert_eq!(parsed, doc, "parse(pretty(doc)) is not the identity");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/quick/trace_fig5.json");
    if std::env::var(UPDATE_ENV).is_ok_and(|v| v == "1") {
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("read {path:?}: {e}\n(generate with {UPDATE_ENV}=1 cargo test --test trace_observability)")
    });
    assert_eq!(
        rendered, golden,
        "regenerated fig5 contention trace differs from the golden; if the \
         behavior change is intended, refresh with {UPDATE_ENV}=1"
    );
}
