//! Ablations: reordering, capacity manager, preemption latency, work
//! conservation.

use std::time::Instant;

use vpc::experiments::ablations;
use vpc::prelude::*;

fn main() {
    let budget = vpc_bench::budget_from_args();
    let jobs = vpc_bench::jobs_from_args();
    let trace_path = vpc_bench::trace_from_args();
    vpc_bench::header("Ablations", budget);
    let base = CmpConfig::table1();
    let start = Instant::now();
    println!("{}", ablations::reorder(&base, budget));
    println!("{}", ablations::capacity(&base, budget));
    println!("{}", ablations::preemption(&base, budget));
    println!("{}", ablations::memory_fq(&base, budget));
    println!("{}", ablations::prefetch(&base, budget));
    println!("{}", ablations::fairness_policies(&base, budget));
    println!("{}", ablations::scaling(&base, budget));
    println!("{}", ablations::work_conservation(&base, budget));
    vpc_bench::report_timings("ablations", jobs, start.elapsed());
    if let Some(path) = &trace_path {
        vpc_bench::write_job_traces(path);
    }
}
