//! One Criterion bench per table/figure of the paper: each benchmark runs
//! a reduced-budget version of the corresponding experiment end to end, so
//! `cargo bench` both regenerates every result's machinery and tracks the
//! harness's performance over time. The full-length runs (paper-scale
//! windows, all benchmarks/mixes) live in the `vpc-bench` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use vpc::experiments::{ablations, fig10, fig4, fig5, fig6, fig7, fig8, fig9, RunBudget};
use vpc::prelude::*;

fn small_base() -> CmpConfig {
    let mut cfg = CmpConfig::table1();
    cfg.l2.total_sets = 1024;
    cfg
}

fn tiny() -> RunBudget {
    RunBudget { warmup: 4_000, window: 12_000 }
}

fn bench_fig4(c: &mut Criterion) {
    let base = small_base();
    c.bench_function("fig4_bank_timing", |b| b.iter(|| black_box(fig4::run(&base))));
}

fn bench_fig5(c: &mut Criterion) {
    let base = small_base();
    c.bench_function("fig5_micro_utilization", |b| {
        b.iter(|| black_box(fig5::run(&base, tiny())))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let base = small_base();
    // One representative benchmark per weight class keeps the bench quick.
    c.bench_function("fig6_spec_utilization", |b| {
        b.iter(|| {
            for name in ["art", "gcc", "sixtrack"] {
                black_box(fig6::run_one(&base, name, tiny()));
            }
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    let base = small_base();
    c.bench_function("fig7_store_gathering", |b| {
        b.iter(|| {
            let mut cfg = base.clone();
            cfg.processors = 1;
            cfg.l2.threads = 1;
            let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Spec("mesa")]);
            black_box(sys.run_measured(tiny().warmup, tiny().window).gathering_rate[0])
        })
    });
    // The full 18-benchmark table:
    let mut group = c.benchmark_group("fig7_full");
    group.sample_size(10);
    group.bench_function("all_benchmarks", |b| b.iter(|| black_box(fig7::run(&base, tiny()))));
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let base = small_base();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("loads_stores_sweep", |b| b.iter(|| black_box(fig8::run(&base, tiny()))));
    group.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let base = small_base();
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("subject_vs_stores", |b| {
        b.iter(|| black_box(fig9::run(&base, &["gcc"], tiny())))
    });
    group.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let base = small_base();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("heterogeneous_mix", |b| {
        b.iter(|| black_box(fig10::run(&base, &[["gcc", "gzip", "twolf", "ammp"]], tiny())))
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let base = small_base();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("work_conservation", |b| {
        b.iter(|| black_box(ablations::work_conservation(&base, tiny())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_ablations
);
criterion_main!(benches);
