//! Start-time fair queuing: a third fairness policy for the comparison
//! the paper defers to future work.
//!
//! SFQ differs from the VPC arbiter (a Virtual-Clock/EDF scheme keyed on
//! real time) in two ways: requests are ordered by virtual **start** time
//! rather than finish time, and the system virtual time is defined as the
//! start tag of the request *in service* — so a thread returning from idle
//! re-enters at the current system virtual time rather than the wall
//! clock. The practical consequence: a thread that consumed excess
//! bandwidth while others idled is **not** penalized later (no banked
//! punishment), at the cost of a slightly weaker short-term latency bound.

use std::collections::VecDeque;

use vpc_sim::{Cycle, Share, ThreadId};

use crate::arbiter::Arbiter;
use crate::request::ArbRequest;

#[derive(Debug)]
struct SfqThread {
    queue: VecDeque<ArbRequest>,
    /// Virtual finish tag of the thread's most recent grant.
    finish: u64,
    share: Share,
}

/// A start-time fair-queuing arbiter.
#[derive(Debug)]
pub struct SfqArbiter {
    threads: Vec<SfqThread>,
    /// System virtual time: the start tag of the last granted request.
    v: u64,
    pending: usize,
    /// Virtual `(start, finish)` of the most recent guaranteed grant, for
    /// trace observability.
    last_virtual: Option<(u64, u64)>,
}

impl SfqArbiter {
    /// Creates an arbiter for `num_threads` threads, all with zero share.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> SfqArbiter {
        assert!(num_threads > 0, "at least one thread required");
        SfqArbiter {
            threads: (0..num_threads)
                .map(|_| SfqThread { queue: VecDeque::new(), finish: 0, share: Share::ZERO })
                .collect(),
            v: 0,
            pending: 0,
            last_virtual: None,
        }
    }

    /// Creates an arbiter with equal shares.
    pub fn equal(num_threads: usize) -> SfqArbiter {
        let mut arb = SfqArbiter::new(num_threads);
        let share = Share::new(1, num_threads as u32).expect("1/threads is a valid share");
        for t in 0..num_threads {
            arb.set_share(ThreadId(t as u8), share);
        }
        arb
    }

    /// Sets `thread`'s bandwidth share.
    pub fn set_share(&mut self, thread: ThreadId, share: Share) {
        self.threads[thread.index()].share = share;
    }

    /// The system virtual time (for tests).
    pub fn virtual_time(&self) -> u64 {
        self.v
    }

    /// A thread's next start tag: `max(v at arrival-to-idle, previous
    /// finish)`. Because enqueue clamps `finish` up to `v` for idle
    /// threads, the start tag is simply the stored finish tag.
    fn start_tag(&self, t: usize) -> u64 {
        self.threads[t].finish
    }
}

impl Arbiter for SfqArbiter {
    fn enqueue(&mut self, mut req: ArbRequest, now: Cycle) {
        req.arrival = now;
        let v = self.v;
        let state = &mut self.threads[req.thread.index()];
        // A thread re-entering from idle starts at the *system virtual
        // time* (not the wall clock — the SFQ/VC difference).
        if state.queue.is_empty() && state.finish < v {
            state.finish = v;
        }
        state.queue.push_back(req);
        self.pending += 1;
    }

    fn select(&mut self, _now: Cycle) -> Option<ArbRequest> {
        // Minimum start tag among guaranteed backlogged threads.
        let mut best: Option<(u64, usize)> = None;
        for t in 0..self.threads.len() {
            if self.threads[t].share.is_zero() || self.threads[t].queue.is_empty() {
                continue;
            }
            let start = self.start_tag(t);
            if best.is_none_or(|(s, _)| start < s) {
                best = Some((start, t));
            }
        }
        if let Some((start, t)) = best {
            let req = self.threads[t].queue.pop_front().expect("backlogged");
            let virt =
                self.threads[t].share.scaled_latency(req.service_time).expect("nonzero share");
            self.v = start; // system virtual time = start tag in service
            self.threads[t].finish = start + virt;
            self.pending -= 1;
            self.last_virtual = Some((start, start + virt));
            return Some(req);
        }
        // Zero-share threads: oldest first.
        let t = (0..self.threads.len())
            .filter(|&t| !self.threads[t].queue.is_empty())
            .min_by_key(|&t| self.threads[t].queue.front().expect("non-empty").arrival)?;
        self.pending -= 1;
        self.last_virtual = None;
        self.threads[t].queue.pop_front()
    }

    fn len(&self) -> usize {
        self.pending
    }

    fn reconfigure_share(&mut self, thread: ThreadId, share: Share) -> bool {
        self.set_share(thread, share);
        true
    }

    fn last_grant_virtual(&self) -> Option<(u64, u64)> {
        self.last_virtual
    }

    fn backlogged_threads(&self, out: &mut Vec<(ThreadId, Option<u64>)>) {
        out.extend(self.threads.iter().enumerate().filter(|(_, s)| !s.queue.is_empty()).map(
            |(t, s)| {
                let start = if s.share.is_zero() { None } else { Some(s.finish) };
                (ThreadId(t as u8), start)
            },
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::AccessKind;

    fn read(id: u64, t: u8, service: u64) -> ArbRequest {
        ArbRequest::new(id, ThreadId(t), AccessKind::Read, service)
    }

    #[test]
    fn proportional_split_when_backlogged() {
        let mut arb = SfqArbiter::new(2);
        arb.set_share(ThreadId(0), Share::new(3, 4).unwrap());
        arb.set_share(ThreadId(1), Share::new(1, 4).unwrap());
        let mut id = 0;
        let mut grants = [0u64; 2];
        let mut now = 0;
        for _ in 0..4000 {
            for t in 0..2u8 {
                while arb.threads[t as usize].queue.len() < 2 {
                    id += 1;
                    arb.enqueue(read(id, t, 8), now);
                }
            }
            let g = arb.select(now).unwrap();
            grants[g.thread.index()] += 1;
            now += g.service_time;
        }
        let ratio = grants[0] as f64 / grants[1] as f64;
        assert!((2.7..3.3).contains(&ratio), "3:1 split expected, got {ratio}");
    }

    #[test]
    fn no_banked_punishment_after_solo_running() {
        // The SFQ property the VPC arbiter lacks: thread 0 over-serves
        // while thread 1 idles; when thread 1 wakes, thread 0 resumes
        // competing at the *system* virtual time, so it is served in the
        // very next few grants rather than starved until the wall clock
        // catches up.
        let mut arb = SfqArbiter::equal(2);
        let mut now = 0;
        for i in 0..200u64 {
            arb.enqueue(read(i, 0, 8), now);
            let g = arb.select(now).unwrap();
            assert_eq!(g.thread, ThreadId(0));
            now += g.service_time;
        }
        // Thread 1 wakes with a burst; interleave new arrivals.
        let mut grants0_in_first_10 = 0;
        let mut id = 1000;
        for t in 0..10u64 {
            id += 1;
            arb.enqueue(read(id, 1, 8), now + t);
            id += 1;
            arb.enqueue(read(id, 0, 8), now + t);
        }
        for _ in 0..10 {
            if arb.select(now).unwrap().thread == ThreadId(0) {
                grants0_in_first_10 += 1;
            }
        }
        assert!(
            grants0_in_first_10 >= 4,
            "SFQ must not starve the former solo runner: got {grants0_in_first_10}/10"
        );
    }

    #[test]
    fn system_virtual_time_tracks_service() {
        let mut arb = SfqArbiter::equal(2);
        arb.enqueue(read(1, 0, 8), 0);
        arb.select(0);
        let v1 = arb.virtual_time();
        arb.enqueue(read(2, 0, 8), 100);
        arb.select(100);
        assert!(arb.virtual_time() > v1, "virtual time advances with service");
    }

    #[test]
    fn zero_share_fallback_is_fcfs() {
        let mut arb = SfqArbiter::new(2);
        arb.enqueue(read(1, 1, 8), 0);
        arb.enqueue(read(2, 0, 8), 1);
        assert_eq!(arb.select(2).unwrap().id, 1);
        assert_eq!(arb.select(2).unwrap().id, 2);
    }
}
