//! Replacement policies, including the VPC Capacity Manager.

use vpc_sim::{Share, ThreadId, MAX_THREADS};

use crate::set::TagSet;

/// Chooses a victim way in a full set.
///
/// Invalid ways are consumed by [`TagSet::find_way_for`] before the policy
/// is consulted, so implementations may assume every way is valid.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Returns the way index to victimize for a fill by `requester`.
    fn choose_victim(&self, set: &TagSet, requester: ThreadId) -> usize;

    /// Reconfigures `thread`'s way quota, if this policy enforces quotas.
    /// Returns `false` for quota-oblivious policies (plain LRU).
    fn reconfigure_quota(&mut self, _thread: ThreadId, _ways: u32) -> bool {
        false
    }
}

/// Global true-LRU replacement: the baseline *shared* cache, with no
/// inter-thread isolation — an aggressive thread can strip a neighbor's
/// working set.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrueLru;

impl ReplacementPolicy for TrueLru {
    fn choose_victim(&self, set: &TagSet, _requester: ThreadId) -> usize {
        set.lru_way().expect("set is full when policy consulted")
    }
}

/// How the VPC Capacity Manager's fairness refinement (§4.2.2) picks among
/// multiple threads that all occupy more than their share of the set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverQuotaTieBreak {
    /// Victimize the globally least-recently-used line among all over-quota
    /// threads' LRU candidates.
    #[default]
    GlobalLru,
    /// Victimize the thread exceeding its quota by the largest number of
    /// ways (ties broken toward the LRU line).
    MostOverQuota,
}

/// The paper's VPC Capacity Manager (§4.2): way-quota thread-aware
/// replacement.
///
/// Each thread `i` is guaranteed `alpha_i * ways` ways in every set. On a
/// fill into a full set:
///
/// 1. if some *other* thread `j` occupies more than its quota, evict `j`'s
///    LRU line (taking it cannot push `j` below its guarantee, and that line
///    would not be resident in `j`'s equivalent private cache);
/// 2. otherwise evict the requester's own LRU line — exactly what a private
///    cache with `alpha_i` of the ways would do.
#[derive(Debug, Clone)]
pub struct VpcCapacityManager {
    quotas: [u32; MAX_THREADS],
    tie_break: OverQuotaTieBreak,
}

impl VpcCapacityManager {
    /// Creates a manager with explicit per-thread way quotas.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_THREADS`] quotas are given.
    pub fn new(quotas: &[u32]) -> VpcCapacityManager {
        assert!(quotas.len() <= MAX_THREADS, "at most {MAX_THREADS} threads supported");
        let mut q = [0u32; MAX_THREADS];
        q[..quotas.len()].copy_from_slice(quotas);
        VpcCapacityManager { quotas: q, tie_break: OverQuotaTieBreak::default() }
    }

    /// Creates a manager from capacity shares `alpha_i` over `total_ways`
    /// ways (quota `floor(alpha_i * ways)`, the guaranteed minimum).
    pub fn from_shares(shares: &[Share], total_ways: u32) -> VpcCapacityManager {
        let quotas: Vec<u32> = shares.iter().map(|s| s.of_ways(total_ways)).collect();
        VpcCapacityManager::new(&quotas)
    }

    /// Equal quotas for `threads` threads over `total_ways` ways (the
    /// evaluation's configuration: `alpha_i = 1/4`, no unallocated ways).
    pub fn equal(threads: usize, total_ways: u32) -> VpcCapacityManager {
        let share = Share::new(1, threads as u32).expect("1/threads is a valid share");
        VpcCapacityManager::from_shares(&vec![share; threads], total_ways)
    }

    /// Selects the fairness refinement for distributing excess capacity.
    pub fn with_tie_break(mut self, tie_break: OverQuotaTieBreak) -> VpcCapacityManager {
        self.tie_break = tie_break;
        self
    }

    /// The way quota guaranteed to `thread`.
    pub fn quota(&self, thread: ThreadId) -> u32 {
        self.quotas[thread.index()]
    }

    /// Sets `thread`'s way quota (system-software reconfiguration).
    pub fn set_quota(&mut self, thread: ThreadId, ways: u32) {
        self.quotas[thread.index()] = ways;
    }
}

impl ReplacementPolicy for VpcCapacityManager {
    fn reconfigure_quota(&mut self, thread: ThreadId, ways: u32) -> bool {
        self.set_quota(thread, ways);
        true
    }

    fn choose_victim(&self, set: &TagSet, requester: ThreadId) -> usize {
        // Condition 1: LRU line of an over-quota thread other than the
        // requester, refined by the fairness tie-break.
        let mut candidate: Option<(usize, u64, i64)> = None; // (way, last_touch, over_by)
        for t in 0..MAX_THREADS {
            let thread = ThreadId(t as u8);
            if thread == requester {
                continue;
            }
            let occ = set.occupancy(thread) as i64;
            let quota = i64::from(self.quotas[t]);
            if occ > quota {
                if let Some(way) = set.lru_of_thread(thread) {
                    let touch =
                        set.iter().find(|(i, _)| *i == way).map(|(_, w)| w.last_touch).unwrap_or(0);
                    let over_by = occ - quota;
                    let better = match (candidate, self.tie_break) {
                        (None, _) => true,
                        (Some((_, lt, _)), OverQuotaTieBreak::GlobalLru) => touch < lt,
                        (Some((_, lt, ob)), OverQuotaTieBreak::MostOverQuota) => {
                            over_by > ob || (over_by == ob && touch < lt)
                        }
                    };
                    if better {
                        candidate = Some((way, touch, over_by));
                    }
                }
            }
        }
        if let Some((way, _, _)) = candidate {
            return way;
        }
        // Condition 2: the requester's own LRU line. If the requester owns
        // no line in the set (possible only when its quota is zero and no
        // other thread exceeds its quota — e.g. unallocated ways absorbed
        // exactly), fall back to the global LRU line.
        set.lru_of_thread(requester)
            .or_else(|| set.lru_way())
            .expect("set is full when policy consulted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::check::{self, Config};
    use vpc_sim::{ensure, ensure_eq, LineAddr};

    fn filled_set(entries: &[(u64, u8, u64)]) -> TagSet {
        // (line, owner, last_touch)
        let mut set = TagSet::new(entries.len());
        for (way, &(line, owner, touch)) in entries.iter().enumerate() {
            set.fill(way, LineAddr(line), ThreadId(owner), touch);
        }
        set
    }

    #[test]
    fn true_lru_picks_oldest() {
        let set = filled_set(&[(1, 0, 30), (2, 1, 10), (3, 0, 20)]);
        assert_eq!(TrueLru.choose_victim(&set, ThreadId(0)), 1);
    }

    #[test]
    fn condition1_evicts_over_quota_thread() {
        // 4 ways, quotas [2, 2]. Thread 1 holds 3 ways (over quota).
        let policy = VpcCapacityManager::new(&[2, 2]);
        let set = filled_set(&[(1, 0, 5), (2, 1, 1), (3, 1, 2), (4, 1, 3)]);
        let victim = policy.choose_victim(&set, ThreadId(0));
        assert_eq!(set.owner(victim), Some(ThreadId(1)));
        assert_eq!(victim, 1, "thread 1's LRU line");
    }

    #[test]
    fn condition2_evicts_own_lru_when_no_one_over_quota() {
        // 4 ways, quotas [2, 2], both threads exactly at quota.
        let policy = VpcCapacityManager::new(&[2, 2]);
        let set = filled_set(&[(1, 0, 5), (2, 0, 3), (3, 1, 1), (4, 1, 2)]);
        let victim = policy.choose_victim(&set, ThreadId(0));
        assert_eq!(victim, 1, "own LRU line, not thread 1's older lines");
        assert_eq!(set.owner(victim), Some(ThreadId(0)));
    }

    #[test]
    fn requester_over_quota_still_evicts_own_line() {
        // Thread 0 over quota, thread 1 at quota: condition 1 does not apply
        // (it only considers *other* threads), so thread 0 evicts its own LRU.
        let policy = VpcCapacityManager::new(&[1, 3]);
        let set = filled_set(&[(1, 0, 5), (2, 0, 3), (3, 1, 1), (4, 1, 2)]);
        let victim = policy.choose_victim(&set, ThreadId(0));
        assert_eq!(set.owner(victim), Some(ThreadId(0)));
        assert_eq!(victim, 1);
    }

    #[test]
    fn tie_break_global_lru() {
        // Threads 1 and 2 both over quota; GlobalLru picks the older line.
        let policy =
            VpcCapacityManager::new(&[2, 1, 1]).with_tie_break(OverQuotaTieBreak::GlobalLru);
        let set = filled_set(&[(1, 1, 4), (2, 1, 8), (3, 2, 2), (4, 2, 6)]);
        let victim = policy.choose_victim(&set, ThreadId(0));
        assert_eq!(
            victim, 2,
            "thread 2's LRU (touch 2) is globally older than thread 1's (touch 4)"
        );
    }

    #[test]
    fn tie_break_most_over_quota() {
        // Thread 1 over by 2, thread 2 over by 1: MostOverQuota picks thread 1.
        let policy =
            VpcCapacityManager::new(&[1, 1, 1]).with_tie_break(OverQuotaTieBreak::MostOverQuota);
        let set = filled_set(&[(1, 1, 4), (2, 1, 8), (3, 1, 9), (4, 2, 2), (5, 2, 6)]);
        let victim = policy.choose_victim(&set, ThreadId(0));
        assert_eq!(set.owner(victim), Some(ThreadId(1)));
        assert_eq!(victim, 0, "thread 1's LRU line");
    }

    #[test]
    fn from_shares_computes_quotas() {
        let policy = VpcCapacityManager::from_shares(
            &[Share::new(1, 2).unwrap(), Share::new(1, 4).unwrap()],
            32,
        );
        assert_eq!(policy.quota(ThreadId(0)), 16);
        assert_eq!(policy.quota(ThreadId(1)), 8);
        assert_eq!(policy.quota(ThreadId(2)), 0);
    }

    #[test]
    fn equal_shares_cover_all_ways() {
        let policy = VpcCapacityManager::equal(4, 32);
        for t in 0..4 {
            assert_eq!(policy.quota(ThreadId(t)), 8);
        }
    }

    /// A reference private LRU cache set with `q` ways for one thread.
    struct PrivateSet {
        lines: Vec<(LineAddr, u64)>, // (line, last_touch)
        ways: usize,
    }

    impl PrivateSet {
        fn new(ways: usize) -> PrivateSet {
            PrivateSet { lines: Vec::new(), ways }
        }

        fn access(&mut self, line: LineAddr, now: u64) -> bool {
            if let Some(e) = self.lines.iter_mut().find(|(l, _)| *l == line) {
                e.1 = now;
                return true;
            }
            if self.lines.len() == self.ways {
                let lru = self
                    .lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, t))| *t)
                    .map(|(i, _)| i)
                    .unwrap();
                self.lines.swap_remove(lru);
            }
            self.lines.push((line, now));
            false
        }
    }

    /// Isolation guarantee: under the VPC capacity manager, an insert by
    /// thread j never evicts thread i's line while i is at or below its
    /// quota (i != j).
    #[test]
    fn never_evicts_thread_at_or_below_quota() {
        check::forall("never_evicts_thread_at_or_below_quota", Config::cases(48), |rng| {
            let ways = 8;
            let policy = VpcCapacityManager::new(&[3, 3, 2]);
            let mut set = TagSet::new(ways);
            for now in 0..600u64 {
                let t = ThreadId(rng.below(3) as u8);
                let line = LineAddr(rng.below(32) + 1000 * u64::from(t.0));
                if let Some(way) = set.lookup(line) {
                    set.touch(way, now);
                    continue;
                }
                let victim = set.find_way_for(line, t, &policy);
                if let Some(owner) = set.owner(victim) {
                    if owner != t {
                        let occ = set.occupancy(owner);
                        let quota = policy.quota(owner) as usize;
                        ensure!(occ > quota, "evicted {owner} at occupancy {occ} <= quota {quota}");
                    }
                }
                set.fill(victim, line, t, now);
            }
            Ok(())
        });
    }

    /// QoS inclusion: a thread's hits in the shared VPC-managed set are a
    /// superset of its hits in a private set with quota ways — the "a VPC
    /// performs at least as well as the equivalent real private cache"
    /// property, at the capacity level.
    #[test]
    fn shared_vpc_hits_superset_of_private() {
        check::forall("shared_vpc_hits_superset_of_private", Config::cases(48), |rng| {
            let ways = 8;
            let quotas = [4u32, 2, 2];
            let policy = VpcCapacityManager::new(&quotas);
            let mut shared = TagSet::new(ways);
            let mut privates: Vec<PrivateSet> =
                quotas.iter().map(|&q| PrivateSet::new(q as usize)).collect();
            for now in 0..800u64 {
                let t = rng.below(3) as usize;
                let thread = ThreadId(t as u8);
                // Disjoint address spaces per thread, as in the evaluation.
                let line = LineAddr(rng.below(12) + 1000 * t as u64);
                let private_hit = privates[t].access(line, now);
                let shared_hit = shared.lookup(line).is_some();
                ensure!(
                    !private_hit || shared_hit,
                    "line {line} hit in private cache but missed in shared VPC set"
                );
                match shared.lookup(line) {
                    Some(way) => shared.touch(way, now),
                    None => {
                        let victim = shared.find_way_for(line, thread, &policy);
                        shared.fill(victim, line, thread, now);
                    }
                }
            }
            Ok(())
        });
    }

    /// With a single thread owning all ways, the VPC manager degenerates
    /// to true LRU.
    #[test]
    fn single_thread_full_quota_is_lru() {
        check::forall("single_thread_full_quota_is_lru", Config::cases(48), |rng| {
            let ways = 4;
            let policy = VpcCapacityManager::new(&[4]);
            let mut vpc_set = TagSet::new(ways);
            let mut lru_set = TagSet::new(ways);
            for now in 0..300u64 {
                let line = LineAddr(rng.below(10));
                for (set, as_policy) in [
                    (&mut vpc_set, &policy as &dyn ReplacementPolicy),
                    (&mut lru_set, &TrueLru as &dyn ReplacementPolicy),
                ] {
                    match set.lookup(line) {
                        Some(way) => set.touch(way, now),
                        None => {
                            let victim = set.find_way_for(line, ThreadId(0), as_policy);
                            set.fill(victim, line, ThreadId(0), now);
                        }
                    }
                }
                let vpc_lines: Vec<_> = vpc_set.iter().map(|(_, w)| w.line).collect();
                let lru_lines: Vec<_> = lru_set.iter().map(|(_, w)| w.line).collect();
                ensure_eq!(vpc_lines, lru_lines);
            }
            Ok(())
        });
    }
}
