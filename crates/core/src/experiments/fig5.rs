//! Figure 5: L2 cache utilization of the microbenchmarks vs. bank count.
//!
//! Loads and Stores each run alone on configurations with 2, 4, 8 and 16
//! banks. The paper's shape: Loads fully utilizes two banks and reaches
//! about 80% of four (its LMQ-limited load stream cannot feed more), while
//! Stores — whose writes enter the L2 in order with ideal interleaving —
//! fully utilizes the data arrays of as many as eight banks.

use std::fmt;

use crate::config::{CmpConfig, WorkloadSpec};
use crate::experiments::{bar, pct, RunBudget};
use crate::metrics::QosLedger;
use crate::system::CmpSystem;
use vpc_arbiters::ArbiterPolicy;
use vpc_cache::L2Utilization;
use vpc_sim::exec::{self, Job};
use vpc_sim::{trace, Share};

/// One bar group of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// "Loads" or "Stores".
    pub benchmark: &'static str,
    /// Number of L2 banks.
    pub banks: usize,
    /// Utilization of the three shared resources.
    pub util: L2Utilization,
}

/// The full Figure 5 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// One row per (benchmark, bank count).
    pub rows: Vec<Fig5Row>,
}

impl Fig5Result {
    /// Finds a row.
    pub fn row(&self, benchmark: &str, banks: usize) -> Option<&Fig5Row> {
        self.rows.iter().find(|r| r.benchmark == benchmark && r.banks == banks)
    }
}

impl fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 5: Microbenchmark L2 Cache Utilization")?;
        writeln!(
            f,
            "{:<12} {:>6} {:>10} {:>10} {:>10}",
            "benchmark", "banks", "data", "bus", "tag"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>6} {:>10} {:>10} {:>10}  {}",
                format!("{} {}B", r.benchmark, r.banks),
                r.banks,
                pct(r.util.data_array),
                pct(r.util.data_bus),
                pct(r.util.tag_array),
                bar(r.util.data_array, 24),
            )?;
        }
        Ok(())
    }
}

/// Runs the Figure 5 sweep, one parallel job per (benchmark, bank count).
pub fn run(base: &CmpConfig, budget: RunBudget) -> Fig5Result {
    let mut jobs = Vec::new();
    for benchmark in [WorkloadSpec::Loads, WorkloadSpec::Stores] {
        for banks in [2usize, 4, 8, 16] {
            jobs.push(Job::new(format!("fig5/{} {}B", benchmark.name(), banks), move || {
                let mut cfg = base.clone().with_banks(banks);
                cfg.processors = 1;
                cfg.l2.threads = 1;
                let mut sys = CmpSystem::new(cfg, &[benchmark]);
                let m = sys.run_measured(budget.warmup, budget.window);
                Fig5Row { benchmark: benchmark.name(), banks, util: m.util }
            }));
        }
    }
    Fig5Result { rows: exec::map_indexed(jobs, exec::jobs()) }
}

/// Workloads of the 4-thread contention variant of the fig5
/// microbenchmarks: one Loads stream against three Stores streams on the
/// shared two-bank L2. Writes occupy the data array twice as long as
/// reads, so a share-oblivious arbiter lets the store threads over-serve
/// — which is what the trace and the QoS ledger make visible.
pub fn contention_workloads() -> [WorkloadSpec; 4] {
    [WorkloadSpec::Loads, WorkloadSpec::Stores, WorkloadSpec::Stores, WorkloadSpec::Stores]
}

/// Accounting window (cycles) used by [`qos_ledger`].
pub const QOS_WINDOW: u64 = 4096;

/// Per-window tolerance (data-array cycles) used by [`qos_ledger`]: a
/// handful of maximum-service (write) quanta, absorbing the indivisible-
/// grant quantization an EDF schedule can overshoot an entitlement by.
pub const QOS_SLACK: u64 = 128;

/// Records a cycle-level trace of the contention scenario under VPC
/// arbiters with equal shares: warm up untraced, then record `capacity`
/// events of the steady state (later events only bump the drop counter).
///
/// Installs the calling thread's [`vpc_sim::trace`] recorder; any
/// recorder previously installed on this thread is discarded.
pub fn trace_scenario(base: &CmpConfig, budget: RunBudget, capacity: usize) -> trace::TraceLog {
    let beta = Share::new(1, 4).expect("1/4 is a valid share");
    let cfg = base.clone().with_vpc_shares(vec![beta; 4]);
    let mut sys = CmpSystem::new(cfg, &contention_workloads());
    sys.run(budget.warmup);
    trace::install(capacity);
    sys.run(budget.window);
    trace::take().expect("recorder installed above")
}

/// Runs the contention scenario under `arbiter` and returns the filled
/// [`QosLedger`] (equal `1/4` entitlements, [`QOS_WINDOW`]-cycle windows,
/// [`QOS_SLACK`] tolerance). With [`ArbiterPolicy::vpc_equal`] every
/// thread's sustained excess is zero; under [`ArbiterPolicy::Fcfs`] the
/// store threads run up nonzero excess at the Loads thread's expense.
pub fn qos_ledger(base: &CmpConfig, arbiter: ArbiterPolicy, budget: RunBudget) -> QosLedger {
    let beta = Share::new(1, 4).expect("1/4 is a valid share");
    let mut cfg = base.clone();
    cfg.l2.arbiter = arbiter;
    let mut sys = CmpSystem::new(cfg, &contention_workloads());
    sys.run(budget.warmup);
    let mut ledger = QosLedger::new(vec![(beta, beta); 4], QOS_WINDOW, QOS_SLACK);
    sys.run_with_ledger(budget.window, &mut ledger);
    ledger
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbenchmark_scaling_matches_paper_shape() {
        let mut base = CmpConfig::table1();
        base.l2.total_sets = 2048;
        let r = run(&base, RunBudget::quick());
        let loads2 = r.row("Loads", 2).unwrap().util.data_array;
        let loads4 = r.row("Loads", 4).unwrap().util.data_array;
        let loads16 = r.row("Loads", 16).unwrap().util.data_array;
        let stores8 = r.row("Stores", 8).unwrap().util.data_array;
        let stores16 = r.row("Stores", 16).unwrap().util.data_array;

        assert!(loads2 > 0.9, "Loads saturates 2 banks, got {loads2}");
        assert!(loads4 > 0.5 && loads4 < 0.98, "Loads partially uses 4 banks, got {loads4}");
        assert!(loads16 < 0.45, "Loads cannot feed 16 banks, got {loads16}");
        assert!(stores8 > 0.75, "Stores scales to 8 banks, got {stores8}");
        assert!(stores16 < stores8, "Stores cannot scale past 8 banks");
        // Loads: data bus tracks data array (both 8 cycles per line).
        let l2row = r.row("Loads", 2).unwrap();
        assert!((l2row.util.data_array - l2row.util.data_bus).abs() < 0.12);
        // Stores: no bus traffic (writes return nothing).
        let s2 = r.row("Stores", 2).unwrap();
        assert!(s2.util.data_bus < 0.1, "stores use no return bus: {:?}", s2.util);
    }

    fn test_base() -> CmpConfig {
        let mut base = CmpConfig::table1();
        base.l2.total_sets = 2048;
        base
    }

    #[test]
    fn qos_ledger_separates_vpc_from_fcfs() {
        let base = test_base();
        let vpc = qos_ledger(&base, ArbiterPolicy::vpc_equal(4), RunBudget::quick());
        let fcfs = qos_ledger(&base, ArbiterPolicy::Fcfs, RunBudget::quick());
        for t in 0..4 {
            assert!(
                !vpc.has_sustained_excess(t),
                "VPC lets T{t} over-serve: excess {} over {} windows\n{vpc}",
                vpc.excess_service(t),
                vpc.excess_windows(t),
            );
        }
        assert!(
            (0..4).any(|t| fcfs.has_sustained_excess(t)),
            "FCFS should let some thread over-serve\n{fcfs}"
        );
        // The over-serving comes at the Loads thread's expense: it falls
        // behind its virtual private resource under FCFS.
        assert!(
            fcfs.virtual_lag(0) > vpc.virtual_lag(0),
            "FCFS lag {} vs VPC lag {}",
            fcfs.virtual_lag(0),
            vpc.virtual_lag(0),
        );
    }

    #[test]
    fn trace_scenario_emits_grants_with_virtual_times_for_all_threads() {
        let log = trace_scenario(&test_base(), RunBudget::quick(), 4096);
        let mut granted = [false; 4];
        let mut deferred = [false; 4];
        for event in log.events() {
            match event.data {
                vpc_sim::trace::EventData::Grant {
                    thread,
                    virtual_start: Some(s),
                    virtual_finish: Some(f),
                    ..
                } => {
                    assert!(s < f, "virtual start {s} precedes finish {f}");
                    granted[thread.index()] = true;
                }
                vpc_sim::trace::EventData::Defer { thread, .. } => {
                    deferred[thread.index()] = true;
                }
                _ => {}
            }
        }
        for t in 0..4 {
            assert!(granted[t], "no guaranteed grant recorded for T{t}");
            assert!(deferred[t], "no defer recorded for T{t}");
        }
        assert!(log.dropped() > 0, "quick window should overflow a 4096-event ring");
    }

    #[test]
    fn tracing_does_not_perturb_measurement() {
        let run = |traced: bool| {
            let cfg = test_base().with_vpc_shares(vec![Share::new(1, 4).unwrap(); 4]);
            let mut sys = CmpSystem::new(cfg, &contention_workloads());
            if traced {
                trace::install(1024);
            }
            let m = sys.run_measured(5_000, 10_000);
            if traced {
                trace::take();
            }
            format!("{m:?}")
        };
        assert_eq!(run(false), run(true), "tracing changed simulated behavior");
    }
}
