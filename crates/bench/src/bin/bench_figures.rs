//! One benchmark per table/figure of the paper: each scenario runs a
//! reduced-budget version of the corresponding experiment end to end, so
//! the bench both regenerates every result's machinery and tracks the
//! harness's performance over time. The full-length runs (paper-scale
//! windows, all benchmarks/mixes) live in the other `vpc-bench` binaries.
//!
//! Run with `--json` for a machine-readable `BENCH_*.json` baseline, and
//! `--quick` for a fast smoke pass. The scenario list itself lives in
//! [`vpc_bench::scenarios`], shared with `perf_smoke`.

use std::time::Instant;

use vpc_bench::harness::Suite;

fn main() {
    vpc_bench::skip_from_args();
    let mut suite = Suite::from_args("figures");
    let jobs = vpc_bench::jobs_from_args();
    let start = Instant::now();

    vpc_bench::scenarios::figures(&mut suite);

    suite.finish();
    vpc_bench::report_timings("bench_figures", jobs, start.elapsed());
}
