//! A minimal, dependency-free JSON document model and pretty printer.
//!
//! The workspace is hermetic (std only), so the `--json` output of the
//! `vpc-bench` binaries is produced by this hand-rolled emitter instead of
//! an external serialization crate. The printer reproduces the layout the
//! checked-in `results/*.json` files were generated with: two-space
//! indent, `"key": value` spacing, shortest-roundtrip floats with a
//! trailing `.0` on integral values, and tuples rendered as arrays.
//!
//! Build documents with the [`JsonValue`] constructors, or implement
//! [`ToJson`] for a report type and call [`crate::report::to_json`].

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`. Also emitted for non-finite floats, which JSON cannot carry.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, printed without a decimal point.
    Int(i64),
    /// A float, printed shortest-roundtrip with `.0` appended when
    /// integral so it round-trips as a float.
    Float(f64),
    /// A string, escaped on output.
    Str(String),
    /// An ordered sequence.
    Array(Vec<JsonValue>),
    /// Key/value pairs, printed in insertion order (reports rely on this
    /// to keep field order stable across runs).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from anything convertible to [`JsonValue`].
    pub fn array<V: Into<JsonValue>>(items: impl IntoIterator<Item = V>) -> JsonValue {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }

    /// Parses a JSON document.
    ///
    /// The inverse of [`JsonValue::pretty`], used to validate exported
    /// traces and read goldens back. Accepts standard JSON (objects,
    /// arrays, strings with escapes, numbers, booleans, null); integers
    /// that fit `i64` become [`JsonValue::Int`], everything else numeric
    /// becomes [`JsonValue::Float`]. Errors carry 1-based line/column
    /// context.
    ///
    /// ```
    /// use vpc::json::JsonValue;
    ///
    /// let doc = JsonValue::parse("{\"a\": [1, 2.5, null]}").unwrap();
    /// assert_eq!(doc.pretty(), "{\n  \"a\": [\n    1,\n    2.5,\n    null\n  ]\n}");
    /// let err = JsonValue::parse("[1,]").unwrap_err();
    /// assert_eq!((err.line, err.column), (1, 4));
    /// ```
    pub fn parse(text: &str) -> Result<JsonValue, JsonParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.error("trailing content after document"));
        }
        Ok(value)
    }

    /// Pretty-prints with two-space indentation (no trailing newline).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(x) => write_f64(out, *x),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; degrade to null rather than emit an
        // unparseable document.
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{x}");
    // Rust's shortest-roundtrip Display prints integral floats without a
    // fraction ("1"); keep them self-describing as floats ("1.0").
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A [`JsonValue::parse`] failure, with 1-based line/column context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column (in bytes) of the offending byte.
    pub column: usize,
    message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting depth cap for the recursive-descent parser (the exporter never
/// gets near it; it only guards against stack overflow on hostile input).
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonParseError { line, column, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_PARSE_DEPTH {
            return Err(self.error("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.error(format!("unexpected character '{}'", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        b => return Err(self.error(format!("invalid escape '\\{}'", b as char))),
                    }
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("expected four hex digits")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number bytes");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(JsonValue::Float(x)),
            _ => Err(self.error(format!("invalid number '{text}'"))),
        }
    }
}

/// Conversion into a JSON document node.
///
/// Implemented by every report type in [`crate::report`]; implement it for
/// new result types to make them `--json`-printable via
/// [`crate::report::to_json`].
pub trait ToJson {
    /// Converts `self` into a [`JsonValue`] tree.
    fn to_json_value(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json_value(&self) -> JsonValue {
        self.clone()
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}

impl From<u64> for JsonValue {
    fn from(u: u64) -> Self {
        match i64::try_from(u) {
            Ok(i) => JsonValue::Int(i),
            Err(_) => JsonValue::Float(u as f64),
        }
    }
}

impl From<u32> for JsonValue {
    fn from(u: u32) -> Self {
        JsonValue::Int(i64::from(u))
    }
}

impl From<usize> for JsonValue {
    fn from(u: usize) -> Self {
        JsonValue::from(u as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Float(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl<V: Into<JsonValue>> From<Vec<V>> for JsonValue {
    fn from(items: Vec<V>) -> Self {
        JsonValue::array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_print_like_json() {
        assert_eq!(JsonValue::Null.pretty(), "null");
        assert_eq!(JsonValue::Bool(true).pretty(), "true");
        assert_eq!(JsonValue::Bool(false).pretty(), "false");
        assert_eq!(JsonValue::Int(-42).pretty(), "-42");
        // Values beyond i64 fall back to the float path.
        assert_eq!(
            JsonValue::from(18_446_744_073_709_551_615u64).pretty(),
            "18446744073709552000.0"
        );
    }

    #[test]
    fn floats_keep_a_fraction_and_roundtrip_shortest() {
        assert_eq!(JsonValue::Float(1.0).pretty(), "1.0");
        assert_eq!(JsonValue::Float(-0.0).pretty(), "-0.0");
        assert_eq!(JsonValue::Float(0.5).pretty(), "0.5");
        assert_eq!(JsonValue::Float(0.156).pretty(), "0.156");
        // Shortest roundtrip, exactly as the checked-in results files.
        assert_eq!(JsonValue::Float(0.22222916666666667).pretty(), "0.22222916666666667");
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        assert_eq!(JsonValue::Float(f64::NAN).pretty(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).pretty(), "null");
        assert_eq!(JsonValue::Float(f64::NEG_INFINITY).pretty(), "null");
    }

    #[test]
    fn strings_escape_quotes_backslashes_and_control_chars() {
        assert_eq!(JsonValue::from("plain").pretty(), "\"plain\"");
        assert_eq!(JsonValue::from("say \"hi\"").pretty(), r#""say \"hi\"""#);
        assert_eq!(JsonValue::from("a\\b").pretty(), r#""a\\b""#);
        assert_eq!(
            JsonValue::from("line1\nline2\ttabbed\r").pretty(),
            r#""line1\nline2\ttabbed\r""#
        );
        assert_eq!(JsonValue::from("\u{08}\u{0c}\u{01}").pretty(), r#""\b\f\u0001""#);
        // Non-ASCII passes through unescaped (UTF-8 output).
        assert_eq!(JsonValue::from("héllo").pretty(), "\"héllo\"");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(JsonValue::Array(vec![]).pretty(), "[]");
        assert_eq!(JsonValue::Object(vec![]).pretty(), "{}");
    }

    #[test]
    fn nested_arrays_and_objects_indent_two_spaces() {
        let doc = JsonValue::object([
            (
                "rows",
                JsonValue::array(vec![JsonValue::object([
                    ("label", JsonValue::from("Loads 2B")),
                    ("tag_array", JsonValue::from(0.5)),
                ])]),
            ),
            ("mean", JsonValue::from(1.0)),
            (
                "tuple",
                JsonValue::Array(vec![
                    JsonValue::from("gcc"),
                    JsonValue::from(0.25),
                    JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(2)]),
                ]),
            ),
        ]);
        let want = "{\n  \"rows\": [\n    {\n      \"label\": \"Loads 2B\",\n      \"tag_array\": 0.5\n    }\n  ],\n  \"mean\": 1.0,\n  \"tuple\": [\n    \"gcc\",\n    0.25,\n    [\n      1,\n      2\n    ]\n  ]\n}";
        assert_eq!(doc.pretty(), want);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let doc = JsonValue::object([("z", JsonValue::Int(1)), ("a", JsonValue::Int(2))]);
        assert_eq!(doc.pretty(), "{\n  \"z\": 1,\n  \"a\": 2\n}");
    }

    #[test]
    fn parse_pretty_roundtrips() {
        let doc = JsonValue::object([
            ("label", JsonValue::from("Loads \"2B\"\n")),
            ("util", JsonValue::from(0.15625)),
            ("count", JsonValue::Int(-7)),
            ("flags", JsonValue::array(vec![JsonValue::Bool(true), JsonValue::Null])),
            ("empty", JsonValue::Object(vec![])),
        ]);
        assert_eq!(JsonValue::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_accepts_compact_and_spaced_json() {
        let doc = JsonValue::parse(" { \"a\" : [ 1 , 2e1 , -0.5 ] , \"b\" : \"x\" } ").unwrap();
        assert_eq!(
            doc,
            JsonValue::object([
                (
                    "a",
                    JsonValue::Array(vec![
                        JsonValue::Int(1),
                        JsonValue::Float(20.0),
                        JsonValue::Float(-0.5),
                    ])
                ),
                ("b", JsonValue::from("x")),
            ])
        );
    }

    #[test]
    fn parse_decodes_escapes_and_surrogate_pairs() {
        let doc = JsonValue::parse(r#""a\"\\\n\tA😀""#).unwrap();
        assert_eq!(doc, JsonValue::from("a\"\\\n\tA😀"));
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = JsonValue::parse("{\n  \"a\": 1,\n  oops\n}").unwrap_err();
        assert_eq!((err.line, err.column), (3, 3));
        assert!(err.to_string().contains("line 3, column 3"), "got: {err}");

        let err = JsonValue::parse("[1, 2").unwrap_err();
        assert_eq!(err.line, 1);

        let err = JsonValue::parse("{} trailing").unwrap_err();
        assert!(err.to_string().contains("trailing content"), "got: {err}");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "tru", "[1,]", "{\"a\"}", "\"unterminated", "01x", "[\u{1}]", "nan"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nested too deeply"), "got: {err}");
    }
}
