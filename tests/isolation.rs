//! Performance-isolation properties: a VPC-protected thread's performance
//! must be (nearly) independent of what its neighbors run.

use vpc::experiments::RunBudget;
use vpc::prelude::*;

fn quick_base() -> CmpConfig {
    let mut cfg = CmpConfig::table1();
    cfg.l2.total_sets = 2048;
    cfg
}

/// Runs `subject` with the given three background workloads under equal
/// VPC shares and returns the subject's IPC.
fn subject_ipc_with_background(subject: &'static str, bg: WorkloadSpec, budget: RunBudget) -> f64 {
    let cfg = quick_base().with_arbiter(ArbiterPolicy::vpc_equal(4));
    let workloads = [WorkloadSpec::Spec(subject), bg, bg, bg];
    let mut sys = CmpSystem::new(cfg, &workloads);
    sys.run_measured(budget.warmup, budget.window).ipc[0]
}

#[test]
fn subject_performance_is_insensitive_to_background_choice() {
    // Swap the background from idle spinners to the most aggressive store
    // stream: the subject's VPC holds its guarantee, so the change is
    // bounded (it may *lose excess* bandwidth, but never its guarantee).
    let budget = RunBudget::quick();
    let base = quick_base();
    let quarter = Share::new(1, 4).unwrap();
    let guarantee = target_ipc(
        &base,
        WorkloadSpec::Spec("gcc"),
        quarter,
        quarter,
        budget.warmup,
        budget.window,
    );
    for bg in [WorkloadSpec::Idle, WorkloadSpec::Spec("gzip"), WorkloadSpec::Stores] {
        let ipc = subject_ipc_with_background("gcc", bg, budget);
        assert!(
            ipc >= guarantee * 0.9,
            "gcc with {} background: IPC {:.3} below guarantee {:.3}",
            bg.name(),
            ipc,
            guarantee
        );
    }
}

#[test]
fn fcfs_subject_is_sensitive_to_background_choice() {
    // The contrast: without VPC arbiters the same swap swings the subject
    // hard — this is the negative interference the paper eliminates.
    let budget = RunBudget::quick();
    let run = |bg: WorkloadSpec| {
        let cfg = quick_base().with_arbiter(ArbiterPolicy::Fcfs);
        let workloads = [WorkloadSpec::Spec("gcc"), bg, bg, bg];
        let mut sys = CmpSystem::new(cfg, &workloads);
        sys.run_measured(budget.warmup, budget.window).ipc[0]
    };
    let calm = run(WorkloadSpec::Idle);
    let hostile = run(WorkloadSpec::Stores);
    assert!(
        hostile < calm * 0.8,
        "FCFS should expose the subject to interference: calm {calm:.3} vs hostile {hostile:.3}"
    );
}

#[test]
fn capacity_quotas_bound_streaming_pollution() {
    // With a small cache, streaming neighbors under LRU strip the
    // subject's working set; VPC way quotas preserve the subject's hit
    // rate. (Identical FCFS arbiters isolate the capacity effect.)
    let budget = RunBudget { warmup: 20_000, window: 120_000 };
    let run = |capacity: CapacityPolicy| {
        let mut cfg = quick_base().with_arbiter(ArbiterPolicy::Fcfs).with_capacity(capacity);
        cfg.l2.total_sets = 256; // 512 KB: small enough to thrash in-window
        let workloads = [
            WorkloadSpec::Spec("gzip"),
            WorkloadSpec::Spec("swim"),
            WorkloadSpec::Spec("equake"),
            WorkloadSpec::Spec("swim"),
        ];
        let mut sys = CmpSystem::new(cfg, &workloads);
        sys.run_measured(budget.warmup, budget.window).ipc[0]
    };
    let lru = run(CapacityPolicy::Lru);
    let vpc = run(CapacityPolicy::vpc_equal(4));
    assert!(
        vpc >= lru * 0.98,
        "way quotas must protect the subject's working set: LRU {lru:.3} vs VPC {vpc:.3}"
    );
}

#[test]
fn performance_is_monotone_in_bandwidth_share() {
    // §4.3's performance-monotonicity assumption, checked empirically:
    // more bandwidth never hurts.
    let budget = RunBudget::quick();
    let mut prev = 0.0;
    for (num, den) in [(1u32, 8u32), (1, 4), (1, 2), (1, 1)] {
        let policy = vpc::experiments::fig9::subject_share_policy(num, den);
        let ipc = vpc::experiments::fig9::run_subject(&quick_base(), "vpr", policy, budget);
        assert!(
            ipc >= prev * 0.97,
            "IPC should not decrease with share {num}/{den}: {ipc:.3} after {prev:.3}"
        );
        prev = ipc;
    }
}
