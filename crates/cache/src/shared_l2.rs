//! The banked shared L2 cache with its memory-side plumbing.

use vpc_mem::{ChannelMode, MemConfig, MemoryController};
use vpc_sim::{CacheRequest, CacheResponse, Cycle, LineAddr, ThreadId, UtilizationMeter};

use crate::bank::{BankStats, L2Bank};
use crate::config::L2Config;
use crate::sgb::SgbStats;

/// Aggregate utilization of the three shared resources over an elapsed
/// window — the series plotted in Figures 5, 6 and 8.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct L2Utilization {
    /// Tag array utilization (averaged across banks).
    pub tag_array: f64,
    /// Data array utilization (averaged across banks).
    pub data_array: f64,
    /// Data bus utilization (averaged across banks).
    pub data_bus: f64,
}

/// The shared L2: address-interleaved banks, the crossbar (modeled as
/// per-port fixed latency plus per-port input credits — each processor has
/// private read/write ports into each bank, §3.1), and the memory
/// controller behind it.
#[derive(Debug)]
pub struct SharedL2 {
    cfg: L2Config,
    banks: Vec<L2Bank>,
    mem: MemoryController,
}

impl SharedL2 {
    /// Builds the cache and its memory system with per-thread private
    /// channels (Table 1's configuration).
    pub fn new(cfg: L2Config, mem_cfg: MemConfig) -> SharedL2 {
        SharedL2::with_channel_mode(cfg, mem_cfg, ChannelMode::PerThread)
    }

    /// Builds the cache over the given memory channel topology.
    pub fn with_channel_mode(cfg: L2Config, mem_cfg: MemConfig, mode: ChannelMode) -> SharedL2 {
        let banks = (0..cfg.banks).map(|b| L2Bank::new(&cfg, b)).collect();
        let mem = MemoryController::with_mode(mem_cfg, cfg.threads, mode);
        SharedL2 { banks, mem, cfg }
    }

    /// The cache configuration.
    pub fn config(&self) -> &L2Config {
        &self.cfg
    }

    /// Whether `thread` can send a request for `line` right now (crossbar
    /// port credit for the destination bank).
    pub fn can_accept(&self, thread: ThreadId, line: LineAddr) -> bool {
        self.banks[self.cfg.bank_of(line)].can_accept(thread)
    }

    /// Routes a request to its bank.
    ///
    /// The caller must respect [`SharedL2::can_accept`]; the input queue is
    /// a hardware structure and over-filling it panics.
    pub fn submit(&mut self, req: CacheRequest, now: Cycle) {
        debug_assert!(self.can_accept(req.thread, req.line), "input port over-filled");
        let bank = self.cfg.bank_of(req.line);
        self.banks[bank].submit(req, now);
    }

    /// Advances the cache and memory system one processor cycle.
    pub fn tick(&mut self, now: Cycle) {
        for bank in &mut self.banks {
            bank.tick(now);
            // Forward memory requests while the controller has room.
            while let Some(req) = bank.peek_mem_request() {
                if self.mem.can_accept(req.thread, req.kind) {
                    let req = bank.pop_mem_request().expect("peeked request exists");
                    self.mem.enqueue(req, now);
                } else {
                    break;
                }
            }
        }
        self.mem.tick(now);
        while let Some(resp) = self.mem.pop_response() {
            let bank = (resp.token >> 48) as usize;
            self.banks[bank].on_mem_response(resp.token, now);
        }
    }

    /// The earliest cycle at which the cache or memory system can change
    /// observable state absent new [`SharedL2::submit`] calls. `None` when
    /// everything is drained and parked.
    ///
    /// Conservative by design: never *later* than a real state change (see
    /// `DESIGN.md` §10) — an early wake-up is a harmless no-op tick.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        let horizon = now + 1;
        let mut best: Option<Cycle> = None;
        let mut consider = |c: Cycle| best = Some(best.map_or(c, |b: Cycle| b.min(c)));
        for bank in &self.banks {
            if let Some(c) = bank.next_activity(now) {
                if c == horizon {
                    return Some(horizon); // nothing can beat the next cycle
                }
                consider(c);
            }
            // A memory request waiting to forward moves on the next cycle
            // once the controller has room (forwarding is polled every
            // core cycle). While the controller is full, room only appears
            // through an issue, which the controller's own terms cover.
            if let Some(req) = bank.peek_mem_request() {
                if self.mem.can_accept(req.thread, req.kind) {
                    return Some(horizon);
                }
            }
        }
        if let Some(c) = self.mem.next_activity(now) {
            consider(c);
        }
        best
    }

    /// Pops the next read response whose critical word has arrived.
    pub fn pop_response(&mut self, now: Cycle) -> Option<CacheResponse> {
        for bank in &mut self.banks {
            if let Some(resp) = bank.pop_response(now) {
                return Some(resp);
            }
        }
        None
    }

    /// Whether no request is anywhere in the cache or memory system.
    pub fn is_idle(&self) -> bool {
        self.banks.iter().all(L2Bank::is_idle) && self.mem.is_idle()
    }

    /// Average utilization of each shared resource over `elapsed` cycles.
    pub fn utilization(&self, elapsed: Cycle) -> L2Utilization {
        let mut tag = UtilizationMeter::default();
        let mut data = UtilizationMeter::default();
        let mut bus = UtilizationMeter::default();
        for bank in &self.banks {
            let (t, d, b) = bank.meters();
            tag.add_busy(t.busy_cycles());
            data.add_busy(d.busy_cycles());
            bus.add_busy(b.busy_cycles());
        }
        let window = elapsed * self.banks.len() as u64;
        L2Utilization {
            tag_array: tag.utilization(window),
            data_array: data.utilization(window),
            data_bus: bus.utilization(window),
        }
    }

    /// Raw busy-cycle totals for (tag array, data array, data bus), summed
    /// across banks — the primitive measurement windows are built from.
    pub fn busy_cycles(&self) -> (u64, u64, u64) {
        let (mut tag, mut data, mut bus) = (0, 0, 0);
        for bank in &self.banks {
            let (t, d, b) = bank.meters();
            tag += t.busy_cycles();
            data += d.busy_cycles();
            bus += b.busy_cycles();
        }
        (tag, data, bus)
    }

    /// Sums the per-bank transaction counters.
    pub fn stats(&self) -> BankStats {
        let mut total = BankStats::default();
        for bank in &self.banks {
            let s = bank.stats();
            total.read_hits.add(s.read_hits.get());
            total.read_misses.add(s.read_misses.get());
            total.write_hits.add(s.write_hits.get());
            total.write_misses.add(s.write_misses.get());
            total.castouts.add(s.castouts.get());
        }
        total
    }

    /// Sums `thread`'s store-gathering statistics across banks.
    pub fn port_stats(&self, thread: ThreadId) -> SgbStats {
        let mut total = SgbStats::default();
        for bank in &self.banks {
            let s = bank.port_stats(thread);
            total.stores_in.add(s.stores_in.get());
            total.stores_gathered.add(s.stores_gathered.get());
            total.writes_out.add(s.writes_out.get());
            total.loads_out.add(s.loads_out.get());
            total.partial_flushes.add(s.partial_flushes.get());
        }
        total
    }

    /// Whether `line` is resident (for tests).
    pub fn probe(&self, line: LineAddr) -> bool {
        self.banks[self.cfg.bank_of(line)].probe(line)
    }

    /// Data-array busy cycles attributable to `thread`, summed over banks.
    pub fn thread_data_busy(&self, thread: ThreadId) -> u64 {
        self.banks.iter().map(|b| b.thread_data_busy(thread)).sum()
    }

    /// `thread`'s read-latency histogram merged across banks (controller
    /// intake to critical word; hits and misses).
    pub fn read_latency(&self, thread: ThreadId) -> vpc_sim::Histogram {
        let mut total = vpc_sim::Histogram::new();
        for bank in &self.banks {
            total.merge(bank.read_latency(thread));
        }
        total
    }

    /// Reconfigures `thread`'s bandwidth share `beta` on every bank's
    /// arbiters and its way quota to `alpha * ways`. Returns `false` if
    /// either mechanism is not QoS-capable in this configuration.
    pub fn reconfigure(
        &mut self,
        thread: ThreadId,
        beta: vpc_sim::Share,
        alpha: vpc_sim::Share,
    ) -> bool {
        let ways = alpha.of_ways(self.cfg.ways as u32);
        let mut ok = true;
        for bank in &mut self.banks {
            ok &= bank.reconfigure_bandwidth(thread, beta);
            ok &= bank.reconfigure_capacity(thread, ways);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CapacityPolicy;
    use vpc_arbiters::ArbiterPolicy;
    use vpc_sim::AccessKind;

    fn small_cfg(threads: usize, arbiter: ArbiterPolicy) -> L2Config {
        let mut cfg = L2Config::table1(threads, arbiter);
        cfg.total_sets = 64; // keep tests light
        cfg
    }

    fn l2(threads: usize) -> SharedL2 {
        SharedL2::new(small_cfg(threads, ArbiterPolicy::Fcfs), MemConfig::ddr2_800())
    }

    fn read(thread: u8, line: u64, token: u64) -> CacheRequest {
        CacheRequest {
            thread: ThreadId(thread),
            line: LineAddr(line),
            kind: AccessKind::Read,
            token,
        }
    }

    fn write(thread: u8, line: u64, token: u64) -> CacheRequest {
        CacheRequest {
            thread: ThreadId(thread),
            line: LineAddr(line),
            kind: AccessKind::Write,
            token,
        }
    }

    fn run_until_response(
        l2: &mut SharedL2,
        start: Cycle,
        deadline: Cycle,
    ) -> Option<(Cycle, CacheResponse)> {
        for now in start..deadline {
            l2.tick(now);
            if let Some(resp) = l2.pop_response(now) {
                return Some((now, resp));
            }
        }
        None
    }

    fn drain(l2: &mut SharedL2, start: Cycle, cycles: Cycle) -> Cycle {
        let mut now = start;
        while now < start + cycles {
            l2.tick(now);
            let _ = l2.pop_response(now);
            now += 1;
        }
        now
    }

    #[test]
    fn read_miss_then_hit_latency() {
        let mut l2 = l2(1);
        l2.submit(read(0, 8, 1), 0);
        let (miss_done, resp) = run_until_response(&mut l2, 0, 2000).expect("miss completes");
        assert_eq!(resp.token, 1);
        assert!(miss_done > 50, "miss must include memory latency, got {miss_done}");
        assert!(l2.probe(LineAddr(8)), "line filled");
        let now = drain(&mut l2, miss_done + 1, 200);
        assert!(l2.is_idle());

        // Same line again: a hit, ~16 cycles to the critical word.
        l2.submit(read(0, 8, 2), now);
        let (hit_done, resp) = run_until_response(&mut l2, now, now + 200).expect("hit completes");
        assert_eq!(resp.token, 2);
        let latency = hit_done - now;
        assert!((14..=22).contains(&latency), "L2 hit latency {latency} should be ~16 cycles");
        let stats = l2.stats();
        assert_eq!(stats.read_misses.get(), 1);
        assert_eq!(stats.read_hits.get(), 1);
    }

    #[test]
    fn writes_complete_silently_and_dirty_lines_cast_out() {
        let mut cfg = small_cfg(1, ArbiterPolicy::Fcfs);
        cfg.sgb_idle_drain = Some(50);
        // A tiny cache so evictions happen quickly: 2 sets per bank, 2 ways.
        cfg.total_sets = 4;
        cfg.ways = 2;
        cfg.capacity = CapacityPolicy::Lru;
        let mut l2 = SharedL2::new(cfg, MemConfig::ddr2_800());
        // Dirty a line in set 0 of bank 0 (lines are bank-interleaved; lines
        // 0, 8, 16, 24 all map to bank 0 set 0..).
        l2.submit(write(0, 0, 1), 0);
        let mut now = drain(&mut l2, 0, 3000);
        assert!(l2.is_idle(), "write-allocate completed");
        assert_eq!(l2.stats().write_misses.get(), 1);
        // Evict it by filling the set with reads (same set: stride = banks *
        // sets_per_bank = 2 * 2 = 4 lines).
        for (i, line) in [4u64, 8, 12].iter().enumerate() {
            l2.submit(read(0, *line, 10 + i as u64), now);
            now = drain(&mut l2, now, 3000);
        }
        assert!(l2.is_idle());
        assert!(l2.stats().castouts.get() >= 1, "dirty victim written back");
    }

    #[test]
    fn secondary_miss_waits_for_primary_fill() {
        let mut l2 = l2(2);
        l2.submit(read(0, 8, 1), 0);
        // A second read to the same line from another thread conflicts and
        // waits; both complete, and only one memory fetch happens.
        l2.submit(read(1, 8, 2), 0);
        let mut done = Vec::new();
        for now in 0..4000 {
            l2.tick(now);
            while let Some(r) = l2.pop_response(now) {
                done.push(r.token);
            }
        }
        assert_eq!(done.len(), 2);
        let stats = l2.stats();
        assert_eq!(stats.read_misses.get(), 1, "one miss");
        assert_eq!(stats.read_hits.get(), 1, "the waiter hits after the fill");
    }

    #[test]
    fn store_gathering_reduces_l2_writes() {
        let mut cfg = small_cfg(1, ArbiterPolicy::Fcfs);
        cfg.sgb_idle_drain = Some(100);
        let mut l2 = SharedL2::new(cfg, MemConfig::ddr2_800());
        // 8 stores, 4 distinct lines, all to bank 0.
        let mut now = 0;
        for i in 0..8u64 {
            l2.submit(write(0, (i % 4) * 2, i), now);
            now = drain(&mut l2, now, 4);
        }
        drain(&mut l2, now, 5000);
        let port = l2.port_stats(ThreadId(0));
        assert_eq!(port.stores_in.get(), 8);
        assert_eq!(port.stores_gathered.get(), 4);
        assert!((port.gathering_rate() - 0.5).abs() < 1e-12);
        assert_eq!(port.writes_out.get(), 4, "only distinct lines reach the L2");
    }

    #[test]
    fn utilization_reflects_traffic() {
        let mut l2 = l2(1);
        let mut now = 0;
        // Warm a line, then stream hits to it.
        l2.submit(read(0, 8, 0), now);
        now = drain(&mut l2, now, 2000);
        for i in 0..50u64 {
            while !l2.can_accept(ThreadId(0), LineAddr(8)) {
                now = drain(&mut l2, now, 1);
            }
            l2.submit(read(0, 8, i + 1), now);
            now = drain(&mut l2, now, 20);
        }
        let u = l2.utilization(now);
        assert!(u.data_array > 0.05, "data array saw traffic: {u:?}");
        assert!(u.tag_array > 0.0 && u.data_bus > 0.0);
        assert!(u.tag_array <= 1.0 && u.data_array <= 1.0 && u.data_bus <= 1.0);
    }

    #[test]
    fn port_credits_backpressure() {
        let l2cfg = small_cfg(1, ArbiterPolicy::Fcfs);
        let cap = l2cfg.input_queue_cap;
        let mut l2 = SharedL2::new(l2cfg, MemConfig::ddr2_800());
        // Without ticking, the input queue fills to its credit limit.
        let mut sent = 0;
        for i in 0..cap as u64 + 4 {
            if l2.can_accept(ThreadId(0), LineAddr(0)) {
                l2.submit(read(0, 0, i), 0);
                sent += 1;
            }
        }
        assert_eq!(sent, cap, "credits cap in-flight requests per port");
    }
}

#[cfg(test)]
mod consistency_tests {
    use super::*;
    use vpc_arbiters::ArbiterPolicy;
    use vpc_sim::{AccessKind, CacheRequest};

    /// A read to a line with an in-flight same-line write (from any thread)
    /// is held by the controller's conflict check until the write's state
    /// machine completes — the mechanism that makes downstream arbiter
    /// reordering consistency-safe (§4.1.1).
    #[test]
    fn same_line_read_waits_for_in_flight_write() {
        let mut cfg = L2Config::table1(2, ArbiterPolicy::RowFcfs);
        cfg.total_sets = 64;
        cfg.sgb_idle_drain = Some(10);
        let mut l2 = SharedL2::new(cfg, MemConfig::ddr2_800());
        // Thread 0 writes line 8 (a miss: write-allocate fetch, slow).
        l2.submit(
            CacheRequest {
                thread: ThreadId(0),
                line: LineAddr(8),
                kind: AccessKind::Write,
                token: 1,
            },
            0,
        );
        // Give the write time to reach the controller and start its miss.
        let mut now = 0;
        for _ in 0..60 {
            l2.tick(now);
            now += 1;
        }
        // Thread 1 reads the same line; under RoW-FCFS the read would love
        // to jump ahead, but the conflict check must hold it.
        l2.submit(
            CacheRequest {
                thread: ThreadId(1),
                line: LineAddr(8),
                kind: AccessKind::Read,
                token: 2,
            },
            now,
        );
        let mut read_done_at = None;
        while read_done_at.is_none() && now < 5000 {
            l2.tick(now);
            if let Some(resp) = l2.pop_response(now) {
                assert_eq!(resp.token, 2);
                read_done_at = Some(now);
            }
            now += 1;
        }
        let read_done = read_done_at.expect("read completes");
        // The read completed only after the write's memory fetch (~100+
        // cycles), not at L2-hit latency (~16 cycles after submission).
        assert!(
            read_done > 90,
            "read must wait behind the conflicting write's miss, finished at {read_done}"
        );
        let stats = l2.stats();
        assert_eq!(stats.write_misses.get(), 1);
        assert_eq!(stats.read_hits.get(), 1, "after the fill, the read hits the written line");
    }
}

#[cfg(test)]
mod microarch_tests {
    use super::*;
    use vpc_arbiters::ArbiterPolicy;
    use vpc_sim::{AccessKind, CacheRequest};

    fn tiny_l2(threads: usize) -> SharedL2 {
        let mut cfg = L2Config::table1(threads, ArbiterPolicy::Fcfs);
        cfg.total_sets = 64;
        cfg.sgb_idle_drain = Some(50);
        SharedL2::new(cfg, MemConfig::ddr2_800())
    }

    /// The controller state machines bound a thread's in-flight L2
    /// transactions: with `sm_per_thread = 8` per bank and all requests
    /// missing, at most 8 memory fetches per bank can be outstanding; the
    /// rest of the requests wait at the port. Everything still completes.
    #[test]
    fn state_machines_bound_outstanding_misses() {
        let mut l2 = tiny_l2(1);
        let sm_limit = l2.config().sm_per_thread;
        // 24 distinct lines, all mapping to bank 0 (even line numbers).
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut now = 0u64;
        let mut next_line = 0u64;
        while submitted < 24 {
            if l2.can_accept(ThreadId(0), LineAddr(next_line)) {
                l2.submit(
                    CacheRequest {
                        thread: ThreadId(0),
                        line: LineAddr(next_line),
                        kind: AccessKind::Read,
                        token: submitted,
                    },
                    now,
                );
                submitted += 1;
                next_line += 2;
            }
            l2.tick(now);
            if l2.pop_response(now).is_some() {
                completed += 1;
            }
            now += 1;
        }
        while completed < 24 && now < 50_000 {
            l2.tick(now);
            while l2.pop_response(now).is_some() {
                completed += 1;
            }
            now += 1;
        }
        assert_eq!(completed, 24, "all misses complete despite the SM bound");
        // The response (critical word) races ahead of the fill's remaining
        // tag/data parts; let those finish before checking idleness.
        for _ in 0..200 {
            l2.tick(now);
            now += 1;
        }
        assert!(l2.is_idle());
        // The structural limit really exists: the config says 8.
        assert_eq!(sm_limit, 8);
    }

    /// Retire-at-n in action at the system level: six stores to distinct
    /// lines (reaching the high-water mark) start retiring immediately,
    /// while five stay parked until the idle drain.
    #[test]
    fn high_water_mark_triggers_prompt_retirement() {
        let mut l2 = tiny_l2(1);
        let mut now = 0u64;
        // Five stores to bank 0: below retire-at-6, they sit gathered.
        for i in 0..5u64 {
            while !l2.can_accept(ThreadId(0), LineAddr(i * 2)) {
                l2.tick(now);
                now += 1;
            }
            l2.submit(
                CacheRequest {
                    thread: ThreadId(0),
                    line: LineAddr(i * 2),
                    kind: AccessKind::Write,
                    token: i,
                },
                now,
            );
        }
        for _ in 0..40 {
            l2.tick(now);
            now += 1;
        }
        let before = l2.port_stats(ThreadId(0)).writes_out.get();
        assert_eq!(before, 0, "below the high-water mark nothing retires promptly");
        // A sixth store hits the mark; retirement begins well before the
        // 50-cycle idle drain would fire for it.
        l2.submit(
            CacheRequest {
                thread: ThreadId(0),
                line: LineAddr(10),
                kind: AccessKind::Write,
                token: 9,
            },
            now,
        );
        for _ in 0..20 {
            l2.tick(now);
            now += 1;
        }
        assert!(
            l2.port_stats(ThreadId(0)).writes_out.get() > 0,
            "reaching retire-at-6 starts draining stores"
        );
    }

    /// Bank input ports are independent: filling bank 0's port does not
    /// consume credits on bank 1.
    #[test]
    fn port_credits_are_per_bank() {
        let mut l2 = tiny_l2(1);
        let cap = l2.config().input_queue_cap;
        for i in 0..cap as u64 {
            l2.submit(
                CacheRequest {
                    thread: ThreadId(0),
                    line: LineAddr(i * 2),
                    kind: AccessKind::Read,
                    token: i,
                },
                0,
            );
        }
        assert!(!l2.can_accept(ThreadId(0), LineAddr(0)), "bank 0 port full");
        assert!(l2.can_accept(ThreadId(0), LineAddr(1)), "bank 1 port independent");
    }
}
