//! The quiescence contract for [`SharedL2`] (banks + arbiters + memory
//! stack): an L2 ticked only at its reported next-activity cycles (plus
//! request arrivals) is state-identical — responses at the same cycles,
//! same stats and histograms, same `Debug` rendering — to one ticked
//! every cycle, under every arbiter and capacity policy.

use vpc_arbiters::ArbiterPolicy;
use vpc_cache::{CapacityPolicy, L2Config, SharedL2};
use vpc_mem::MemConfig;
use vpc_sim::check::{self, gen, Config};
use vpc_sim::{ensure, ensure_eq, AccessKind, CacheRequest, Cycle, SplitMix64, ThreadId};

fn random_cfg(rng: &mut SplitMix64, threads: usize) -> L2Config {
    let mut cfg = L2Config::table1(
        threads,
        match rng.below(4) {
            0 => ArbiterPolicy::Fcfs,
            1 => ArbiterPolicy::RowFcfs,
            2 => ArbiterPolicy::RoundRobin,
            _ => ArbiterPolicy::vpc_equal(threads),
        },
    );
    cfg.total_sets = 64;
    cfg.ways = 4;
    cfg.sgb_idle_drain = Some(200);
    if rng.chance(0.5) {
        cfg.capacity = CapacityPolicy::vpc_equal(threads);
    }
    cfg
}

/// A pre-generated submission schedule: (cycle, thread, line, kind).
fn schedule(
    rng: &mut SplitMix64,
    threads: usize,
    horizon: Cycle,
) -> Vec<(Cycle, ThreadId, vpc_sim::LineAddr, AccessKind)> {
    let mut out = Vec::new();
    let mut at = 0;
    while at < horizon {
        at += rng.below(24) + 1;
        out.push((
            at,
            gen::thread_id(rng, threads),
            gen::line_addr(rng, 48),
            gen::access_kind(rng),
        ));
    }
    out
}

/// Tick-every-cycle vs. tick-only-at-next-activity over the same
/// submission schedule. Tokens are assigned at acceptance time, so
/// identical acceptance decisions (themselves part of the property)
/// keep the two instances' token streams aligned.
#[test]
fn sparse_ticking_matches_dense_ticking() {
    check::forall("l2_sparse_ticking_matches_dense_ticking", Config::cases(16), |rng| {
        let threads = 4;
        let cfg = random_cfg(rng, threads);
        let arrivals = schedule(rng, threads, 3_000);
        let end: Cycle = 10_000;

        let mut dense = SharedL2::new(cfg.clone(), MemConfig::ddr2_800());
        let mut dense_log = Vec::new();
        let mut token = 0u64;
        let mut next = 0;
        for now in 0..end {
            while next < arrivals.len() && arrivals[next].0 == now {
                let (_, thread, line, kind) = arrivals[next];
                if dense.can_accept(thread, line) {
                    token += 1;
                    dense.submit(CacheRequest { thread, line, kind, token }, now);
                }
                next += 1;
            }
            dense.tick(now);
            while let Some(resp) = dense.pop_response(now) {
                dense_log.push((now, resp));
            }
        }

        let mut sparse = SharedL2::new(cfg, MemConfig::ddr2_800());
        let mut sparse_log = Vec::new();
        let mut token = 0u64;
        let mut next = 0;
        let mut now: Cycle = 0;
        while now < end {
            while next < arrivals.len() && arrivals[next].0 == now {
                let (_, thread, line, kind) = arrivals[next];
                if sparse.can_accept(thread, line) {
                    token += 1;
                    sparse.submit(CacheRequest { thread, line, kind, token }, now);
                }
                next += 1;
            }
            sparse.tick(now);
            while let Some(resp) = sparse.pop_response(now) {
                sparse_log.push((now, resp));
            }
            let arrival = arrivals.get(next).map(|&(at, ..)| at).unwrap_or(end);
            let wake = sparse.next_activity(now).unwrap_or(end).min(arrival);
            now = wake.clamp(now + 1, end);
        }

        ensure_eq!(dense_log, sparse_log, "response streams diverged");
        ensure!(dense.is_idle() && sparse.is_idle(), "both instances drained");
        ensure_eq!(format!("{dense:?}"), format!("{sparse:?}"), "final L2 state diverged");
        Ok(())
    });
}
