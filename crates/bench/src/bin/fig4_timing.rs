//! Figure 4: timing of back-to-back reads to different cache banks.

use vpc::experiments::fig4;
use vpc::prelude::*;

fn main() {
    vpc_bench::skip_from_args();
    let base = CmpConfig::table1();
    println!("{}", fig4::run(&base));
}
