//! Experiment runners regenerating the paper's evaluation.
//!
//! One module per figure/table of the evaluation section, plus the
//! ablations DESIGN.md calls out. Every runner takes a [`RunBudget`] so
//! tests can use short windows while the bench binaries use full-length
//! runs, and returns a typed result whose `Display` prints the same rows
//! or series the paper reports.
//!
//! | Runner | Paper content |
//! |---|---|
//! | [`fig4::run`] | Figure 4: back-to-back reads to two banks |
//! | [`fig5::run`] | Figure 5: microbenchmark utilization vs. bank count |
//! | [`fig6::run`] | Figure 6: SPEC solo L2 utilization |
//! | [`fig7::run`] | Figure 7: L2 write fraction and store gathering rate |
//! | [`fig8::run`] | Figure 8: Loads+Stores under each arbiter, with targets |
//! | [`fig9::run`] | Figure 9: SPEC subject vs. 3 Stores, differentiated service |
//! | [`fig10::run`] | §1/§5 headline: heterogeneous mixes, FCFS vs. VPC |
//! | [`ablations`] | reordering, capacity, preemption latency, work conservation |

pub mod ablations;
pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

/// Simulation window sizes shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Warm-up cycles excluded from measurement.
    pub warmup: u64,
    /// Measured cycles.
    pub window: u64,
}

impl RunBudget {
    /// Full-length runs for the bench binaries.
    pub fn standard() -> RunBudget {
        RunBudget { warmup: 60_000, window: 240_000 }
    }

    /// Short runs for tests.
    pub fn quick() -> RunBudget {
        RunBudget { warmup: 10_000, window: 40_000 }
    }
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget::standard()
    }
}

/// Formats a fraction as a percent with one decimal (figure axes).
pub(crate) fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Renders a `[0, 1]` fraction as a fixed-width ASCII bar (figure bars).
pub(crate) fn bar(x: f64, width: usize) -> String {
    let filled = ((x.clamp(0.0, 1.0) * width as f64).round() as usize).min(width);
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_percentages() {
        assert_eq!(pct(0.265), " 26.5%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn bar_renders_clamped() {
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(1.5, 4), "####");
    }
}
