//! Virtual Private Machines (paper §1.1): the system-software-facing
//! resource abstraction.
//!
//! A VPM assigns each thread a pair of shares — `beta` for every shared
//! bandwidth resource and `alpha` for cache ways. The VPC hardware exposes
//! control registers that system software writes to (re)partition the
//! machine; this module is that interface: it validates an allocation
//! (no resource over-committed) and applies it to a running [`CmpSystem`]
//! without disturbing in-flight requests — exactly what an OS scheduler
//! would do at a context switch or policy change.
//!
//! ```
//! use vpc::prelude::*;
//! use vpc::vpm::{VpmAllocation, VpmConfig};
//!
//! // Figure 1b: one demanding VPM at 50%, three at 10%, 20% unallocated.
//! let cfg = VpmConfig::new(vec![
//!     VpmAllocation::symmetric(Share::new(1, 2).unwrap()),
//!     VpmAllocation::symmetric(Share::new(1, 10).unwrap()),
//!     VpmAllocation::symmetric(Share::new(1, 10).unwrap()),
//!     VpmAllocation::symmetric(Share::new(1, 10).unwrap()),
//! ]).unwrap();
//! assert!(cfg.unallocated_bandwidth().as_f64() > 0.19);
//! ```

use std::fmt;

use vpc_sim::{Share, ThreadId};

use crate::system::CmpSystem;

/// One VPM's resource allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VpmAllocation {
    /// Share of every shared bandwidth resource (tag array, data array,
    /// data bus).
    pub beta: Share,
    /// Share of the cache ways.
    pub alpha: Share,
}

impl VpmAllocation {
    /// An allocation with the same share of bandwidth and capacity — the
    /// common case the paper's evaluation uses.
    pub fn symmetric(share: Share) -> VpmAllocation {
        VpmAllocation { beta: share, alpha: share }
    }
}

/// Error returned when a VPM configuration over-commits a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpmError {
    /// The bandwidth shares sum above one, voiding the EDF guarantee
    /// (§3.2's schedulability condition).
    BandwidthOverCommitted,
    /// The capacity shares sum above one.
    CapacityOverCommitted,
}

impl fmt::Display for VpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VpmError::BandwidthOverCommitted => {
                write!(f, "bandwidth shares exceed the resource (sum beta > 1)")
            }
            VpmError::CapacityOverCommitted => {
                write!(f, "capacity shares exceed the cache (sum alpha > 1)")
            }
        }
    }
}

impl std::error::Error for VpmError {}

/// A validated machine partitioning: one [`VpmAllocation`] per thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VpmConfig {
    allocations: Vec<VpmAllocation>,
}

impl VpmConfig {
    /// Validates and wraps a set of allocations.
    ///
    /// # Errors
    ///
    /// Returns [`VpmError`] if either resource is over-committed.
    pub fn new(allocations: Vec<VpmAllocation>) -> Result<VpmConfig, VpmError> {
        if Share::checked_sum(allocations.iter().map(|a| a.beta)).is_none() {
            return Err(VpmError::BandwidthOverCommitted);
        }
        if Share::checked_sum(allocations.iter().map(|a| a.alpha)).is_none() {
            return Err(VpmError::CapacityOverCommitted);
        }
        Ok(VpmConfig { allocations })
    }

    /// Equal symmetric shares for `threads` VPMs (no unallocated
    /// resources).
    pub fn equal(threads: usize) -> VpmConfig {
        let share = Share::new(1, threads as u32).expect("1/threads is a valid share");
        VpmConfig { allocations: vec![VpmAllocation::symmetric(share); threads] }
    }

    /// The per-thread allocations.
    pub fn allocations(&self) -> &[VpmAllocation] {
        &self.allocations
    }

    /// Bandwidth left unallocated (distributed by the fairness policy).
    pub fn unallocated_bandwidth(&self) -> Share {
        let used = Share::checked_sum(self.allocations.iter().map(|a| a.beta))
            .expect("validated configuration");
        // 1 - used, as an exact rational.
        Share::new(used.denom() - used.numer(), used.denom()).expect("used <= 1")
    }

    /// Applies this partitioning to a running system's control registers.
    ///
    /// Returns `false` if the system was not built with VPC arbiters and a
    /// VPC capacity manager (the registers do not exist on the baseline
    /// machine).
    pub fn apply(&self, system: &mut CmpSystem) -> bool {
        let mut ok = true;
        for (i, alloc) in self.allocations.iter().enumerate() {
            ok &= system.reconfigure_thread(ThreadId(i as u8), alloc.beta, alloc.alpha);
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CmpConfig, WorkloadSpec};
    use crate::experiments::RunBudget;
    use vpc_arbiters::ArbiterPolicy;

    fn share(n: u32, d: u32) -> Share {
        Share::new(n, d).unwrap()
    }

    #[test]
    fn validation_rejects_overcommit() {
        let half = VpmAllocation::symmetric(share(1, 2));
        assert!(VpmConfig::new(vec![half; 2]).is_ok());
        assert_eq!(VpmConfig::new(vec![half; 3]).unwrap_err(), VpmError::BandwidthOverCommitted);
        let skew = VpmAllocation { beta: share(1, 4), alpha: share(1, 2) };
        assert_eq!(VpmConfig::new(vec![skew; 3]).unwrap_err(), VpmError::CapacityOverCommitted);
    }

    #[test]
    fn unallocated_bandwidth_is_exact() {
        let cfg = VpmConfig::new(vec![
            VpmAllocation::symmetric(share(1, 2)),
            VpmAllocation::symmetric(share(1, 10)),
            VpmAllocation::symmetric(share(1, 10)),
            VpmAllocation::symmetric(share(1, 10)),
        ])
        .unwrap();
        assert_eq!(cfg.unallocated_bandwidth(), share(1, 5));
        assert_eq!(VpmConfig::equal(4).unallocated_bandwidth(), Share::ZERO);
    }

    #[test]
    fn reconfiguration_shifts_bandwidth_mid_run() {
        // Start Loads at 75% / Stores at 25%; flip mid-run; the IPC split
        // must follow the registers.
        let budget = RunBudget::quick();
        let mut cfg =
            CmpConfig::table1_with_threads(2).with_vpc_shares(vec![share(3, 4), share(1, 4)]);
        cfg.l2.total_sets = 2048;
        let mut sys =
            crate::system::CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Stores]);
        sys.run(budget.warmup);
        let snap = sys.snapshot();
        sys.run(budget.window);
        let before = sys.measure(&snap);

        let flipped = VpmConfig::new(vec![
            VpmAllocation { beta: share(1, 4), alpha: share(1, 2) },
            VpmAllocation { beta: share(3, 4), alpha: share(1, 2) },
        ])
        .unwrap();
        assert!(flipped.apply(&mut sys), "VPC machine accepts reconfiguration");
        sys.run(10_000); // let queues re-settle
        let snap = sys.snapshot();
        sys.run(budget.window);
        let after = sys.measure(&snap);

        assert!(
            after.ipc[0] < before.ipc[0] * 0.6,
            "Loads must slow down after losing bandwidth: {:.3} -> {:.3}",
            before.ipc[0],
            after.ipc[0]
        );
        assert!(
            after.ipc[1] > before.ipc[1] * 1.5,
            "Stores must speed up after gaining bandwidth: {:.3} -> {:.3}",
            before.ipc[1],
            after.ipc[1]
        );
    }

    #[test]
    fn baseline_machine_rejects_reconfiguration() {
        let mut cfg = CmpConfig::table1_with_threads(2).with_arbiter(ArbiterPolicy::Fcfs);
        cfg.l2.total_sets = 512;
        cfg.l2.capacity = vpc_cache::CapacityPolicy::Lru;
        let mut sys = crate::system::CmpSystem::new(cfg, &[WorkloadSpec::Idle, WorkloadSpec::Idle]);
        assert!(!VpmConfig::equal(2).apply(&mut sys), "FCFS+LRU has no QoS registers");
    }
}
