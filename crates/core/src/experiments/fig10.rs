//! The headline throughput result: heterogeneous 4-thread workloads under
//! FCFS vs. VPC.
//!
//! The paper's abstract: on a CMP running heterogeneous workloads, VPCs
//! improve average performance by **14%** (harmonic mean of normalized
//! IPCs) and by **25%** (minimum normalized IPC) by eliminating negative
//! interference.
//!
//! Each thread's IPC is normalized to its *equal-share target*: its IPC on
//! the private machine equivalent to its VPC allocation
//! (`beta = alpha = 1/4`, §5.3) — the paper's QoS reference point. Under
//! FCFS, victim threads fall below 1.0 (they receive less than their fair
//! entitlement because aggressive neighbors monopolize the arbiters);
//! under VPC every thread is guaranteed at least its target and excess
//! bandwidth is redistributed. The harmonic mean rewards balanced
//! progress; the minimum exposes the worst-treated thread. A secondary
//! standalone-normalized view (IPC / alone-on-the-CMP IPC) is also
//! reported.

use std::fmt;

use vpc_arbiters::ArbiterPolicy;
use vpc_cache::CapacityPolicy;
use vpc_sim::exec::{self, Job};
use vpc_sim::Share;

use crate::config::{CmpConfig, WorkloadSpec};
use crate::experiments::RunBudget;
use crate::metrics::{harmonic_mean, improvement_pct, minimum, normalized_ipcs, weighted_speedup};
use crate::system::CmpSystem;
use crate::target::target_ipc;

/// Heterogeneous 4-benchmark mixes spanning light to aggressive profiles.
pub const MIXES: [[&str; 4]; 8] = [
    ["art", "mcf", "equake", "gzip"],
    ["vpr", "swim", "gcc", "bzip2"],
    ["art", "vpr", "mesa", "crafty"],
    ["art", "mesa", "lucas", "ammp"],
    ["gap", "mcf", "gzip", "sixtrack"],
    ["art", "swim", "twolf", "sixtrack"],
    ["mesa", "gap", "apsi", "wupwise"],
    ["vpr", "crafty", "equake", "mgrid"],
];

/// Results for one mix.
#[derive(Debug, Clone, PartialEq)]
pub struct MixResult {
    /// The four benchmarks.
    pub mix: [&'static str; 4],
    /// Target-normalized IPCs under FCFS (1.0 = the thread's equal-share
    /// private-machine target).
    pub fcfs_norm: Vec<f64>,
    /// Target-normalized IPCs under VPC (equal shares).
    pub vpc_norm: Vec<f64>,
    /// Standalone-normalized IPCs under FCFS (secondary view).
    pub fcfs_standalone: Vec<f64>,
    /// Standalone-normalized IPCs under VPC (secondary view).
    pub vpc_standalone: Vec<f64>,
}

impl MixResult {
    /// Harmonic mean of target-normalized IPCs, FCFS.
    pub fn fcfs_hmean(&self) -> f64 {
        harmonic_mean(&self.fcfs_norm)
    }

    /// Harmonic mean of target-normalized IPCs, VPC.
    pub fn vpc_hmean(&self) -> f64 {
        harmonic_mean(&self.vpc_norm)
    }

    /// Minimum target-normalized IPC, FCFS.
    pub fn fcfs_min(&self) -> f64 {
        minimum(&self.fcfs_norm)
    }

    /// Minimum target-normalized IPC, VPC.
    pub fn vpc_min(&self) -> f64 {
        minimum(&self.vpc_norm)
    }

    /// Weighted speedup (sum of standalone-normalized IPCs), FCFS.
    pub fn fcfs_ws(&self) -> f64 {
        weighted_speedup(&self.fcfs_standalone)
    }

    /// Weighted speedup (sum of standalone-normalized IPCs), VPC.
    pub fn vpc_ws(&self) -> f64 {
        weighted_speedup(&self.vpc_standalone)
    }
}

/// The headline experiment's results.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Result {
    /// One entry per mix.
    pub mixes: Vec<MixResult>,
}

impl Fig10Result {
    /// Mean-of-mixes harmonic-mean improvement, percent (paper: ~14%).
    pub fn hmean_improvement_pct(&self) -> f64 {
        let fcfs: f64 =
            self.mixes.iter().map(MixResult::fcfs_hmean).sum::<f64>() / self.mixes.len() as f64;
        let vpc: f64 =
            self.mixes.iter().map(MixResult::vpc_hmean).sum::<f64>() / self.mixes.len() as f64;
        improvement_pct(fcfs, vpc)
    }

    /// Mean-of-mixes minimum-normalized-IPC improvement, percent (paper:
    /// ~25%).
    pub fn min_improvement_pct(&self) -> f64 {
        let fcfs: f64 =
            self.mixes.iter().map(MixResult::fcfs_min).sum::<f64>() / self.mixes.len() as f64;
        let vpc: f64 =
            self.mixes.iter().map(MixResult::vpc_min).sum::<f64>() / self.mixes.len() as f64;
        improvement_pct(fcfs, vpc)
    }

    /// Fraction of (mix, thread) pairs meeting their QoS target under VPC
    /// (within `slack`).
    pub fn vpc_qos_met(&self, slack: f64) -> f64 {
        let mut met = 0usize;
        let mut total = 0usize;
        for m in &self.mixes {
            for &n in &m.vpc_norm {
                total += 1;
                if n >= 1.0 - slack {
                    met += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            met as f64 / total as f64
        }
    }
}

impl fmt::Display for Fig10Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Heterogeneous workloads: FCFS vs VPC (IPC normalized to equal-share target)")?;
        writeln!(
            f,
            "{:<40} {:>10} {:>10} {:>9} {:>9}",
            "mix", "FCFS hmean", "VPC hmean", "FCFS min", "VPC min"
        )?;
        for m in &self.mixes {
            writeln!(
                f,
                "{:<40} {:>10.3} {:>10.3} {:>9.3} {:>9.3}",
                m.mix.join("+"),
                m.fcfs_hmean(),
                m.vpc_hmean(),
                m.fcfs_min(),
                m.vpc_min(),
            )?;
        }
        let ws_fcfs: f64 =
            self.mixes.iter().map(MixResult::fcfs_ws).sum::<f64>() / self.mixes.len() as f64;
        let ws_vpc: f64 =
            self.mixes.iter().map(MixResult::vpc_ws).sum::<f64>() / self.mixes.len() as f64;
        writeln!(
            f,
            "VPC improvement: hmean {:+.1}% (paper: +14%), min {:+.1}% (paper: +25%), weighted speedup {:.2} -> {:.2}",
            self.hmean_improvement_pct(),
            self.min_improvement_pct(),
            ws_fcfs,
            ws_vpc,
        )?;
        writeln!(
            f,
            "threads meeting their QoS target under VPC: {:.0}%",
            self.vpc_qos_met(0.05) * 100.0
        )
    }
}

/// Runs one mix under `arbiter`, returning the four raw IPCs.
pub fn run_mix(
    base: &CmpConfig,
    mix: &[&'static str; 4],
    arbiter: ArbiterPolicy,
    budget: RunBudget,
) -> Vec<f64> {
    let mut cfg = base.clone().with_arbiter(arbiter);
    cfg.processors = 4;
    cfg.l2.threads = 4;
    // The unmanaged baseline shares capacity with plain LRU; VPC brings its
    // capacity manager (equal quotas) along with its arbiters.
    cfg.l2.capacity = match cfg.l2.arbiter {
        ArbiterPolicy::Vpc { .. } => CapacityPolicy::vpc_equal(4),
        _ => CapacityPolicy::Lru,
    };
    let workloads: Vec<WorkloadSpec> = mix.iter().map(|b| WorkloadSpec::Spec(b)).collect();
    let mut sys = CmpSystem::new(cfg, &workloads);
    let m = sys.run_measured(budget.warmup, budget.window);
    m.ipc
}

/// Standalone IPC of one benchmark (alone on the full CMP with an
/// unmanaged cache — the secondary normalization baseline).
pub fn standalone_ipc(base: &CmpConfig, benchmark: &'static str, budget: RunBudget) -> f64 {
    let mut cfg = base.clone();
    cfg.processors = 1;
    cfg.l2.threads = 1;
    cfg.l2.arbiter = ArbiterPolicy::RowFcfs;
    cfg.l2.capacity = CapacityPolicy::Lru;
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Spec(benchmark)]);
    let m = sys.run_measured(budget.warmup, budget.window);
    m.ipc[0]
}

/// Standalone IPC of each benchmark in the mix (see [`standalone_ipc`]).
pub fn standalone_ipcs(base: &CmpConfig, mix: &[&'static str; 4], budget: RunBudget) -> Vec<f64> {
    mix.iter().map(|&b| standalone_ipc(base, b, budget)).collect()
}

/// Equal-share targets for each benchmark in the mix: the IPC of the
/// private machine with `beta = alpha = 1/4` (the paper's QoS reference).
pub fn equal_share_targets(
    base: &CmpConfig,
    mix: &[&'static str; 4],
    budget: RunBudget,
) -> Vec<f64> {
    let quarter = Share::new(1, 4).expect("quarter share");
    mix.iter()
        .map(|b| {
            target_ipc(base, WorkloadSpec::Spec(b), quarter, quarter, budget.warmup, budget.window)
        })
        .collect()
}

/// The number of independent simulations behind one mix: four
/// equal-share targets, four standalone baselines, and the FCFS and VPC
/// co-scheduled runs.
const CELLS_PER_MIX: usize = 10;

/// Runs the full headline experiment over `mixes`. Every target,
/// standalone baseline and co-scheduled run is an independent simulation,
/// so the whole `mixes x 10` grid runs as one parallel job batch.
pub fn run(base: &CmpConfig, mixes: &[[&'static str; 4]], budget: RunBudget) -> Fig10Result {
    let quarter = Share::new(1, 4).expect("quarter share");
    // Uniform cell type: single-thread cells report one IPC, co-scheduled
    // cells report all four.
    let mut jobs: Vec<Job<'_, Vec<f64>>> = Vec::new();
    for mix in mixes {
        let name = mix.join("+");
        for &b in mix {
            jobs.push(Job::new(format!("fig10/{name}/target/{b}"), move || {
                vec![target_ipc(
                    base,
                    WorkloadSpec::Spec(b),
                    quarter,
                    quarter,
                    budget.warmup,
                    budget.window,
                )]
            }));
        }
        for &b in mix {
            jobs.push(Job::new(format!("fig10/{name}/standalone/{b}"), move || {
                vec![standalone_ipc(base, b, budget)]
            }));
        }
        jobs.push(Job::new(format!("fig10/{name}/fcfs"), move || {
            run_mix(base, mix, ArbiterPolicy::Fcfs, budget)
        }));
        jobs.push(Job::new(format!("fig10/{name}/vpc"), move || {
            run_mix(base, mix, ArbiterPolicy::vpc_equal(4), budget)
        }));
    }

    let cells = exec::map_indexed(jobs, exec::jobs());
    let results = mixes
        .iter()
        .zip(cells.chunks_exact(CELLS_PER_MIX))
        .map(|(mix, cell)| {
            let targets: Vec<f64> = cell[0..4].iter().map(|c| c[0]).collect();
            let alone: Vec<f64> = cell[4..8].iter().map(|c| c[0]).collect();
            let fcfs = &cell[8];
            let vpc = &cell[9];
            MixResult {
                mix: *mix,
                fcfs_norm: normalized_ipcs(fcfs, &targets),
                vpc_norm: normalized_ipcs(vpc, &targets),
                fcfs_standalone: normalized_ipcs(fcfs, &alone),
                vpc_standalone: normalized_ipcs(vpc, &alone),
            }
        })
        .collect();
    Fig10Result { mixes: results }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpc_meets_targets_where_fcfs_fails() {
        let mut base = CmpConfig::table1();
        base.l2.total_sets = 2048;
        let r = run(&base, &[["art", "mcf", "equake", "gzip"]], RunBudget::quick());
        let m = &r.mixes[0];
        assert!(
            m.vpc_min() >= m.fcfs_min() * 0.98,
            "VPC must not worsen the worst-treated thread: vpc {:.3} vs fcfs {:.3}",
            m.vpc_min(),
            m.fcfs_min()
        );
        assert!(
            m.vpc_norm.iter().all(|&x| x > 0.9),
            "every thread meets (or nearly meets) its target under VPC: {:?}",
            m.vpc_norm
        );
    }
}
