//! Synthetic SPEC CPU 2000 workload profiles.
//!
//! The paper evaluates on twenty 100M-instruction sampled SPEC traces; the
//! traces themselves are proprietary, so each benchmark is substituted with
//! a parameterized synthetic generator (documented in DESIGN.md). The
//! parameters control exactly the properties the shared cache sees:
//!
//! * instruction mix (loads / stores / other);
//! * the fraction of loads that miss the L1 and reach the L2, generated
//!   with a two-state Markov process so misses arrive in *bursts*
//!   (§4.1.2: bursty L2 accesses amortize preemption latency — `mcf`-like
//!   profiles with isolated misses are the latency-sensitive ones);
//! * the fraction of L2 load accesses that miss to memory (streaming
//!   benchmarks like `equake`/`swim` miss most of the time, which is what
//!   makes their tag-array utilization exceed their data-array
//!   utilization, Figure 6);
//! * store line locality, which the store gathering buffers convert into
//!   the gathering rates of Figure 7.

use vpc_cpu::{Op, Workload};
use vpc_sim::{LineAddr, SplitMix64, ThreadId};

/// The SPEC benchmarks of Figures 6/7, ordered by data-array utilization
/// (the paper's plotting order, most aggressive first).
pub const SPEC_NAMES: [&str; 18] = [
    "art", "vpr", "mesa", "crafty", "gap", "mcf", "apsi", "twolf", "gcc", "gzip", "lucas",
    "equake", "swim", "wupwise", "ammp", "bzip2", "mgrid", "sixtrack",
];

/// Parameters of one synthetic benchmark profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecParams {
    /// Benchmark name.
    pub name: &'static str,
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of loads that miss the L1 (reach the L2).
    pub l1_miss_rate: f64,
    /// Fraction of L2 load accesses that miss to memory (streaming).
    pub l2_miss_rate: f64,
    /// Probability that consecutive stores target the same line (drives
    /// the store gathering rate).
    pub store_locality: f64,
    /// Mean length of an L2-access burst (memory-level parallelism).
    pub burst_mean: f64,
    /// L2-resident working set, in lines.
    pub warm_lines: u64,
    /// Frontend-limited IPC (dependence/branch stalls are modeled as
    /// dispatch bubbles so light benchmarks do not run at the machine's
    /// full dispatch width).
    pub base_ipc: f64,
}

/// The calibrated profile table. Values are tuned so each benchmark's solo
/// utilization and write mix land near Figures 6 and 7.
pub fn spec_params() -> &'static [SpecParams; 18] {
    const P: [SpecParams; 18] = [
        SpecParams {
            name: "art",
            load_frac: 0.34,
            store_frac: 0.12,
            l1_miss_rate: 0.2508,
            l2_miss_rate: 0.06,
            store_locality: 0.4695,
            burst_mean: 8.0,
            warm_lines: 4096,
            base_ipc: 1.3,
        },
        SpecParams {
            name: "vpr",
            load_frac: 0.32,
            store_frac: 0.14,
            l1_miss_rate: 0.1727,
            l2_miss_rate: 0.05,
            store_locality: 0.6614,
            burst_mean: 6.0,
            warm_lines: 4096,
            base_ipc: 1.2,
        },
        SpecParams {
            name: "mesa",
            load_frac: 0.3,
            store_frac: 0.16,
            l1_miss_rate: 0.0897,
            l2_miss_rate: 0.04,
            store_locality: 0.8079,
            burst_mean: 5.0,
            warm_lines: 2048,
            base_ipc: 1.5,
        },
        SpecParams {
            name: "crafty",
            load_frac: 0.3,
            store_frac: 0.15,
            l1_miss_rate: 0.0837,
            l2_miss_rate: 0.03,
            store_locality: 0.8000,
            burst_mean: 5.0,
            warm_lines: 2048,
            base_ipc: 1.4,
        },
        SpecParams {
            name: "gap",
            load_frac: 0.28,
            store_frac: 0.14,
            l1_miss_rate: 0.1008,
            l2_miss_rate: 0.05,
            store_locality: 0.8038,
            burst_mean: 5.0,
            warm_lines: 2048,
            base_ipc: 1.3,
        },
        SpecParams {
            name: "mcf",
            load_frac: 0.35,
            store_frac: 0.08,
            l1_miss_rate: 0.2944,
            l2_miss_rate: 0.3,
            store_locality: 0.4662,
            burst_mean: 1.3,
            warm_lines: 4096,
            base_ipc: 0.6,
        },
        SpecParams {
            name: "apsi",
            load_frac: 0.28,
            store_frac: 0.14,
            l1_miss_rate: 0.0776,
            l2_miss_rate: 0.1,
            store_locality: 0.8146,
            burst_mean: 4.0,
            warm_lines: 2048,
            base_ipc: 1.3,
        },
        SpecParams {
            name: "twolf",
            load_frac: 0.3,
            store_frac: 0.12,
            l1_miss_rate: 0.0839,
            l2_miss_rate: 0.05,
            store_locality: 0.7890,
            burst_mean: 4.0,
            warm_lines: 2048,
            base_ipc: 1.1,
        },
        SpecParams {
            name: "gcc",
            load_frac: 0.26,
            store_frac: 0.14,
            l1_miss_rate: 0.0698,
            l2_miss_rate: 0.08,
            store_locality: 0.8421,
            burst_mean: 3.0,
            warm_lines: 2048,
            base_ipc: 1.2,
        },
        SpecParams {
            name: "gzip",
            load_frac: 0.25,
            store_frac: 0.12,
            l1_miss_rate: 0.0616,
            l2_miss_rate: 0.05,
            store_locality: 0.8641,
            burst_mean: 3.0,
            warm_lines: 1024,
            base_ipc: 1.3,
        },
        SpecParams {
            name: "lucas",
            load_frac: 0.28,
            store_frac: 0.1,
            l1_miss_rate: 0.0751,
            l2_miss_rate: 0.3,
            store_locality: 0.8096,
            burst_mean: 4.0,
            warm_lines: 2048,
            base_ipc: 1.1,
        },
        SpecParams {
            name: "equake",
            load_frac: 0.33,
            store_frac: 0.05,
            l1_miss_rate: 0.1661,
            l2_miss_rate: 0.75,
            store_locality: 0.8109,
            burst_mean: 4.0,
            warm_lines: 1024,
            base_ipc: 0.9,
        },
        SpecParams {
            name: "swim",
            load_frac: 0.3,
            store_frac: 0.05,
            l1_miss_rate: 0.1424,
            l2_miss_rate: 0.8,
            store_locality: 0.7974,
            burst_mean: 5.0,
            warm_lines: 1024,
            base_ipc: 1.0,
        },
        SpecParams {
            name: "wupwise",
            load_frac: 0.28,
            store_frac: 0.1,
            l1_miss_rate: 0.0354,
            l2_miss_rate: 0.2,
            store_locality: 0.8940,
            burst_mean: 3.0,
            warm_lines: 1024,
            base_ipc: 1.4,
        },
        SpecParams {
            name: "ammp",
            load_frac: 0.28,
            store_frac: 0.1,
            l1_miss_rate: 0.0378,
            l2_miss_rate: 0.1,
            store_locality: 0.8786,
            burst_mean: 2.0,
            warm_lines: 1024,
            base_ipc: 1.0,
        },
        SpecParams {
            name: "bzip2",
            load_frac: 0.26,
            store_frac: 0.12,
            l1_miss_rate: 0.0224,
            l2_miss_rate: 0.05,
            store_locality: 0.9290,
            burst_mean: 2.0,
            warm_lines: 1024,
            base_ipc: 1.2,
        },
        SpecParams {
            name: "mgrid",
            load_frac: 0.3,
            store_frac: 0.08,
            l1_miss_rate: 0.0203,
            l2_miss_rate: 0.1,
            store_locality: 0.9162,
            burst_mean: 3.0,
            warm_lines: 1024,
            base_ipc: 1.1,
        },
        SpecParams {
            name: "sixtrack",
            load_frac: 0.25,
            store_frac: 0.08,
            l1_miss_rate: 0.0101,
            l2_miss_rate: 0.05,
            store_locality: 0.9623,
            burst_mean: 2.0,
            warm_lines: 1024,
            base_ipc: 1.6,
        },
    ];
    &P
}

/// Looks up a profile by name.
pub fn params_for(name: &str) -> Option<&'static SpecParams> {
    spec_params().iter().find(|p| p.name == name)
}

/// Creates the synthetic workload for benchmark `name` on `thread`.
///
/// Returns `None` for unknown names.
pub fn workload(name: &str, thread: ThreadId) -> Option<SyntheticSpec> {
    params_for(name).map(|p| SyntheticSpec::new(*p, thread))
}

/// Address-space regions within a thread's private space (line units).
const THREAD_STRIDE: u64 = 1 << 32;
const HOT_BASE: u64 = 0;
const HOT_LINES: u64 = 48; // stays L1-resident
const WARM_BASE: u64 = 1 << 16;
const STORE_BASE: u64 = 1 << 24;
const COLD_BASE: u64 = 1 << 28;

/// The synthetic benchmark generator. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    params: SpecParams,
    base: u64,
    rng: SplitMix64,
    /// Remaining loads in the current L2 burst (Markov burst state).
    burst_left: u64,
    /// Current store target line offset within the store region.
    store_line: u64,
    /// Distinct store lines used so far (wraps over a modest pool).
    store_pool: u64,
    /// Next never-before-seen line for streaming (always-miss) accesses.
    cold_next: u64,
}

impl SyntheticSpec {
    /// Creates a generator for `params`, seeded by benchmark name and
    /// thread so every run is reproducible.
    pub fn new(params: SpecParams, thread: ThreadId) -> SyntheticSpec {
        let name_seed: u64 = params
            .name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3));
        SyntheticSpec {
            base: u64::from(thread.0) * THREAD_STRIDE,
            rng: SplitMix64::new(name_seed ^ (u64::from(thread.0) << 56) ^ 0x5EED),
            burst_left: 0,
            store_line: 0,
            store_pool: (params.warm_lines / 4).max(64),
            cold_next: 0,
            params,
        }
    }

    /// The profile this generator was built from.
    pub fn params(&self) -> &SpecParams {
        &self.params
    }

    fn gen_load(&mut self) -> Op {
        let p = self.params;
        if self.burst_left > 0 {
            // An L2-targeted load within a burst.
            self.burst_left -= 1;
            if self.rng.chance(p.l2_miss_rate) {
                // Streaming: a never-seen line; always misses to memory.
                let line = self.base + COLD_BASE + self.cold_next;
                self.cold_next += 1;
                return Op::Load(LineAddr(line));
            }
            let line = self.base + WARM_BASE + self.rng.below(p.warm_lines);
            return Op::Load(LineAddr(line));
        }
        // Hot (L1-resident) load; possibly start a new burst for later
        // loads. Markov transition keeps the stationary L2 fraction at
        // l1_miss_rate with mean dwell burst_mean.
        let p_enter = if p.l1_miss_rate >= 1.0 {
            1.0
        } else {
            p.l1_miss_rate / ((1.0 - p.l1_miss_rate) * p.burst_mean)
        };
        if self.rng.chance(p_enter) {
            self.burst_left = self.rng.burst_len(p.burst_mean);
        }
        let line = self.base + HOT_BASE + self.rng.below(HOT_LINES);
        Op::Load(LineAddr(line))
    }

    fn gen_store(&mut self) -> Op {
        let p = self.params;
        if !self.rng.chance(p.store_locality) {
            self.store_line = (self.store_line + 1) % self.store_pool;
        }
        Op::Store(LineAddr(self.base + STORE_BASE + self.store_line))
    }
}

/// Frontend bubble length used to realize `base_ipc`.
const BUBBLE_LEN: u8 = 4;

impl Workload for SyntheticSpec {
    fn next_op(&mut self) -> Op {
        // Emit dispatch bubbles so the instruction stream's frontend-only
        // IPC matches `base_ipc` (cycles/instr = 1/width + bubbles x len).
        let p = self.params;
        let per_instr_stall = (1.0 / p.base_ipc - 0.2).max(0.0) / f64::from(BUBBLE_LEN);
        let q = per_instr_stall / (1.0 + per_instr_stall);
        if self.rng.chance(q) {
            return Op::Bubble(BUBBLE_LEN);
        }
        let r = self.rng.unit_f64();
        if r < self.params.load_frac {
            self.gen_load()
        } else if r < self.params.load_frac + self.params.store_frac {
            self.gen_store()
        } else {
            Op::NonMem
        }
    }

    fn name(&self) -> &str {
        self.params.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_of(name: &str, n: usize) -> (f64, f64, f64) {
        let mut w = workload(name, ThreadId(0)).unwrap();
        let (mut loads, mut stores, mut other) = (0u64, 0u64, 0u64);
        for _ in 0..n {
            match w.next_op() {
                Op::Load(_) => loads += 1,
                Op::Store(_) => stores += 1,
                Op::NonMem => other += 1,
                Op::Bubble(_) => {}
            }
        }
        let n = (loads + stores + other) as f64;
        (loads as f64 / n, stores as f64 / n, other as f64 / n)
    }

    #[test]
    fn all_benchmarks_have_profiles() {
        for name in SPEC_NAMES {
            assert!(params_for(name).is_some(), "missing profile for {name}");
        }
        assert!(params_for("nonexistent").is_none());
    }

    #[test]
    fn instruction_mix_matches_parameters() {
        for name in ["art", "mcf", "sixtrack"] {
            let p = *params_for(name).unwrap();
            let (l, s, _) = mix_of(name, 100_000);
            assert!((l - p.load_frac).abs() < 0.02, "{name} load mix {l} vs {}", p.load_frac);
            assert!((s - p.store_frac).abs() < 0.02, "{name} store mix {s} vs {}", p.store_frac);
        }
    }

    #[test]
    fn l2_load_fraction_matches_l1_miss_rate() {
        for name in ["art", "gcc", "sixtrack"] {
            let p = *params_for(name).unwrap();
            let mut w = workload(name, ThreadId(0)).unwrap();
            let (mut hot, mut l2) = (0u64, 0u64);
            for _ in 0..300_000 {
                if let Op::Load(line) = w.next_op() {
                    if line.0 < HOT_LINES {
                        hot += 1;
                    } else {
                        l2 += 1;
                    }
                }
            }
            let frac = l2 as f64 / (l2 + hot) as f64;
            assert!(
                (frac - p.l1_miss_rate).abs() < 0.05,
                "{name}: L2-targeted load fraction {frac} vs {}",
                p.l1_miss_rate
            );
        }
    }

    #[test]
    fn streaming_lines_never_repeat() {
        let mut w = workload("swim", ThreadId(0)).unwrap();
        let mut cold = std::collections::BTreeSet::new();
        for _ in 0..200_000 {
            if let Op::Load(line) = w.next_op() {
                if line.0 >= COLD_BASE {
                    assert!(cold.insert(line), "cold line repeated");
                }
            }
        }
        assert!(cold.len() > 100, "swim should stream");
    }

    #[test]
    fn store_locality_produces_runs() {
        let mut w = workload("gzip", ThreadId(0)).unwrap();
        let mut prev: Option<LineAddr> = None;
        let (mut same, mut total) = (0u64, 0u64);
        for _ in 0..300_000 {
            if let Op::Store(line) = w.next_op() {
                if let Some(p) = prev {
                    total += 1;
                    if p == line {
                        same += 1;
                    }
                }
                prev = Some(line);
            }
        }
        let rate = same as f64 / total as f64;
        assert!(rate > 0.7, "consecutive-store locality {rate} too low for gathering");
    }

    #[test]
    fn deterministic_per_seed_and_thread() {
        let mut a = workload("art", ThreadId(0)).unwrap();
        let mut b = workload("art", ThreadId(0)).unwrap();
        for _ in 0..1000 {
            assert_eq!(a.next_op(), b.next_op());
        }
        // Different threads are disjoint and different streams.
        let mut c = workload("art", ThreadId(1)).unwrap();
        let ops_c: Vec<Op> = (0..100).map(|_| c.next_op()).collect();
        assert!(ops_c.iter().all(|op| match op {
            Op::Load(l) | Op::Store(l) => l.0 >= THREAD_STRIDE,
            Op::NonMem | Op::Bubble(_) => true,
        }));
    }

    #[test]
    fn mcf_bursts_are_short_art_bursts_long() {
        // Burst length distribution drives latency sensitivity (§4.1.2).
        fn mean_burst(name: &str) -> f64 {
            let mut w = workload(name, ThreadId(0)).unwrap();
            let mut bursts = Vec::new();
            let mut current = 0u64;
            for _ in 0..400_000 {
                if let Op::Load(line) = w.next_op() {
                    if line.0 % THREAD_STRIDE >= WARM_BASE {
                        current += 1;
                    } else if current > 0 {
                        bursts.push(current);
                        current = 0;
                    }
                }
            }
            bursts.iter().sum::<u64>() as f64 / bursts.len() as f64
        }
        let mcf = mean_burst("mcf");
        let art = mean_burst("art");
        assert!(art > 2.0 * mcf, "art bursts ({art}) should dwarf mcf's ({mcf})");
    }
}
