//! Throughput and fairness metrics over normalized IPCs.

pub use vpc_sim::stats::harmonic_mean;

/// Per-thread normalized IPC: shared-machine IPC divided by the thread's
/// standalone (full-machine) IPC. The paper's throughput metric is the
/// harmonic mean of these; its fairness-sensitive metric is their minimum.
pub fn normalized_ipcs(shared: &[f64], standalone: &[f64]) -> Vec<f64> {
    assert_eq!(shared.len(), standalone.len(), "one standalone IPC per thread");
    shared
        .iter()
        .zip(standalone)
        .map(|(&s, &alone)| if alone <= 0.0 { 0.0 } else { s / alone })
        .collect()
}

/// Weighted speedup: the sum of per-thread normalized IPCs — the CMP
/// throughput metric complementary to the harmonic mean (it rewards total
/// progress; the harmonic mean rewards *balanced* progress).
pub fn weighted_speedup(normalized: &[f64]) -> f64 {
    normalized.iter().sum()
}

/// The minimum of a slice (0 for empty slices).
pub fn minimum(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Relative improvement `(new - old) / old`, in percent.
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let n = normalized_ipcs(&[0.5, 0.2], &[1.0, 0.4]);
        assert_eq!(n, vec![0.5, 0.5]);
        let n = normalized_ipcs(&[0.5], &[0.0]);
        assert_eq!(n, vec![0.0]);
    }

    #[test]
    fn weighted_speedup_sums() {
        assert_eq!(weighted_speedup(&[0.5, 0.25, 1.0]), 1.75);
        assert_eq!(weighted_speedup(&[]), 0.0);
    }

    #[test]
    fn minimum_of_values() {
        assert_eq!(minimum(&[0.7, 0.3, 0.9]), 0.3);
        assert_eq!(minimum(&[]), 0.0);
    }

    #[test]
    fn improvement() {
        assert!((improvement_pct(0.5, 0.57) - 14.0).abs() < 1e-9);
        assert_eq!(improvement_pct(0.0, 1.0), 0.0);
    }
}
