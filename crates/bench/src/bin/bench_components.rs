//! Microbenchmarks of the simulator's building blocks: arbiter grant
//! throughput (the paper's Figure 3 hardware is a handful of comparators,
//! so the software model must also be cheap), capacity-manager victim
//! selection, the DRAM channel, and the whole-system cycle rate.
//!
//! Run with `--json` for a machine-readable `BENCH_*.json` baseline, and
//! `--quick` for a fast smoke pass.

use std::hint::black_box;

use vpc::prelude::*;
use vpc_arbiters::ArbRequest;
use vpc_bench::harness::Suite;
use vpc_capacity::{ReplacementPolicy, TagSet, TrueLru, VpcCapacityManager};
use vpc_mem::{DramChannel, MemConfig};
use vpc_sim::{AccessKind, LineAddr, SplitMix64};

fn bench_arbiters(suite: &mut Suite) {
    let q = Share::new(1, 4).unwrap();
    for policy in [
        ArbiterPolicy::Fcfs,
        ArbiterPolicy::RowFcfs,
        ArbiterPolicy::RoundRobin,
        ArbiterPolicy::vpc_equal(4),
        ArbiterPolicy::Drr { shares: vec![q; 4] },
        ArbiterPolicy::Sfq { shares: vec![q; 4] },
    ] {
        suite.bench_batched(
            &format!("arbiter_grant/{}", policy.label()),
            100,
            || {
                let mut arb = policy.build(4);
                for i in 0..64u64 {
                    let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
                    let service = if kind.is_read() { 8 } else { 16 };
                    arb.enqueue(ArbRequest::new(i, ThreadId((i % 4) as u8), kind, service), i);
                }
                arb
            },
            |mut arb| {
                let mut now = 0;
                while let Some(req) = arb.select(now) {
                    now += req.service_time;
                    black_box(req.id);
                }
            },
        );
    }
}

fn bench_capacity(suite: &mut Suite) {
    let mut set = TagSet::new(32);
    let mut rng = SplitMix64::new(1);
    for way in 0..32 {
        set.fill(way, LineAddr(way as u64), ThreadId((way % 4) as u8), rng.below(1000));
    }
    let lru = TrueLru;
    let vpc = VpcCapacityManager::equal(4, 32);
    suite.bench("victim_selection/true_lru", 100, || {
        black_box(lru.choose_victim(black_box(&set), ThreadId(0)))
    });
    suite.bench("victim_selection/vpc_way_quota", 100, || {
        black_box(vpc.choose_victim(black_box(&set), ThreadId(0)))
    });
}

fn bench_dram_channel(suite: &mut Suite) {
    suite.bench_batched(
        "dram_channel_16_reads",
        100,
        || DramChannel::new(MemConfig::ddr2_800()),
        |mut ch| {
            let mut now = 0;
            for i in 0..16u64 {
                while !ch.bank_available(LineAddr(i), now) {
                    now += 5;
                }
                black_box(ch.issue(LineAddr(i), AccessKind::Read, i, now));
            }
        },
    );
}

fn bench_system_cycle_rate(suite: &mut Suite) {
    // Whole-system simulation rate: cycles per second of the 4-thread
    // Table 1 machine under VPC arbiters.
    suite.bench_batched(
        "cmp_system_10k_cycles",
        20,
        || {
            let mut cfg = CmpConfig::table1().with_arbiter(ArbiterPolicy::vpc_equal(4));
            cfg.l2.total_sets = 1024;
            let mix = [
                WorkloadSpec::Spec("art"),
                WorkloadSpec::Spec("mcf"),
                WorkloadSpec::Spec("gcc"),
                WorkloadSpec::Spec("gzip"),
            ];
            CmpSystem::new(cfg, &mix)
        },
        |mut sys| {
            sys.run(10_000);
            black_box(sys.now());
        },
    );
}

fn bench_quiescence_skipping(suite: &mut Suite) {
    // The cycle-skipping headline, measured both ways on the most
    // DRAM-bound configuration we model: a single cache-hostile thread
    // (mcf's profile) on a tiny 64-set L2, so nearly every access misses
    // and the system spends long stretches waiting on DRAM. `skip` and
    // `no_skip` produce byte-identical state (see the `skip_equivalence`
    // property tests); the ratio of the two medians is the honest speedup.
    for (name, skip) in [("dram_bound_mcf/skip", true), ("dram_bound_mcf/no_skip", false)] {
        suite.bench_batched(
            name,
            20,
            move || {
                let mut cfg = CmpConfig::table1();
                cfg.processors = 1;
                cfg.l2.total_sets = 64;
                let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Spec("mcf")]);
                sys.set_cycle_skipping(skip);
                sys
            },
            |mut sys| {
                sys.run(50_000);
                black_box(sys.now());
            },
        );
    }
}

fn main() {
    vpc_bench::skip_from_args();
    let mut suite = Suite::from_args("components");
    bench_arbiters(&mut suite);
    bench_capacity(&mut suite);
    bench_dram_channel(&mut suite);
    bench_system_cycle_rate(&mut suite);
    bench_quiescence_skipping(&mut suite);
    suite.finish();
}
