//! A deterministic, dependency-free property-testing microharness.
//!
//! Every property test in the workspace runs on this module instead of an
//! external crate, so the whole test suite is a pure function of the seeds
//! checked into the repository — no registry access, no OS entropy, no
//! per-machine variation.
//!
//! # Model
//!
//! A *property* is a closure from a [`SplitMix64`] generator to
//! `Result<(), String>`: draw whatever inputs you need from the generator,
//! return `Err(message)` when the property is violated. [`forall`] derives
//! one independent case seed per case from a master [`Config`] seed and
//! panics on the first failing case, printing the case seed so the failure
//! can be replayed exactly:
//!
//! ```
//! use vpc_sim::check::{self, Config};
//! use vpc_sim::ensure;
//!
//! check::forall("addition_commutes", Config::cases(64), |rng| {
//!     let (a, b) = (rng.below(1000), rng.below(1000));
//!     ensure!(a + b == b + a, "{a} + {b} not commutative");
//!     Ok(())
//! });
//! ```
//!
//! To replay a reported failure, set the `VPC_CHECK_SEED` environment
//! variable (decimal or `0x`-prefixed hex) and re-run the test: the harness
//! then runs exactly that one case. Programmatic replay is available via
//! [`replay`].
//!
//! Sequence-shaped properties go through [`forall_seq`], which additionally
//! *shrinks* a failing sequence by halving/bisection (delta debugging):
//! ever-smaller chunks are removed while the property still fails, so the
//! reported counterexample is locally minimal — removing any single
//! remaining element makes the failure disappear.
//!
//! Generators for the workspace's domain types live in [`gen`].

use std::fmt::Debug;

use crate::rng::SplitMix64;

/// Environment variable that, when set, replays a single case seed.
pub const SEED_ENV: &str = "VPC_CHECK_SEED";

/// Default master seed used by [`Config::cases`]. Arbitrary but fixed:
/// changing it reshuffles every generated case in the workspace.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// How a [`forall`] run explores the input space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of independent cases to run.
    pub cases: u64,
    /// Master seed from which per-case seeds are derived.
    pub seed: u64,
}

impl Config {
    /// `cases` cases from the workspace-wide [`DEFAULT_SEED`].
    pub fn cases(cases: u64) -> Config {
        Config { cases, seed: DEFAULT_SEED }
    }

    /// Same case count, different master seed (for independent reruns).
    pub fn with_seed(self, seed: u64) -> Config {
        Config { seed, ..self }
    }
}

/// A failing case found by [`find_failure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Zero-based index of the failing case.
    pub case: u64,
    /// The case seed: `SplitMix64::new(seed)` regenerates the exact inputs.
    pub seed: u64,
    /// The property's error message.
    pub message: String,
}

/// Runs `property` once per case and returns the first failure, if any,
/// without panicking. [`forall`] is the asserting wrapper; this entry point
/// exists so the harness can test itself.
pub fn find_failure<F>(cfg: Config, mut property: F) -> Option<Failure>
where
    F: FnMut(&mut SplitMix64) -> Result<(), String>,
{
    if let Some(seed) = replay_seed_from_env() {
        let message = replay(seed, &mut property).err()?;
        return Some(Failure { case: 0, seed, message });
    }
    let mut master = SplitMix64::new(cfg.seed);
    for case in 0..cfg.cases {
        let seed = master.next_u64();
        if let Err(message) = replay(seed, &mut property) {
            return Some(Failure { case, seed, message });
        }
    }
    None
}

/// Runs `property` against the single case derived from `seed`. Replaying
/// the seed printed in a failure report reproduces that exact case.
pub fn replay<F>(seed: u64, mut property: F) -> Result<(), String>
where
    F: FnMut(&mut SplitMix64) -> Result<(), String>,
{
    let mut rng = SplitMix64::new(seed);
    property(&mut rng)
}

/// Checks `property` over `cfg.cases` generated cases.
///
/// # Panics
///
/// Panics on the first failing case, reporting the reproducing seed:
///
/// ```text
/// property 'name' failed at case 3 of 64 (seed = 0x1234abcd): message
/// replay with: VPC_CHECK_SEED=0x1234abcd cargo test name
/// ```
pub fn forall<F>(name: &str, cfg: Config, property: F)
where
    F: FnMut(&mut SplitMix64) -> Result<(), String>,
{
    if let Some(failure) = find_failure(cfg, property) {
        panic!("{}", report(name, cfg, &failure));
    }
}

/// Renders a [`Failure`] into the standard replay-instruction message.
pub fn report(name: &str, cfg: Config, failure: &Failure) -> String {
    format!(
        "property '{name}' failed at case {} of {} (seed = {:#x}): {}\n\
         replay with: {SEED_ENV}={:#x} cargo test {name}",
        failure.case, cfg.cases, failure.seed, failure.message, failure.seed
    )
}

fn replay_seed_from_env() -> Option<u64> {
    let raw = std::env::var(SEED_ENV).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("{SEED_ENV}={raw:?} is not a decimal or 0x-hex u64"),
    }
}

/// A failing sequence case found by [`find_seq_failure`], after shrinking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqFailure<T> {
    /// Zero-based index of the failing case.
    pub case: u64,
    /// The case seed regenerating the *unshrunk* sequence.
    pub seed: u64,
    /// Locally minimal failing sequence (halving/bisection shrink).
    pub shrunk: Vec<T>,
    /// The property's error message on the shrunk sequence.
    pub message: String,
}

/// Checks a property of generated sequences, shrinking counterexamples.
///
/// Each case draws a length in `min_len..=max_len`, generates that many
/// elements with `element`, and applies `property` to the slice. On failure
/// the sequence is shrunk by halving/bisection before reporting.
///
/// # Panics
///
/// Panics if `min_len > max_len`, and on the first failing case (reporting
/// seed and the shrunk counterexample).
pub fn forall_seq<T, G, F>(
    name: &str,
    cfg: Config,
    (min_len, max_len): (usize, usize),
    element: G,
    property: F,
) where
    T: Clone + Debug,
    G: FnMut(&mut SplitMix64) -> T,
    F: FnMut(&[T]) -> Result<(), String>,
{
    if let Some(failure) = find_seq_failure(cfg, (min_len, max_len), element, property) {
        panic!(
            "property '{name}' failed at case {} of {} (seed = {:#x}): {}\n\
             shrunk counterexample ({} elements): {:?}\n\
             replay with: {SEED_ENV}={:#x} cargo test {name}",
            failure.case,
            cfg.cases,
            failure.seed,
            failure.message,
            failure.shrunk.len(),
            failure.shrunk,
            failure.seed
        );
    }
}

/// Non-panicking core of [`forall_seq`]; returns the shrunk failure.
pub fn find_seq_failure<T, G, F>(
    cfg: Config,
    (min_len, max_len): (usize, usize),
    mut element: G,
    mut property: F,
) -> Option<SeqFailure<T>>
where
    T: Clone + Debug,
    G: FnMut(&mut SplitMix64) -> T,
    F: FnMut(&[T]) -> Result<(), String>,
{
    assert!(min_len <= max_len, "min_len must not exceed max_len");
    let replay_only = replay_seed_from_env();
    let mut master = SplitMix64::new(cfg.seed);
    let cases = if replay_only.is_some() { 1 } else { cfg.cases };
    for case in 0..cases {
        let seed = replay_only.unwrap_or_else(|| master.next_u64());
        let mut rng = SplitMix64::new(seed);
        let len = min_len + rng.below((max_len - min_len + 1) as u64) as usize;
        let seq: Vec<T> = (0..len).map(|_| element(&mut rng)).collect();
        if let Err(message) = property(&seq) {
            let (shrunk, message) = shrink_seq(seq, message, min_len, &mut property);
            return Some(SeqFailure { case, seed, shrunk, message });
        }
    }
    None
}

/// Halving/bisection shrink (ddmin-style): repeatedly try to delete chunks
/// of the failing sequence, starting at half its length and bisecting down
/// to single elements, keeping any deletion that still fails. The result is
/// locally minimal: no single remaining element can be removed.
fn shrink_seq<T, F>(
    mut seq: Vec<T>,
    mut message: String,
    min_len: usize,
    property: &mut F,
) -> (Vec<T>, String)
where
    T: Clone,
    F: FnMut(&[T]) -> Result<(), String>,
{
    let mut chunk = seq.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < seq.len() && seq.len() > min_len {
            let end = (start + chunk).min(seq.len());
            // Keep at least min_len elements: trim the chunk if needed.
            let removable = (seq.len() - min_len).min(end - start);
            if removable == 0 {
                break;
            }
            let end = start + removable;
            let mut candidate = Vec::with_capacity(seq.len() - (end - start));
            candidate.extend_from_slice(&seq[..start]);
            candidate.extend_from_slice(&seq[end..]);
            match property(&candidate) {
                Err(msg) => {
                    seq = candidate;
                    message = msg;
                    removed_any = true;
                    // Retry the same start: the tail shifted into place.
                }
                Ok(()) => start = end,
            }
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
            // A deletion opened new opportunities; sweep again at size 1.
            continue;
        }
        chunk = chunk.div_ceil(2).max(1);
    }
    (seq, message)
}

/// Returns `Err` from the enclosing property when a condition is violated.
///
/// With a single argument, the condition's source text becomes the message;
/// extra arguments are a `format!` message.
#[macro_export]
macro_rules! ensure {
    ($cond:expr $(,)?) => {
        // `match` rather than `if !cond`: negating a partial-ord float
        // comparison would trip clippy at every expansion site.
        match $cond {
            true => {}
            false => return Err(format!("assertion failed: {}", stringify!($cond))),
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        match $cond {
            true => {}
            false => return Err(format!($($fmt)+)),
        }
    };
}

/// Returns `Err` from the enclosing property when two values differ.
#[macro_export]
macro_rules! ensure_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!("{}\n  left: {l:?}\n right: {r:?}", format!($($fmt)+)));
        }
    }};
}

/// Value generators for the workspace's domain types.
///
/// Each generator is a plain function of a [`SplitMix64`], so composite
/// generators are ordinary function composition — no combinator machinery.
pub mod gen {
    use crate::rng::SplitMix64;
    use crate::share::Share;
    use crate::types::{AccessKind, CacheRequest, LineAddr, ThreadId};

    /// Uniform `u64` in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(rng: &mut SplitMix64, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + rng.below(hi - lo + 1)
    }

    /// A valid [`Share`] with denominator in `1..=max_den` (numerator may
    /// be zero — include the no-guarantee case).
    pub fn share(rng: &mut SplitMix64, max_den: u32) -> Share {
        let den = range(rng, 1, u64::from(max_den)) as u32;
        let num = range(rng, 0, u64::from(den)) as u32;
        Share::new(num, den).expect("num <= den by construction")
    }

    /// A nonzero [`Share`] with denominator in `1..=max_den`.
    pub fn nonzero_share(rng: &mut SplitMix64, max_den: u32) -> Share {
        let den = range(rng, 1, u64::from(max_den)) as u32;
        let num = range(rng, 1, u64::from(den)) as u32;
        Share::new(num, den).expect("1 <= num <= den by construction")
    }

    /// A [`LineAddr`] below `bound`.
    pub fn line_addr(rng: &mut SplitMix64, bound: u64) -> LineAddr {
        LineAddr(rng.below(bound))
    }

    /// A [`ThreadId`] in `0..threads`.
    pub fn thread_id(rng: &mut SplitMix64, threads: usize) -> ThreadId {
        ThreadId(rng.below(threads as u64) as u8)
    }

    /// A read or write, each with probability 1/2.
    pub fn access_kind(rng: &mut SplitMix64) -> AccessKind {
        if rng.chance(0.5) {
            AccessKind::Read
        } else {
            AccessKind::Write
        }
    }

    /// One [`CacheRequest`] from `threads` threads over `lines` lines, with
    /// the caller-supplied token.
    pub fn cache_request(
        rng: &mut SplitMix64,
        threads: usize,
        lines: u64,
        token: u64,
    ) -> CacheRequest {
        CacheRequest {
            thread: thread_id(rng, threads),
            line: line_addr(rng, lines),
            kind: access_kind(rng),
            token,
        }
    }

    /// A request sequence of length `len` with ascending tokens starting at
    /// zero — the shape every liveness/ordering property consumes.
    pub fn request_seq(
        rng: &mut SplitMix64,
        threads: usize,
        lines: u64,
        len: usize,
    ) -> Vec<CacheRequest> {
        (0..len).map(|token| cache_request(rng, threads, lines, token as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::AccessKind;

    #[test]
    fn passing_property_finds_no_failure() {
        let outcome = find_failure(Config::cases(128), |rng| {
            let x = rng.below(100);
            ensure!(x < 100, "below out of range");
            Ok(())
        });
        assert_eq!(outcome, None);
    }

    #[test]
    fn failing_property_reports_reproducing_seed() {
        // Fails only for some inputs, so the harness must search for it.
        let property = |rng: &mut SplitMix64| -> Result<(), String> {
            let x = rng.below(10);
            ensure!(x != 7, "hit the failing value, x = {x}");
            Ok(())
        };
        let failure =
            find_failure(Config::cases(256), property).expect("x == 7 occurs within 256 cases");
        assert!(failure.message.contains("x = 7"), "message: {}", failure.message);
        // Determinism: replaying the reported seed hits the same counterexample.
        let replayed = replay(failure.seed, property).unwrap_err();
        assert_eq!(replayed, failure.message);
        // And the full report tells the user how to do that.
        let rendered = report("demo", Config::cases(256), &failure);
        assert!(rendered.contains(&format!("{:#x}", failure.seed)));
        assert!(rendered.contains(SEED_ENV));
    }

    #[test]
    fn same_config_generates_identical_cases() {
        let collect = || {
            let mut seen = Vec::new();
            let outcome = find_failure(Config::cases(32), |rng| {
                seen.push(rng.next_u64());
                Ok(())
            });
            assert_eq!(outcome, None);
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn distinct_master_seeds_generate_distinct_cases() {
        let collect = |seed| {
            let mut seen = Vec::new();
            find_failure(Config::cases(8).with_seed(seed), |rng| {
                seen.push(rng.next_u64());
                Ok(())
            });
            seen
        };
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    #[should_panic(expected = "replay with")]
    fn forall_panics_with_replay_instructions() {
        forall("always_fails", Config::cases(4), |_| Err("no".into()));
    }

    #[test]
    fn shrinking_reaches_locally_minimal_sequence() {
        // Property: "no element is >= 90". A random failing sequence has
        // many innocent elements; the shrunk one must contain offenders only.
        let failure = find_seq_failure(
            Config::cases(64),
            (1, 64),
            |rng| rng.below(100),
            |seq: &[u64]| {
                if let Some(bad) = seq.iter().find(|&&x| x >= 90) {
                    return Err(format!("offending element {bad}"));
                }
                Ok(())
            },
        )
        .expect("an element >= 90 appears within 64 sequences");
        assert_eq!(failure.shrunk.len(), 1, "shrunk to a single element: {:?}", failure.shrunk);
        assert!(failure.shrunk[0] >= 90);
    }

    #[test]
    fn shrinking_respects_min_len() {
        // Always fails; shrinking must stop at the configured minimum.
        let failure = find_seq_failure(
            Config::cases(1),
            (3, 10),
            |rng| rng.below(100),
            |_: &[u64]| Err("always".into()),
        )
        .unwrap();
        assert_eq!(failure.shrunk.len(), 3);
    }

    #[test]
    fn shrinking_handles_interacting_elements() {
        // Fails when the sequence contains at least two odd numbers — a
        // non-contiguous pair, exercising the bisection passes.
        let failure = find_seq_failure(
            Config::cases(64),
            (0, 40),
            |rng| rng.below(1000),
            |seq: &[u64]| {
                let odds = seq.iter().filter(|&&x| x % 2 == 1).count();
                if odds >= 2 {
                    return Err(format!("{odds} odd elements"));
                }
                Ok(())
            },
        )
        .expect("two odds appear within 64 sequences");
        assert_eq!(failure.shrunk.len(), 2, "exactly the interacting pair: {:?}", failure.shrunk);
        assert!(failure.shrunk.iter().all(|x| x % 2 == 1));
    }

    #[test]
    fn generators_respect_their_domains() {
        forall("generator_domains", Config::cases(256), |rng| {
            let s = gen::share(rng, 64);
            ensure!(s.numer() <= s.denom(), "share above one");
            let nz = gen::nonzero_share(rng, 64);
            ensure!(!nz.is_zero(), "nonzero_share produced zero");
            let t = gen::thread_id(rng, 4);
            ensure!(t.index() < 4, "thread out of range");
            let l = gen::line_addr(rng, 128);
            ensure!(l.0 < 128, "line out of range");
            let v = gen::range(rng, 10, 20);
            ensure!((10..=20).contains(&v), "range out of bounds");
            Ok(())
        });
    }

    #[test]
    fn request_seq_tokens_ascend() {
        let mut rng = SplitMix64::new(9);
        let seq = gen::request_seq(&mut rng, 4, 64, 32);
        assert_eq!(seq.len(), 32);
        for (i, req) in seq.iter().enumerate() {
            assert_eq!(req.token, i as u64);
            assert!(req.thread.index() < 4);
            assert!(req.line.0 < 64);
            assert!(matches!(req.kind, AccessKind::Read | AccessKind::Write));
        }
    }

    #[test]
    fn ensure_macros_format_messages() {
        fn violated() -> Result<(), String> {
            ensure!(1 + 1 == 3);
            Ok(())
        }
        assert!(violated().unwrap_err().contains("1 + 1 == 3"));
        fn unequal() -> Result<(), String> {
            ensure_eq!(2 + 2, 5, "arithmetic broke");
            Ok(())
        }
        let msg = unequal().unwrap_err();
        assert!(msg.contains("arithmetic broke") && msg.contains('4') && msg.contains('5'));
    }
}
