//! The quiescence contract for [`ArbitratedResource`]: between `now` and
//! the cycle reported by `next_activity`, a resource receiving no new
//! enqueues must not change observable state — every `try_grant` in that
//! window returns `None` and leaves all counters untouched — and at the
//! reported cycle the pending work actually proceeds.

use vpc_arbiters::{ArbRequest, ArbiterPolicy, ArbitratedResource, IntraThreadOrder};
use vpc_sim::check::{self, gen, Config};
use vpc_sim::{ensure, ensure_eq, Share, SplitMix64, ThreadId};

fn random_policy(rng: &mut SplitMix64, threads: usize) -> ArbiterPolicy {
    // Nonzero shares everywhere: a zero-share thread's requests ride the
    // best-effort path, whose grant timing is still covered by the
    // contract, but equal nonzero shares keep every policy comparable.
    let equal: Vec<Share> = vec![Share::new(1, threads as u32).unwrap(); threads];
    match rng.below(6) {
        0 => ArbiterPolicy::Fcfs,
        1 => ArbiterPolicy::RowFcfs,
        2 => ArbiterPolicy::RoundRobin,
        3 => ArbiterPolicy::Vpc { shares: equal, order: IntraThreadOrder::ReadOverWrite },
        4 => ArbiterPolicy::Drr { shares: equal },
        _ => ArbiterPolicy::Sfq { shares: equal },
    }
}

/// Observable state of a resource, for change detection.
fn observe(res: &ArbitratedResource) -> (usize, u64, u64, Vec<u64>) {
    (
        res.pending(),
        res.grants(),
        res.busy_until(),
        (0..4).map(|t| res.thread_busy_cycles(ThreadId(t))).collect(),
    )
}

/// Drive a random arbitration pattern; whenever the resource is mid-
/// service with work pending, every cycle before `next_activity` must be
/// a provable no-op, and the reported cycle must grant.
#[test]
fn no_state_change_before_next_activity() {
    check::forall("no_state_change_before_next_activity", Config::cases(40), |rng| {
        let threads = 4;
        let mut res = ArbitratedResource::new(random_policy(rng, threads).build(threads));
        let mut now = 0u64;
        let mut id = 0u64;
        for _ in 0..200 {
            // Random arrivals.
            while rng.chance(0.5) {
                id += 1;
                let kind = gen::access_kind(rng);
                let service = rng.below(12) + 4;
                res.enqueue(ArbRequest::new(id, gen::thread_id(rng, threads), kind, service), now);
            }
            res.try_grant(now);
            match res.next_activity(now) {
                None => {
                    ensure_eq!(res.pending(), 0, "idle report requires an empty arbiter");
                    now += rng.below(8) + 1;
                }
                Some(na) => {
                    ensure!(na > now, "next_activity must be in the future");
                    let before = observe(&res);
                    for c in now + 1..na {
                        ensure!(
                            res.try_grant(c).is_none(),
                            "grant fired at {c}, before reported next activity {na}"
                        );
                        ensure_eq!(observe(&res), before, "state changed during quiescence");
                    }
                    ensure!(
                        res.try_grant(na).is_some(),
                        "pending work must proceed at the reported cycle {na}"
                    );
                    now = na;
                }
            }
        }
        Ok(())
    });
}
