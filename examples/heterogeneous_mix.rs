//! The paper's throughput headline on one heterogeneous mix: eliminating
//! negative interference raises both the harmonic mean of normalized IPCs
//! and the worst thread's normalized IPC.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example heterogeneous_mix
//! ```

use vpc::experiments::{fig10, RunBudget};
use vpc::prelude::*;

fn main() {
    let base = CmpConfig::table1();
    let budget = RunBudget { warmup: 40_000, window: 160_000 };
    let mix = ["art", "mcf", "equake", "gzip"];

    println!("== Heterogeneous mix: {} ==\n", mix.join(" + "));

    let targets = fig10::equal_share_targets(&base, &mix, budget);
    let fcfs = fig10::run_mix(&base, &mix, ArbiterPolicy::Fcfs, budget);
    let vpc = fig10::run_mix(&base, &mix, ArbiterPolicy::vpc_equal(4), budget);

    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>11} {:>10}",
        "thread", "target", "FCFS IPC", "FCFS norm", "VPC IPC", "VPC norm"
    );
    for i in 0..4 {
        println!(
            "{:<10} {:>9.3} {:>10.3} {:>10.3} {:>11.3} {:>10.3}",
            mix[i],
            targets[i],
            fcfs[i],
            fcfs[i] / targets[i],
            vpc[i],
            vpc[i] / targets[i],
        );
    }

    let fcfs_norm = normalized_ipcs(&fcfs, &targets);
    let vpc_norm = normalized_ipcs(&vpc, &targets);
    println!(
        "\nharmonic mean: FCFS {:.3} -> VPC {:.3} ({:+.1}%)",
        harmonic_mean(&fcfs_norm),
        harmonic_mean(&vpc_norm),
        improvement_pct(harmonic_mean(&fcfs_norm), harmonic_mean(&vpc_norm)),
    );
    println!(
        "minimum:       FCFS {:.3} -> VPC {:.3} ({:+.1}%)",
        minimum(&fcfs_norm),
        minimum(&vpc_norm),
        improvement_pct(minimum(&fcfs_norm), minimum(&vpc_norm)),
    );
    println!(
        "\nUnder FCFS the lightest thread falls below its fair-share target\n\
         (normalized < 1.0); the VPC arbiters guarantee every thread its\n\
         share, then redistribute the excess."
    );
}
