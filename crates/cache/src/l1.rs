//! Private write-through L1 data cache with MSHRs (Table 1).
//!
//! Write-through, no-write-allocate: stores update the L1 on a hit and are
//! always forwarded toward the L2 (where the store gathering buffers absorb
//! them). Loads that miss allocate an MSHR; loads to an already-outstanding
//! line merge into the existing MSHR (secondary miss). The number of
//! outstanding line fetches toward the L2 is additionally capped by the
//! load-miss-queue depth, which models the 970's LMQ (the structure whose
//! limited depth keeps a single thread from saturating many banks —
//! Figure 5's discussion).

use vpc_capacity::{TagSet, TrueLru};
use vpc_sim::{Counter, Cycle, LineAddr, ThreadId};

use crate::config::L1Config;

/// Outcome of a load lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1LoadResult {
    /// Hit: data available at the given cycle.
    Hit {
        /// Cycle the data is available to the core.
        ready_at: Cycle,
    },
    /// Primary miss: an MSHR was allocated; the caller must send an L2 read
    /// for the line.
    MissPrimary,
    /// Secondary miss: merged into an existing MSHR; no new L2 request.
    MissSecondary,
    /// No MSHR/LMQ capacity; the load cannot issue this cycle.
    Blocked,
}

#[derive(Debug)]
struct Mshr {
    line: LineAddr,
    tokens: Vec<u64>,
}

/// L1 hit/miss counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Stats {
    /// Load hits.
    pub load_hits: Counter,
    /// Load misses (primary + secondary).
    pub load_misses: Counter,
    /// Store hits (line updated in place).
    pub store_hits: Counter,
    /// Store misses (write-through, no allocate).
    pub store_misses: Counter,
}

/// A private, write-through L1 data cache.
#[derive(Debug)]
pub struct L1Cache {
    cfg: L1Config,
    thread: ThreadId,
    sets: Vec<TagSet>,
    mshrs: Vec<Mshr>,
    stats: L1Stats,
}

impl L1Cache {
    /// Creates an empty L1 for `thread`.
    pub fn new(cfg: L1Config, thread: ThreadId) -> L1Cache {
        L1Cache {
            sets: (0..cfg.sets).map(|_| TagSet::new(cfg.ways)).collect(),
            mshrs: Vec::new(),
            stats: L1Stats::default(),
            cfg,
            thread,
        }
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 % self.cfg.sets as u64) as usize
    }

    /// Looks up a load for `line`. On [`L1LoadResult::MissPrimary`] the
    /// caller must issue an L2 read; the load's `token` completes when
    /// [`L1Cache::on_fill`] later returns it.
    pub fn access_load(&mut self, line: LineAddr, token: u64, now: Cycle) -> L1LoadResult {
        let set = self.set_of(line);
        if let Some(way) = self.sets[set].lookup(line) {
            self.sets[set].touch(way, now);
            self.stats.load_hits.inc();
            return L1LoadResult::Hit { ready_at: now + self.cfg.latency };
        }
        if let Some(mshr) = self.mshrs.iter_mut().find(|m| m.line == line) {
            self.stats.load_misses.inc();
            mshr.tokens.push(token);
            return L1LoadResult::MissSecondary;
        }
        if self.mshrs.len() >= self.cfg.mshrs.min(self.cfg.lmq_entries) {
            return L1LoadResult::Blocked;
        }
        self.stats.load_misses.inc();
        self.mshrs.push(Mshr { line, tokens: vec![token] });
        L1LoadResult::MissPrimary
    }

    /// Applies a store: write-through, no-write-allocate. Returns `true`
    /// on an L1 hit (the line is updated in place either way the store is
    /// forwarded to the L2 by the caller).
    pub fn access_store(&mut self, line: LineAddr, now: Cycle) -> bool {
        let set = self.set_of(line);
        if let Some(way) = self.sets[set].lookup(line) {
            self.sets[set].touch(way, now);
            self.stats.store_hits.inc();
            true
        } else {
            self.stats.store_misses.inc();
            false
        }
    }

    /// Completes a fill for `line`: installs it and returns the tokens of
    /// every load waiting on it.
    ///
    /// # Panics
    ///
    /// Panics if `line` has no outstanding MSHR.
    pub fn on_fill(&mut self, line: LineAddr, now: Cycle) -> Vec<u64> {
        let idx = self
            .mshrs
            .iter()
            .position(|m| m.line == line)
            .expect("fill matches an outstanding MSHR");
        let mshr = self.mshrs.swap_remove(idx);
        let set = self.set_of(line);
        let way = self.sets[set].find_way_for(line, self.thread, &TrueLru);
        self.sets[set].fill(way, line, self.thread, now);
        mshr.tokens
    }

    /// Outstanding line fetches.
    pub fn outstanding_misses(&self) -> usize {
        self.mshrs.len()
    }

    /// Whether an MSHR already covers `line` (a load to it merges as a
    /// secondary miss).
    pub fn has_mshr(&self, line: LineAddr) -> bool {
        self.mshrs.iter().any(|m| m.line == line)
    }

    /// Whether a new primary miss can allocate (MSHR and LMQ capacity).
    pub fn can_allocate_miss(&self) -> bool {
        self.mshrs.len() < self.cfg.mshrs.min(self.cfg.lmq_entries)
    }

    /// Whether a *prefetch* can allocate: prefetch engines have their own
    /// stream registers, so prefetches may use the MSHRs beyond the
    /// demand-load LMQ limit (up to the full MSHR pool).
    pub fn can_allocate_prefetch(&self) -> bool {
        self.mshrs.len() < self.cfg.mshrs
    }

    /// Allocates a prefetch MSHR for `line` (no waiting instruction; the
    /// fill simply installs the line). The caller must have checked
    /// [`L1Cache::probe`], [`L1Cache::has_mshr`] and
    /// [`L1Cache::can_allocate_prefetch`].
    ///
    /// # Panics
    ///
    /// Panics if the line is already outstanding or no MSHR is free.
    pub fn allocate_prefetch(&mut self, line: LineAddr) {
        assert!(!self.has_mshr(line), "prefetch line already outstanding");
        assert!(self.can_allocate_prefetch(), "no MSHR free for prefetch");
        self.mshrs.push(Mshr { line, tokens: Vec::new() });
    }

    /// Whether `line` is resident.
    pub fn probe(&self, line: LineAddr) -> bool {
        self.sets[self.set_of(line)].lookup(line).is_some()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> L1Stats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(L1Config::table1(), ThreadId(0))
    }

    #[test]
    fn load_miss_fill_hit() {
        let mut c = l1();
        assert_eq!(c.access_load(LineAddr(5), 1, 0), L1LoadResult::MissPrimary);
        assert_eq!(c.outstanding_misses(), 1);
        let tokens = c.on_fill(LineAddr(5), 10);
        assert_eq!(tokens, vec![1]);
        assert_eq!(c.access_load(LineAddr(5), 2, 20), L1LoadResult::Hit { ready_at: 22 });
        assert_eq!(c.stats().load_hits.get(), 1);
        assert_eq!(c.stats().load_misses.get(), 1);
    }

    #[test]
    fn secondary_misses_merge() {
        let mut c = l1();
        assert_eq!(c.access_load(LineAddr(5), 1, 0), L1LoadResult::MissPrimary);
        assert_eq!(c.access_load(LineAddr(5), 2, 1), L1LoadResult::MissSecondary);
        assert_eq!(c.outstanding_misses(), 1, "one MSHR covers both");
        let mut tokens = c.on_fill(LineAddr(5), 10);
        tokens.sort_unstable();
        assert_eq!(tokens, vec![1, 2]);
    }

    #[test]
    fn lmq_depth_blocks_new_primaries() {
        let mut c = l1();
        let lmq = L1Config::table1().lmq_entries;
        for i in 0..lmq as u64 {
            assert_eq!(c.access_load(LineAddr(i), i, 0), L1LoadResult::MissPrimary);
        }
        assert_eq!(c.access_load(LineAddr(999), 99, 0), L1LoadResult::Blocked);
        // Secondary merges still allowed.
        assert_eq!(c.access_load(LineAddr(0), 100, 0), L1LoadResult::MissSecondary);
    }

    #[test]
    fn stores_write_through_without_allocate() {
        let mut c = l1();
        assert!(!c.access_store(LineAddr(5), 0), "store miss does not allocate");
        assert!(!c.probe(LineAddr(5)));
        c.access_load(LineAddr(5), 1, 0);
        c.on_fill(LineAddr(5), 5);
        assert!(c.access_store(LineAddr(5), 10), "store hit updates in place");
        assert_eq!(c.stats().store_hits.get(), 1);
        assert_eq!(c.stats().store_misses.get(), 1);
    }

    #[test]
    fn prefetch_mshrs_extend_past_lmq() {
        let mut c = l1();
        let cfg = L1Config::table1();
        for i in 0..cfg.lmq_entries as u64 {
            assert_eq!(c.access_load(LineAddr(i), i, 0), L1LoadResult::MissPrimary);
        }
        assert!(!c.can_allocate_miss(), "LMQ exhausted for demand loads");
        assert!(c.can_allocate_prefetch(), "prefetch stream registers remain");
        c.allocate_prefetch(LineAddr(100));
        assert!(c.has_mshr(LineAddr(100)));
        let tokens = c.on_fill(LineAddr(100), 10);
        assert!(tokens.is_empty(), "prefetch fill wakes nobody");
        assert!(c.probe(LineAddr(100)), "prefetched line is resident");
    }

    #[test]
    fn capacity_thrashing_evicts_lru() {
        let mut c = l1();
        let sets = L1Config::table1().sets as u64;
        // Fill one set's 4 ways plus one more; the LRU line is evicted.
        for i in 0..5u64 {
            c.access_load(LineAddr(i * sets), i, i);
            c.on_fill(LineAddr(i * sets), i);
        }
        assert!(!c.probe(LineAddr(0)), "LRU line evicted");
        assert!(c.probe(LineAddr(4 * sets)));
    }
}
