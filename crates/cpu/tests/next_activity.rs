//! The quiescence contract for [`Core`]: a core + L2 pair advanced with
//! the skip protocol — jump to the minimum of `Core::next_activity` and
//! `SharedL2::next_activity`, crediting skipped stall cycles via
//! [`Core::fast_forward`] — ends in exactly the state of a pair ticked
//! every cycle: same retirement, same stall counters, same `Debug`
//! rendering of both the core and the L2.

use vpc_arbiters::ArbiterPolicy;
use vpc_cache::{L2Config, SharedL2};
use vpc_cpu::{Core, CoreConfig, FixedTrace, Op};
use vpc_mem::MemConfig;
use vpc_sim::check::{self, Config};
use vpc_sim::{ensure_eq, Cycle, LineAddr, SplitMix64, ThreadId};

fn random_trace(rng: &mut SplitMix64, len: usize) -> FixedTrace {
    let mut ops: Vec<Op> = (0..len)
        .map(|_| match rng.below(10) {
            0..=3 => Op::NonMem,
            4..=6 => Op::Load(LineAddr(rng.below(96))),
            7..=8 => Op::Store(LineAddr(rng.below(96))),
            _ => Op::Bubble(1 + rng.below(4) as u8),
        })
        .collect();
    ops.push(Op::NonMem);
    FixedTrace::new("random", ops)
}

fn build(trace: FixedTrace) -> (Core, SharedL2) {
    let core = Core::new(CoreConfig::table1(), ThreadId(0), Box::new(trace));
    let mut cfg = L2Config::table1(1, ArbiterPolicy::RowFcfs);
    cfg.total_sets = 128;
    (core, SharedL2::new(cfg, MemConfig::ddr2_800()))
}

/// Dense (every-cycle) and sparse (skip-to-next-activity) advancement of
/// the same core + L2 pair must be indistinguishable.
#[test]
fn fast_forward_matches_dense_ticking() {
    check::forall("fast_forward_matches_dense_ticking", Config::cases(16), |rng| {
        let trace = random_trace(rng, 64);
        let end: Cycle = 30_000;

        let (mut dense_core, mut dense_l2) = build(trace.clone());
        for now in 0..end {
            dense_core.tick(now, &mut dense_l2);
            dense_l2.tick(now);
            while let Some(resp) = dense_l2.pop_response(now) {
                dense_core.on_l2_response(resp.line, now);
            }
        }

        let (mut sparse_core, mut sparse_l2) = build(trace);
        let mut now: Cycle = 0;
        while now < end {
            sparse_core.tick(now, &mut sparse_l2);
            sparse_l2.tick(now);
            while let Some(resp) = sparse_l2.pop_response(now) {
                sparse_core.on_l2_response(resp.line, now);
            }
            let mut na = sparse_l2.next_activity(now);
            if let Some(c) = sparse_core.next_activity(now, &sparse_l2) {
                na = Some(na.map_or(c, |b| b.min(c)));
            }
            let target = na.unwrap_or(end).clamp(now + 1, end);
            if target > now + 1 {
                sparse_core.fast_forward(now, target);
            }
            now = target;
        }

        ensure_eq!(dense_core.retired(), sparse_core.retired(), "retirement diverged");
        ensure_eq!(format!("{dense_core:?}"), format!("{sparse_core:?}"), "core state diverged");
        ensure_eq!(format!("{dense_l2:?}"), format!("{sparse_l2:?}"), "L2 state diverged");
        Ok(())
    });
}
