//! The canonical figure-benchmark scenario list, shared by
//! `bench_figures` (which records the `BENCH_*.json` baselines) and
//! `perf_smoke` (which re-runs the same scenarios in quick mode and
//! compares against a recorded baseline). Keeping one definition ensures
//! the two binaries always measure the same thing under the same names.

use std::hint::black_box;

use vpc::experiments::{ablations, fig10, fig4, fig5, fig6, fig7, fig8, fig9, RunBudget};
use vpc::prelude::*;

use crate::harness::Suite;

fn small_base() -> CmpConfig {
    let mut cfg = CmpConfig::table1();
    cfg.l2.total_sets = 1024;
    cfg
}

fn tiny() -> RunBudget {
    RunBudget { warmup: 4_000, window: 12_000 }
}

/// Runs every figure scenario into `suite`, in the order the checked-in
/// baselines list them.
pub fn figures(suite: &mut Suite) {
    let base = small_base();

    suite.bench("fig4_bank_timing", 100, || black_box(fig4::run(&base)));
    suite.bench("fig5_micro_utilization", 30, || black_box(fig5::run(&base, tiny())));
    // One representative benchmark per weight class keeps the bench quick.
    suite.bench("fig6_spec_utilization", 30, || {
        for name in ["art", "gcc", "sixtrack"] {
            black_box(fig6::run_one(&base, name, tiny()));
        }
    });
    suite.bench("fig7_store_gathering", 30, || {
        let mut cfg = base.clone();
        cfg.processors = 1;
        cfg.l2.threads = 1;
        let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Spec("mesa")]);
        black_box(sys.run_measured(tiny().warmup, tiny().window).gathering_rate[0])
    });
    // The full 18-benchmark table:
    suite.bench("fig7_full/all_benchmarks", 10, || black_box(fig7::run(&base, tiny())));
    suite.bench("fig8/loads_stores_sweep", 10, || black_box(fig8::run(&base, tiny())));
    suite.bench("fig9/subject_vs_stores", 10, || black_box(fig9::run(&base, &["gcc"], tiny())));
    suite.bench("fig10/heterogeneous_mix", 10, || {
        black_box(fig10::run(&base, &[["gcc", "gzip", "twolf", "ammp"]], tiny()))
    });
    suite.bench("ablations/work_conservation", 10, || {
        black_box(ablations::work_conservation(&base, tiny()))
    });
}
