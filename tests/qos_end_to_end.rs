//! End-to-end QoS tests spanning every crate: cores + caches + arbiters +
//! capacity manager + memory, checking the paper's central claims on a
//! scaled-down (but structurally identical) configuration.

use vpc::experiments::RunBudget;
use vpc::prelude::*;

fn quick_base(threads: usize) -> CmpConfig {
    let mut cfg = CmpConfig::table1_with_threads(threads);
    cfg.l2.total_sets = 2048; // 4 MB: keeps test time low, same structure
    cfg
}

fn run_pair(cfg: CmpConfig, budget: RunBudget) -> Vec<f64> {
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Stores]);
    sys.run_measured(budget.warmup, budget.window).ipc
}

#[test]
fn row_fcfs_starves_stores_end_to_end() {
    // §5.3: "the Loads benchmark prevents the Stores benchmark from
    // receiving any cache bandwidth ... a critical design flaw."
    let budget = RunBudget::quick();
    let ipc = run_pair(quick_base(2).with_arbiter(ArbiterPolicy::RowFcfs), budget);
    assert!(ipc[0] > 0.2, "Loads runs at speed: {:?}", ipc);
    assert!(ipc[1] < 0.01, "Stores is starved: {:?}", ipc);
}

#[test]
fn fcfs_splits_data_array_two_to_one_for_stores() {
    // §5.3: uniform interleaving gives Stores 67% of the data array
    // because writes cost two accesses; IPC ratio ~2:1 in Stores' favor.
    let budget = RunBudget::quick();
    let ipc = run_pair(quick_base(2).with_arbiter(ArbiterPolicy::Fcfs), budget);
    let ratio = ipc[1] / ipc[0];
    assert!(
        (1.5..=2.5).contains(&ratio),
        "stores/loads IPC ratio {ratio:.2} should be ~2 under FCFS: {ipc:?}"
    );
}

#[test]
fn vpc_divides_bandwidth_precisely_across_allocations() {
    // Figure 8: "All five VPC arbiters precisely provide each benchmark its
    // share of the cache bandwidth over a broad range of allocations."
    let budget = RunBudget::quick();
    let mut loads_prev = f64::INFINITY;
    let mut stores_prev = 0.0;
    for stores_pct in [25u32, 50, 75] {
        let shares = vec![
            Share::from_percent(100 - stores_pct).unwrap(),
            Share::from_percent(stores_pct).unwrap(),
        ];
        let ipc = run_pair(quick_base(2).with_vpc_shares(shares), budget);
        assert!(ipc[0] < loads_prev, "Loads IPC decreases as its share shrinks");
        assert!(ipc[1] > stores_prev, "Stores IPC increases with its share");
        loads_prev = ipc[0];
        stores_prev = ipc[1];
    }
}

#[test]
fn vpc_meets_private_machine_targets() {
    // The QoS objective: a VPC performs at least as well as a real private
    // machine with the same resources.
    let budget = RunBudget::quick();
    let base = quick_base(2);
    let half = Share::new(1, 2).unwrap();
    let ipc = run_pair(base.clone().with_vpc_shares(vec![half, half]), budget);
    for (i, spec) in [WorkloadSpec::Loads, WorkloadSpec::Stores].iter().enumerate() {
        let target = target_ipc(&base, *spec, half, half, budget.warmup, budget.window);
        assert!(
            ipc[i] >= target * 0.9,
            "{} IPC {:.3} below target {:.3}",
            spec.name(),
            ipc[i],
            target
        );
    }
}

#[test]
fn excess_bandwidth_is_work_conserved() {
    // A thread whose partner is idle receives the partner's unused
    // bandwidth on top of its own guarantee.
    let budget = RunBudget::quick();
    let half = Share::new(1, 2).unwrap();
    let cfg = quick_base(2).with_vpc_shares(vec![half, half]);
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Idle]);
    let m = sys.run_measured(budget.warmup, budget.window);
    let base = quick_base(2);
    let guarantee =
        target_ipc(&base, WorkloadSpec::Loads, half, half, budget.warmup, budget.window);
    assert!(
        m.ipc[0] > guarantee * 1.5,
        "idle partner's bandwidth should flow to Loads: IPC {:.3} vs guarantee {:.3}",
        m.ipc[0],
        guarantee
    );
}

#[test]
fn zero_share_thread_survives_only_on_excess() {
    // Figure 8's "VPC 0%": the zero-share Stores thread is starved while
    // Loads consumes everything, but nothing deadlocks.
    let budget = RunBudget::quick();
    let shares = vec![Share::FULL, Share::ZERO];
    let ipc = run_pair(quick_base(2).with_vpc_shares(shares), budget);
    assert!(ipc[0] > 0.2, "full-share Loads runs at speed");
    assert!(ipc[1] < ipc[0] * 0.1, "zero-share Stores gets only scraps: {ipc:?}");
}

#[test]
fn four_thread_system_meets_equal_share_targets() {
    // The full Table 1 configuration with four SPEC threads under equal
    // VPC shares: every thread meets its beta = alpha = 1/4 target.
    let budget = RunBudget::quick();
    let base = quick_base(4);
    let cfg = base.clone().with_arbiter(ArbiterPolicy::vpc_equal(4));
    let mix = ["art", "mcf", "gcc", "gzip"];
    let workloads: Vec<WorkloadSpec> = mix.iter().map(|b| WorkloadSpec::Spec(b)).collect();
    let mut sys = CmpSystem::new(cfg, &workloads);
    let m = sys.run_measured(budget.warmup, budget.window);
    let quarter = Share::new(1, 4).unwrap();
    for (i, b) in mix.iter().enumerate() {
        let target = target_ipc(
            &base,
            WorkloadSpec::Spec(b),
            quarter,
            quarter,
            budget.warmup,
            budget.window,
        );
        assert!(
            m.ipc[i] >= target * 0.9,
            "{b}: shared IPC {:.3} below equal-share target {:.3}",
            m.ipc[i],
            target
        );
    }
}
