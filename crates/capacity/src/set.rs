//! A set-associative cache set with per-line ownership and recency.

use vpc_sim::{Cycle, LineAddr, ThreadId};

use crate::policy::ReplacementPolicy;

/// One way of a cache set: the resident line, the thread that owns it, its
/// last-touch time (for LRU), and its dirty bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Way {
    /// Resident line address.
    pub line: LineAddr,
    /// Thread that most recently brought in / wrote the line. The capacity
    /// manager's quotas are enforced against this ownership.
    pub owner: ThreadId,
    /// Last access time, for LRU ordering.
    pub last_touch: Cycle,
    /// Whether the line holds data newer than memory.
    pub dirty: bool,
}

/// The line displaced by a fill, if the victim way was valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Displaced line.
    pub line: LineAddr,
    /// Owner at eviction time.
    pub owner: ThreadId,
    /// Whether the line must be written back to memory.
    pub dirty: bool,
}

/// One set of a set-associative cache.
///
/// The set stores per-way state; *which* way to victimize on a fill is
/// delegated to a [`ReplacementPolicy`] (invalid ways are always used
/// first).
#[derive(Debug, Clone)]
pub struct TagSet {
    ways: Vec<Option<Way>>,
}

impl TagSet {
    /// Creates an empty set with `associativity` ways.
    ///
    /// # Panics
    ///
    /// Panics if `associativity` is zero.
    pub fn new(associativity: usize) -> TagSet {
        assert!(associativity > 0, "associativity must be positive");
        TagSet { ways: vec![None; associativity] }
    }

    /// Number of ways in the set.
    pub fn associativity(&self) -> usize {
        self.ways.len()
    }

    /// Finds the way holding `line`, if resident.
    pub fn lookup(&self, line: LineAddr) -> Option<usize> {
        self.ways.iter().position(|w| w.is_some_and(|w| w.line == line))
    }

    /// Marks way `way` as touched at `now` (moves it to MRU position).
    ///
    /// # Panics
    ///
    /// Panics if the way is invalid.
    pub fn touch(&mut self, way: usize, now: Cycle) {
        let w = self.ways[way].as_mut().expect("touched way must be valid");
        w.last_touch = now;
    }

    /// Marks way `way` dirty (a store hit).
    ///
    /// # Panics
    ///
    /// Panics if the way is invalid.
    pub fn mark_dirty(&mut self, way: usize) {
        self.ways[way].as_mut().expect("dirtied way must be valid").dirty = true;
    }

    /// Chooses the way a fill by `requester` for `line` should use: the
    /// first invalid way if any, otherwise the policy's victim.
    pub fn find_way_for<P: ReplacementPolicy + ?Sized>(
        &self,
        _line: LineAddr,
        requester: ThreadId,
        policy: &P,
    ) -> usize {
        if let Some(idx) = self.ways.iter().position(Option::is_none) {
            return idx;
        }
        let victim = policy.choose_victim(self, requester);
        assert!(victim < self.ways.len(), "policy returned way out of range");
        victim
    }

    /// Installs `line` (owned by `owner`, clean) into `way`, returning the
    /// displaced line if the way was valid.
    pub fn fill(
        &mut self,
        way: usize,
        line: LineAddr,
        owner: ThreadId,
        now: Cycle,
    ) -> Option<Eviction> {
        let evicted =
            self.ways[way].map(|w| Eviction { line: w.line, owner: w.owner, dirty: w.dirty });
        self.ways[way] = Some(Way { line, owner, last_touch: now, dirty: false });
        evicted
    }

    /// Invalidates way `way` (used by tests and flush paths).
    pub fn invalidate(&mut self, way: usize) -> Option<Eviction> {
        self.ways[way].take().map(|w| Eviction { line: w.line, owner: w.owner, dirty: w.dirty })
    }

    /// The owner of way `way`, if valid.
    pub fn owner(&self, way: usize) -> Option<ThreadId> {
        self.ways[way].map(|w| w.owner)
    }

    /// Iterates over `(way_index, &Way)` for all valid ways.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Way)> {
        self.ways.iter().enumerate().filter_map(|(i, w)| w.as_ref().map(|w| (i, w)))
    }

    /// How many valid ways `thread` owns in this set.
    pub fn occupancy(&self, thread: ThreadId) -> usize {
        self.iter().filter(|(_, w)| w.owner == thread).count()
    }

    /// Number of valid ways.
    pub fn valid_count(&self) -> usize {
        self.ways.iter().filter(|w| w.is_some()).count()
    }

    /// The LRU way among valid ways owned by `thread`, if any.
    pub fn lru_of_thread(&self, thread: ThreadId) -> Option<usize> {
        self.iter()
            .filter(|(_, w)| w.owner == thread)
            .min_by_key(|(_, w)| w.last_touch)
            .map(|(i, _)| i)
    }

    /// The globally LRU valid way, if any way is valid.
    pub fn lru_way(&self) -> Option<usize> {
        self.iter().min_by_key(|(_, w)| w.last_touch).map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TrueLru;

    #[test]
    fn lookup_and_touch() {
        let mut set = TagSet::new(2);
        assert_eq!(set.lookup(LineAddr(1)), None);
        set.fill(0, LineAddr(1), ThreadId(0), 10);
        assert_eq!(set.lookup(LineAddr(1)), Some(0));
        set.touch(0, 20);
        assert_eq!(set.iter().next().unwrap().1.last_touch, 20);
    }

    #[test]
    fn fill_prefers_invalid_ways() {
        let set = {
            let mut s = TagSet::new(4);
            s.fill(0, LineAddr(1), ThreadId(0), 0);
            s
        };
        let way = set.find_way_for(LineAddr(2), ThreadId(0), &TrueLru);
        assert_eq!(way, 1, "first invalid way used before any eviction");
    }

    #[test]
    fn fill_reports_eviction() {
        let mut set = TagSet::new(1);
        assert!(set.fill(0, LineAddr(1), ThreadId(0), 0).is_none());
        set.mark_dirty(0);
        let ev = set.fill(0, LineAddr(2), ThreadId(1), 1).unwrap();
        assert_eq!(ev.line, LineAddr(1));
        assert_eq!(ev.owner, ThreadId(0));
        assert!(ev.dirty);
    }

    #[test]
    fn occupancy_counts_per_thread() {
        let mut set = TagSet::new(4);
        set.fill(0, LineAddr(1), ThreadId(0), 0);
        set.fill(1, LineAddr(2), ThreadId(0), 1);
        set.fill(2, LineAddr(3), ThreadId(1), 2);
        assert_eq!(set.occupancy(ThreadId(0)), 2);
        assert_eq!(set.occupancy(ThreadId(1)), 1);
        assert_eq!(set.occupancy(ThreadId(2)), 0);
        assert_eq!(set.valid_count(), 3);
    }

    #[test]
    fn lru_helpers() {
        let mut set = TagSet::new(3);
        set.fill(0, LineAddr(1), ThreadId(0), 5);
        set.fill(1, LineAddr(2), ThreadId(0), 3);
        set.fill(2, LineAddr(3), ThreadId(1), 1);
        assert_eq!(set.lru_way(), Some(2));
        assert_eq!(set.lru_of_thread(ThreadId(0)), Some(1));
        assert_eq!(set.lru_of_thread(ThreadId(2)), None);
    }

    #[test]
    fn invalidate_clears_way() {
        let mut set = TagSet::new(2);
        set.fill(0, LineAddr(1), ThreadId(0), 0);
        let ev = set.invalidate(0).unwrap();
        assert_eq!(ev.line, LineAddr(1));
        assert_eq!(set.valid_count(), 0);
        assert!(set.invalidate(0).is_none());
    }
}

#[cfg(test)]
mod inclusion_tests {
    use super::*;
    use crate::policy::TrueLru;
    use vpc_sim::check::{self, gen, Config};
    use vpc_sim::ensure;

    /// Runs an access trace through an LRU set of the given associativity
    /// and returns, per access, whether it hit.
    fn run_lru(trace: &[u64], ways: usize) -> Vec<bool> {
        let mut set = TagSet::new(ways);
        let mut hits = Vec::with_capacity(trace.len());
        for (now, &line) in trace.iter().enumerate() {
            let line = LineAddr(line);
            match set.lookup(line) {
                Some(way) => {
                    set.touch(way, now as u64);
                    hits.push(true);
                }
                None => {
                    let way = set.find_way_for(line, ThreadId(0), &TrueLru);
                    set.fill(way, line, ThreadId(0), now as u64);
                    hits.push(false);
                }
            }
        }
        hits
    }

    /// The classic LRU stack (inclusion) property: every hit in a
    /// k-way set is also a hit in a 2k-way set on the same trace —
    /// the property that makes way partitioning performance-monotone
    /// (paper §4.3).
    #[test]
    fn lru_inclusion_property() {
        check::forall("lru_inclusion_property", Config::cases(256), |rng| {
            let ways = gen::range(rng, 1, 8) as usize;
            let trace: Vec<u64> = (0..400).map(|_| rng.below(24)).collect();
            let small = run_lru(&trace, ways);
            let large = run_lru(&trace, ways * 2);
            for (i, (&s, &l)) in small.iter().zip(large.iter()).enumerate() {
                ensure!(!s || l, "access {i}: hit in {ways}-way but miss in {}-way", ways * 2);
            }
            Ok(())
        });
    }
}
