//! Core simulation types: cycles, threads, addresses, and the cache protocol.

use std::fmt;

/// A point in simulated time, measured in processor cycles (2 GHz in the
/// paper's Table 1 configuration).
pub type Cycle = u64;

/// A byte address in the simulated physical address space.
pub type Addr = u64;

/// A cache-line address: a byte address with the line offset stripped.
///
/// Line addresses are what the store-gathering buffers, cache tags, and
/// memory controller operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Returns the [`LineAddr`] containing byte address `addr` for a cache with
/// `line_bytes` bytes per line.
///
/// # Panics
///
/// Panics if `line_bytes` is not a power of two.
///
/// ```
/// use vpc_sim::{line_of, LineAddr};
/// assert_eq!(line_of(0x1234, 64), LineAddr(0x48));
/// ```
pub fn line_of(addr: Addr, line_bytes: u64) -> LineAddr {
    assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
    LineAddr(addr >> line_bytes.trailing_zeros())
}

/// Maximum number of hardware threads / processors the fixed-size per-thread
/// structures are dimensioned for.
pub const MAX_THREADS: usize = 8;

/// Identifies one hardware thread (equivalently, one processor — the paper's
/// configuration runs one thread per processor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// The thread's index, for indexing per-thread tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the first `n` thread ids.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_THREADS`.
    pub fn first_n(n: usize) -> impl Iterator<Item = ThreadId> {
        assert!(n <= MAX_THREADS, "at most {MAX_THREADS} threads supported");
        (0..n as u8).map(ThreadId)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Whether an access reads or writes the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load (L1 read miss reaching the L2).
    Read,
    /// A store (write-through traffic reaching the L2, after gathering).
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

/// A request sent from a core's L1 miss path (or store-retire path) into the
/// shared L2 cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheRequest {
    /// Issuing thread.
    pub thread: ThreadId,
    /// Line being accessed.
    pub line: LineAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Opaque token the core uses to match the eventual [`CacheResponse`].
    /// Writes are posted (write-through + store gathering) and never answered.
    pub token: u64,
}

/// A completed read returning from the L2 (or memory through the L2) to a
/// core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheResponse {
    /// Thread the data belongs to.
    pub thread: ThreadId,
    /// Line whose critical word has arrived.
    pub line: LineAddr,
    /// Token from the originating [`CacheRequest`].
    pub token: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_strips_offset() {
        assert_eq!(line_of(0, 64), LineAddr(0));
        assert_eq!(line_of(63, 64), LineAddr(0));
        assert_eq!(line_of(64, 64), LineAddr(1));
        assert_eq!(line_of(0xFFFF, 128), LineAddr(0x1FF));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn line_of_rejects_non_power_of_two() {
        let _ = line_of(0, 48);
    }

    #[test]
    fn thread_id_iteration() {
        let ids: Vec<_> = ThreadId::first_n(4).collect();
        assert_eq!(ids, vec![ThreadId(0), ThreadId(1), ThreadId(2), ThreadId(3)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ThreadId(2).to_string(), "T2");
        assert_eq!(LineAddr(0x40).to_string(), "L0x40");
    }

    #[test]
    fn access_kind_predicates() {
        assert!(AccessKind::Read.is_read());
        assert!(!AccessKind::Write.is_read());
    }
}
