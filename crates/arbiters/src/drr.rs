//! Deficit round robin: an alternative QoS arbiter.
//!
//! The paper (§4.1.3) notes that the fairness policy "can be any policy
//! that distributes excess bandwidth" and defers a detailed comparison of
//! fairness policies to future work. [`DrrArbiter`] is the classic
//! quantum-based alternative: each thread holds a deficit counter topped up
//! with a share-proportional quantum each round; a thread may service
//! requests while its deficit covers their service time. DRR is O(1) per
//! grant (no virtual-time comparison), but its service granularity is the
//! *round*, so short-term latency guarantees are coarser than the VPC
//! arbiter's earliest-virtual-finish-first policy — which is exactly the
//! trade-off the fairness-policy ablation measures.

use std::collections::VecDeque;

use vpc_sim::{Cycle, Share, ThreadId};

use crate::arbiter::Arbiter;
use crate::request::ArbRequest;

/// Base quantum (cycles of service) corresponding to a full share per
/// round; a thread with share `p/q` receives `QUANTUM * p / q` per round.
const QUANTUM: u64 = 64;

#[derive(Debug)]
struct DrrThread {
    queue: VecDeque<ArbRequest>,
    deficit: u64,
    share: Share,
}

/// A deficit-round-robin arbiter with share-proportional quanta.
#[derive(Debug)]
pub struct DrrArbiter {
    threads: Vec<DrrThread>,
    active: usize,
    pending: usize,
}

impl DrrArbiter {
    /// Creates an arbiter for `num_threads` threads, all with zero share
    /// (configure with [`DrrArbiter::set_share`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> DrrArbiter {
        assert!(num_threads > 0, "at least one thread required");
        DrrArbiter {
            threads: (0..num_threads)
                .map(|_| DrrThread { queue: VecDeque::new(), deficit: 0, share: Share::ZERO })
                .collect(),
            active: 0,
            pending: 0,
        }
    }

    /// Creates an arbiter with equal shares.
    pub fn equal(num_threads: usize) -> DrrArbiter {
        let mut arb = DrrArbiter::new(num_threads);
        let share = Share::new(1, num_threads as u32).expect("1/threads is a valid share");
        for t in 0..num_threads {
            arb.set_share(ThreadId(t as u8), share);
        }
        arb
    }

    /// Sets `thread`'s bandwidth share.
    pub fn set_share(&mut self, thread: ThreadId, share: Share) {
        self.threads[thread.index()].share = share;
    }

    fn quantum_of(&self, t: usize) -> u64 {
        let s = self.threads[t].share;
        (QUANTUM * u64::from(s.numer())) / u64::from(s.denom().max(1))
    }
}

impl Arbiter for DrrArbiter {
    fn enqueue(&mut self, mut req: ArbRequest, now: Cycle) {
        req.arrival = now;
        self.threads[req.thread.index()].queue.push_back(req);
        self.pending += 1;
    }

    fn select(&mut self, _now: Cycle) -> Option<ArbRequest> {
        if self.pending == 0 {
            return None;
        }
        let n = self.threads.len();
        // Round-robin over threads: top up the deficit when visiting a
        // backlogged thread; serve if the deficit covers the head request.
        // Two sweeps bound the search (a full empty sweep tops everyone up).
        for _ in 0..2 * n {
            let t = self.active;
            if self.threads[t].queue.is_empty() {
                self.threads[t].deficit = 0; // idle threads keep no credit
                self.active = (t + 1) % n;
                continue;
            }
            let head_cost = self.threads[t].queue.front().expect("non-empty").service_time;
            if self.threads[t].deficit >= head_cost {
                self.threads[t].deficit -= head_cost;
                self.pending -= 1;
                return self.threads[t].queue.pop_front();
            }
            // Not enough deficit: top up and move on.
            self.threads[t].deficit += self.quantum_of(t).max(1);
            self.active = (t + 1) % n;
        }
        // All shares zero (or pathological quanta): fall back to oldest.
        let t = (0..n)
            .filter(|&t| !self.threads[t].queue.is_empty())
            .min_by_key(|&t| self.threads[t].queue.front().expect("non-empty").arrival)?;
        self.pending -= 1;
        self.threads[t].queue.pop_front()
    }

    fn len(&self) -> usize {
        self.pending
    }

    fn reconfigure_share(&mut self, thread: ThreadId, share: Share) -> bool {
        self.set_share(thread, share);
        true
    }

    fn backlogged_threads(&self, out: &mut Vec<(ThreadId, Option<u64>)>) {
        // DRR keeps no virtual clock — deficit credit is not a virtual
        // time — so backlogged threads report without one.
        out.extend(
            self.threads
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.queue.is_empty())
                .map(|(t, _)| (ThreadId(t as u8), None)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::AccessKind;

    fn read(id: u64, t: u8, service: u64) -> ArbRequest {
        ArbRequest::new(id, ThreadId(t), AccessKind::Read, service)
    }

    fn grant_split(arb: &mut DrrArbiter, rounds: usize, services: [u64; 2]) -> [u64; 2] {
        let mut id = 0;
        let mut served = [0u64; 2];
        let mut now = 0;
        for _ in 0..rounds {
            for t in 0..2u8 {
                while arb.threads[t as usize].queue.len() < 2 {
                    id += 1;
                    arb.enqueue(read(id, t, services[t as usize]), now);
                }
            }
            let g = arb.select(now).expect("backlogged");
            served[g.thread.index()] += g.service_time;
            now += g.service_time;
        }
        served
    }

    #[test]
    fn equal_shares_split_service_evenly() {
        let mut arb = DrrArbiter::equal(2);
        let served = grant_split(&mut arb, 2000, [8, 8]);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((0.9..1.1).contains(&ratio), "equal split expected, got {ratio}");
    }

    #[test]
    fn proportional_shares_split_service_proportionally() {
        let mut arb = DrrArbiter::new(2);
        arb.set_share(ThreadId(0), Share::new(3, 4).unwrap());
        arb.set_share(ThreadId(1), Share::new(1, 4).unwrap());
        let served = grant_split(&mut arb, 2000, [8, 8]);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((2.5..3.5).contains(&ratio), "3:1 service split expected, got {ratio}");
    }

    #[test]
    fn double_cost_requests_charge_double() {
        // Service (not request count) is what DRR divides: with equal
        // shares, a 16-cycle-write thread gets half the *grants* of an
        // 8-cycle-read thread.
        let mut arb = DrrArbiter::equal(2);
        let served = grant_split(&mut arb, 3000, [8, 16]);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((0.85..1.15).contains(&ratio), "equal service despite cost, got {ratio}");
    }

    #[test]
    fn idle_threads_accumulate_no_credit() {
        let mut arb = DrrArbiter::equal(2);
        // Thread 1 idles while thread 0 is served many times.
        for i in 0..50 {
            arb.enqueue(read(i, 0, 8), i);
            assert_eq!(arb.select(i).unwrap().thread, ThreadId(0));
        }
        // Thread 1 wakes: it must not burst past thread 0 on banked credit.
        for i in 0..8u64 {
            arb.enqueue(read(100 + i, 1, 8), 100);
            arb.enqueue(read(200 + i, 0, 8), 100);
        }
        let mut grants = [0u32; 2];
        for _ in 0..8 {
            grants[arb.select(100).unwrap().thread.index()] += 1;
        }
        assert!(grants[1] <= 5, "no banked-credit burst: {grants:?}");
    }

    #[test]
    fn zero_share_threads_fall_back_to_fcfs() {
        let mut arb = DrrArbiter::new(2); // both zero share
        arb.enqueue(read(1, 1, 8), 0);
        arb.enqueue(read(2, 0, 8), 1);
        assert_eq!(arb.select(1).unwrap().id, 1, "oldest request wins");
        assert_eq!(arb.select(1).unwrap().id, 2);
        assert!(arb.select(1).is_none());
    }
}
