//! One SDRAM channel: ranks × banks behind a shared data bus, closed page.

use vpc_sim::{AccessKind, Cycle, LineAddr, UtilizationMeter};

use crate::timing::MemConfig;

/// A transaction in flight inside a channel.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    /// When the full line has crossed the data bus (read) or been written.
    data_done: Cycle,
    token: u64,
    kind: AccessKind,
}

/// One DRAM channel with a closed-page policy.
///
/// Each transaction activates its bank, transfers one line over the shared
/// channel data bus, and precharges. Bank-level parallelism is modeled with
/// per-bank ready times; the data bus serializes transfers.
#[derive(Debug)]
pub struct DramChannel {
    config: MemConfig,
    /// Per-bank earliest next-ACT time.
    bank_ready: Vec<Cycle>,
    /// Earliest time the shared data bus is free.
    bus_free: Cycle,
    in_flight: Vec<InFlight>,
    bus_meter: UtilizationMeter,
    reads: u64,
    writes: u64,
    read_latency_sum: u64,
}

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(config: MemConfig) -> DramChannel {
        DramChannel {
            bank_ready: vec![0; config.total_banks()],
            bus_free: 0,
            in_flight: Vec::new(),
            bus_meter: UtilizationMeter::default(),
            reads: 0,
            writes: 0,
            read_latency_sum: 0,
            config,
        }
    }

    /// The bank (within this channel) a line maps to: low line-address bits,
    /// so consecutive lines hit different banks.
    pub fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 % self.config.total_banks() as u64) as usize
    }

    /// Whether `line`'s bank can accept a new activation at `now`.
    pub fn bank_available(&self, line: LineAddr, now: Cycle) -> bool {
        self.bank_ready[self.bank_of(line)] <= now
    }

    /// Issues a transaction at `now` (the caller has checked
    /// [`DramChannel::bank_available`]). Returns the cycle the data phase
    /// completes; for reads this is when the line is ready to return.
    pub fn issue(&mut self, line: LineAddr, kind: AccessKind, token: u64, now: Cycle) -> Cycle {
        let t = self.config.timing;
        let bank = self.bank_of(line);
        debug_assert!(self.bank_ready[bank] <= now, "bank re-activated too early");
        let act = now + self.config.controller_overhead;
        // Data may start after tRCD + tCL and once the shared bus frees.
        let data_start = (act + t.t_rcd + t.t_cl).max(self.bus_free);
        let data_done = data_start + t.burst;
        self.bus_free = data_done;
        self.bus_meter.add_busy(t.burst);
        // Closed page: precharge as soon as timing allows.
        let pre_start = match kind {
            AccessKind::Read => data_done.max(act + t.t_ras),
            AccessKind::Write => (data_done + t.t_wr).max(act + t.t_ras),
        };
        self.bank_ready[bank] = pre_start + t.t_rp;
        match kind {
            AccessKind::Read => {
                self.reads += 1;
                self.read_latency_sum += data_done - now;
            }
            AccessKind::Write => self.writes += 1,
        }
        self.in_flight.push(InFlight { data_done, token, kind });
        data_done
    }

    /// Removes and returns the tokens of all *read* transactions whose data
    /// completed by `now`. Completed writes are retired silently.
    pub fn drain_completed(&mut self, now: Cycle, out: &mut Vec<u64>) {
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].data_done <= now {
                let f = self.in_flight.swap_remove(i);
                if f.kind.is_read() {
                    out.push(f.token);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Number of transactions still in flight.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// Earliest cycle the channel's shared data bus is free. Schedulers use
    /// this for admission control: issuing far ahead of the bus just queues
    /// transfers in bus order and defeats QoS ordering.
    pub fn bus_free_at(&self) -> Cycle {
        self.bus_free
    }

    /// Earliest `data_done` among in-flight transactions (reads *and*
    /// writes — a completed write still changes channel state when it is
    /// drained). `None` when nothing is in flight.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.in_flight.iter().map(|f| f.data_done).min()
    }

    /// The cycle `line`'s bank is next ready for an activation.
    pub fn bank_ready_at(&self, line: LineAddr) -> Cycle {
        self.bank_ready[self.bank_of(line)]
    }

    /// Reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes serviced.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Mean read latency (issue to last data beat) in processor cycles.
    pub fn mean_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads as f64
        }
    }

    /// Data-bus utilization meter.
    pub fn bus_meter(&self) -> UtilizationMeter {
        self.bus_meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> DramChannel {
        DramChannel::new(MemConfig::ddr2_800())
    }

    #[test]
    fn idle_read_latency_matches_timing() {
        let mut ch = channel();
        let done = ch.issue(LineAddr(0), AccessKind::Read, 1, 0);
        // overhead 10 + tRCD 25 + tCL 25 + burst 20
        assert_eq!(done, 80);
    }

    #[test]
    fn same_bank_serializes() {
        let mut ch = channel();
        let banks = ch.config.total_banks() as u64;
        let first = ch.issue(LineAddr(0), AccessKind::Read, 1, 0);
        assert!(!ch.bank_available(LineAddr(banks), first), "same bank busy through precharge");
        let ready = ch.bank_ready[0];
        assert!(ch.bank_available(LineAddr(banks), ready));
        let second = ch.issue(LineAddr(banks), AccessKind::Read, 2, ready);
        assert!(second > first + ch.config.timing.burst);
    }

    #[test]
    fn different_banks_overlap_but_share_bus() {
        let mut ch = channel();
        let a = ch.issue(LineAddr(0), AccessKind::Read, 1, 0);
        assert!(ch.bank_available(LineAddr(1), 0), "different bank is free");
        let b = ch.issue(LineAddr(1), AccessKind::Read, 2, 0);
        // Second read overlaps the first's activation but waits for the bus.
        assert_eq!(b, a + ch.config.timing.burst);
    }

    #[test]
    fn drain_returns_only_reads() {
        let mut ch = channel();
        let r = ch.issue(LineAddr(0), AccessKind::Read, 1, 0);
        let w = ch.issue(LineAddr(1), AccessKind::Write, 2, 0);
        let mut out = Vec::new();
        ch.drain_completed(r.max(w), &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(ch.in_flight_len(), 0);
        assert_eq!(ch.reads(), 1);
        assert_eq!(ch.writes(), 1);
    }

    #[test]
    fn write_recovery_extends_bank_busy() {
        let mut cfg = MemConfig::ddr2_800();
        cfg.controller_overhead = 0;
        let mut ch = DramChannel::new(cfg);
        ch.issue(LineAddr(0), AccessKind::Read, 1, 0);
        let read_ready = ch.bank_ready[0];
        let mut ch2 = DramChannel::new(cfg);
        ch2.issue(LineAddr(0), AccessKind::Write, 2, 0);
        let write_ready = ch2.bank_ready[0];
        assert!(write_ready > read_ready, "tWR delays precharge after a write");
    }

    #[test]
    fn bus_utilization_accumulates() {
        let mut ch = channel();
        for i in 0..4 {
            let now = ch.bus_free;
            if ch.bank_available(LineAddr(i), now) {
                ch.issue(LineAddr(i), AccessKind::Read, i, now);
            }
        }
        assert_eq!(ch.bus_meter().busy_cycles(), 4 * ch.config.timing.burst);
    }
}
