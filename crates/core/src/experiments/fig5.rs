//! Figure 5: L2 cache utilization of the microbenchmarks vs. bank count.
//!
//! Loads and Stores each run alone on configurations with 2, 4, 8 and 16
//! banks. The paper's shape: Loads fully utilizes two banks and reaches
//! about 80% of four (its LMQ-limited load stream cannot feed more), while
//! Stores — whose writes enter the L2 in order with ideal interleaving —
//! fully utilizes the data arrays of as many as eight banks.

use std::fmt;

use crate::config::{CmpConfig, WorkloadSpec};
use crate::experiments::{bar, pct, RunBudget};
use crate::system::CmpSystem;
use vpc_cache::L2Utilization;
use vpc_sim::exec::{self, Job};

/// One bar group of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// "Loads" or "Stores".
    pub benchmark: &'static str,
    /// Number of L2 banks.
    pub banks: usize,
    /// Utilization of the three shared resources.
    pub util: L2Utilization,
}

/// The full Figure 5 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// One row per (benchmark, bank count).
    pub rows: Vec<Fig5Row>,
}

impl Fig5Result {
    /// Finds a row.
    pub fn row(&self, benchmark: &str, banks: usize) -> Option<&Fig5Row> {
        self.rows.iter().find(|r| r.benchmark == benchmark && r.banks == banks)
    }
}

impl fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 5: Microbenchmark L2 Cache Utilization")?;
        writeln!(
            f,
            "{:<12} {:>6} {:>10} {:>10} {:>10}",
            "benchmark", "banks", "data", "bus", "tag"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>6} {:>10} {:>10} {:>10}  {}",
                format!("{} {}B", r.benchmark, r.banks),
                r.banks,
                pct(r.util.data_array),
                pct(r.util.data_bus),
                pct(r.util.tag_array),
                bar(r.util.data_array, 24),
            )?;
        }
        Ok(())
    }
}

/// Runs the Figure 5 sweep, one parallel job per (benchmark, bank count).
pub fn run(base: &CmpConfig, budget: RunBudget) -> Fig5Result {
    let mut jobs = Vec::new();
    for benchmark in [WorkloadSpec::Loads, WorkloadSpec::Stores] {
        for banks in [2usize, 4, 8, 16] {
            jobs.push(Job::new(format!("fig5/{} {}B", benchmark.name(), banks), move || {
                let mut cfg = base.clone().with_banks(banks);
                cfg.processors = 1;
                cfg.l2.threads = 1;
                let mut sys = CmpSystem::new(cfg, &[benchmark]);
                let m = sys.run_measured(budget.warmup, budget.window);
                Fig5Row { benchmark: benchmark.name(), banks, util: m.util }
            }));
        }
    }
    Fig5Result { rows: exec::map_indexed(jobs, exec::jobs()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microbenchmark_scaling_matches_paper_shape() {
        let mut base = CmpConfig::table1();
        base.l2.total_sets = 2048;
        let r = run(&base, RunBudget::quick());
        let loads2 = r.row("Loads", 2).unwrap().util.data_array;
        let loads4 = r.row("Loads", 4).unwrap().util.data_array;
        let loads16 = r.row("Loads", 16).unwrap().util.data_array;
        let stores8 = r.row("Stores", 8).unwrap().util.data_array;
        let stores16 = r.row("Stores", 16).unwrap().util.data_array;

        assert!(loads2 > 0.9, "Loads saturates 2 banks, got {loads2}");
        assert!(loads4 > 0.5 && loads4 < 0.98, "Loads partially uses 4 banks, got {loads4}");
        assert!(loads16 < 0.45, "Loads cannot feed 16 banks, got {loads16}");
        assert!(stores8 > 0.75, "Stores scales to 8 banks, got {stores8}");
        assert!(stores16 < stores8, "Stores cannot scale past 8 banks");
        // Loads: data bus tracks data array (both 8 cycles per line).
        let l2row = r.row("Loads", 2).unwrap();
        assert!((l2row.util.data_array - l2row.util.data_bus).abs() < 0.12);
        // Stores: no bus traffic (writes return nothing).
        let s2 = r.row("Stores", 2).unwrap();
        assert!(s2.util.data_bus < 0.1, "stores use no return bus: {:?}", s2.util);
    }
}
