//! The request descriptor arbiters operate on.

use vpc_sim::{AccessKind, Cycle, ThreadId};

/// A request pending in arbitration for one shared resource.
///
/// This mirrors the paper's request IDs (Figure 3): the arbiter does not hold
/// the request's full state, only a small reference (`id`) to the cache
/// controller state machine plus the fields arbitration needs — the issuing
/// thread, read/write kind (for read-over-write priorities and the
/// double-cost data-array writes), arrival time, and the occupancy the
/// request will impose on the resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArbRequest {
    /// Reference to the owning controller state machine (a few bits of
    /// storage in hardware).
    pub id: u64,
    /// Issuing hardware thread.
    pub thread: ThreadId,
    /// Read or write access.
    pub kind: AccessKind,
    /// Cycles the resource will be busy servicing this request (`L_i^k`).
    /// Writes on the data array carry twice the read service time (two
    /// back-to-back ECC read-merge-write accesses, §3.1).
    pub service_time: u64,
    /// Cycle the request entered arbitration (`a_i^k`). Filled by
    /// [`Arbiter::enqueue`](crate::Arbiter::enqueue).
    pub arrival: Cycle,
}

impl ArbRequest {
    /// Creates a request descriptor; the arrival time is stamped when the
    /// request enters arbitration.
    pub fn new(id: u64, thread: ThreadId, kind: AccessKind, service_time: u64) -> ArbRequest {
        ArbRequest { id, thread, kind, service_time, arrival: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_defaults_arrival() {
        let r = ArbRequest::new(7, ThreadId(1), AccessKind::Write, 16);
        assert_eq!(r.arrival, 0);
        assert_eq!(r.service_time, 16);
        assert_eq!(r.thread, ThreadId(1));
    }
}
