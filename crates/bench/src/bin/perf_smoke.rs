//! Non-gating performance smoke: re-runs the figure benchmark scenarios
//! in quick mode and prints each scenario's speedup against the
//! checked-in `BENCH_5.json` baseline (the `after` suite recorded when
//! quiescence-aware cycle skipping landed).
//!
//! Always exits 0 — wall-clock on shared CI hardware is too noisy to
//! gate on. The printout exists so a regression (speedup well below 1x
//! across the board) is visible in the CI log, not to fail the build.
//!
//! Usage: `perf_smoke [--baseline PATH]` (default `BENCH_5.json`).

use vpc::json::JsonValue;
use vpc_bench::harness::Suite;

fn field<'a>(value: &'a JsonValue, name: &str) -> Option<&'a JsonValue> {
    match value {
        JsonValue::Object(fields) => fields.iter().find_map(|(k, v)| (k == name).then_some(v)),
        _ => None,
    }
}

fn as_f64(value: &JsonValue) -> Option<f64> {
    match *value {
        JsonValue::Int(i) => Some(i as f64),
        JsonValue::Float(f) => Some(f),
        _ => None,
    }
}

/// Extracts `(name, median_ns)` pairs from `doc.after.figures.results`.
fn baseline_medians(doc: &JsonValue) -> Vec<(String, f64)> {
    let Some(JsonValue::Array(results)) =
        field(doc, "after").and_then(|v| field(v, "figures")).and_then(|v| field(v, "results"))
    else {
        return Vec::new();
    };
    results
        .iter()
        .filter_map(|r| {
            let JsonValue::Str(name) = field(r, "name")? else { return None };
            Some((name.clone(), as_f64(field(r, "median_ns")?)?))
        })
        .collect()
}

fn baseline_path() -> String {
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--baseline=") {
            return v.to_string();
        }
        if args[i] == "--baseline" {
            if let Some(v) = args.get(i + 1) {
                return v.clone();
            }
        }
        i += 1;
    }
    "BENCH_5.json".to_string()
}

fn main() {
    vpc_bench::skip_from_args();
    let path = baseline_path();
    let baseline = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok())
        .map(|doc| baseline_medians(&doc))
        .unwrap_or_default();
    if baseline.is_empty() {
        eprintln!("perf_smoke: no baseline at {path}; printing absolute timings only");
    }

    let mut suite = Suite::new("perf_smoke", true, false);
    vpc_bench::scenarios::figures(&mut suite);
    let results = suite.finish();

    println!();
    println!("perf_smoke vs {path} (quick profile; >1x means faster than baseline):");
    for r in &results {
        match baseline.iter().find(|(name, _)| *name == r.name) {
            Some(&(_, base_median)) if r.median_ns > 0.0 => {
                println!("{:<44} {:>6.2}x", r.name, base_median / r.median_ns);
            }
            _ => println!("{:<44} {:>7}", r.name, "n/a"),
        }
    }
}
