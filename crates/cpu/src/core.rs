//! The out-of-order core model.

use std::collections::VecDeque;

use vpc_cache::{L1Cache, L1Config, L1LoadResult, SharedL2};
use vpc_sim::trace::{self, EventData, TraceEvent};
use vpc_sim::{AccessKind, CacheRequest, Counter, Cycle, LineAddr, ThreadId};

use crate::workload::{Op, Workload};

/// Core pipeline parameters (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder buffer capacity in instructions (20 dispatch groups of 5).
    pub rob_entries: usize,
    /// Instructions dispatched per cycle (one dispatch group).
    pub dispatch_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Loads issued to the L1 per cycle (2 LSUs).
    pub load_issue_width: usize,
    /// Load reorder queue entries.
    pub lrq_entries: usize,
    /// Store reorder queue entries.
    pub srq_entries: usize,
    /// Minimum cycles between stores sent to the L2 (the crossbar write
    /// port runs at half core frequency).
    pub store_send_interval: u64,
    /// Sequential prefetch degree: on a primary load miss for line X, also
    /// fetch lines X+1..X+degree. Zero disables prefetching — the paper's
    /// configuration (the 970 prefetchers are disabled; VPC-supported
    /// prefetching is its stated future work, which this knob explores).
    pub prefetch_degree: usize,
    /// Private L1 D-cache configuration.
    pub l1: L1Config,
}

impl CoreConfig {
    /// Table 1's core: 100-entry ROB (20 groups x 5), dispatch/retire one
    /// group per cycle, 2 LSUs, 32-entry LRQ and SRQ.
    pub fn table1() -> CoreConfig {
        CoreConfig {
            rob_entries: 100,
            dispatch_width: 5,
            retire_width: 5,
            load_issue_width: 2,
            lrq_entries: 32,
            srq_entries: 32,
            store_send_interval: 2,
            prefetch_degree: 0,
            l1: L1Config::table1(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RobKind {
    NonMem,
    Load { line: LineAddr, issued: bool },
    Store { line: LineAddr },
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    id: u64,
    kind: RobKind,
    /// Completion time; `u64::MAX` while unknown (loads in flight).
    done_at: Cycle,
}

/// Token used for prefetch requests: fills the L1 but wakes no ROB entry.
const PREFETCH_TOKEN: u64 = u64::MAX;

/// Instruction-mix and stall counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Retired non-memory instructions.
    pub non_mem: Counter,
    /// Retired loads.
    pub loads: Counter,
    /// Retired stores.
    pub stores: Counter,
    /// Cycles retirement was blocked by a store waiting for the L2 port.
    pub store_stall_cycles: Counter,
    /// Cycles no instruction could dispatch (ROB/LRQ/SRQ full).
    pub dispatch_stall_cycles: Counter,
    /// Prefetch requests issued to the L2.
    pub prefetches: Counter,
}

/// One simulated processor: workload, pipeline structures, and a private
/// write-through L1 D-cache.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    thread: ThreadId,
    workload: Box<dyn Workload>,
    l1: L1Cache,
    rob: VecDeque<RobEntry>,
    /// One-op skid buffer for an op consumed from the workload but stalled
    /// by a structural hazard.
    pending_op: Option<Op>,
    /// Dispatch is stalled until this cycle (frontend bubbles).
    frontend_stall_until: Cycle,
    /// Unissued loads' ids, oldest first (loads issue in LRQ order).
    unissued_loads: VecDeque<u64>,
    lrq_count: usize,
    srq_count: usize,
    next_id: u64,
    next_store_at: Cycle,
    retired: u64,
    stats: CoreStats,
}

impl Core {
    /// Creates a core running `workload` as hardware thread `thread`.
    pub fn new(cfg: CoreConfig, thread: ThreadId, workload: Box<dyn Workload>) -> Core {
        Core {
            l1: L1Cache::new(cfg.l1, thread),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            pending_op: None,
            frontend_stall_until: 0,
            unissued_loads: VecDeque::new(),
            lrq_count: 0,
            srq_count: 0,
            next_id: 0,
            next_store_at: 0,
            retired: 0,
            stats: CoreStats::default(),
            cfg,
            thread,
            workload,
        }
    }

    /// This core's hardware thread id.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Total retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Instructions per cycle over `elapsed` cycles.
    pub fn ipc(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.retired as f64 / elapsed as f64
        }
    }

    /// Pipeline statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> vpc_cache::L1Stats {
        self.l1.stats()
    }

    /// The workload's display name.
    pub fn workload_name(&self) -> &str {
        self.workload.name()
    }

    /// Delivers an L2 read response (critical word) for `line`: fills the
    /// L1 and wakes every load waiting on the line.
    pub fn on_l2_response(&mut self, line: LineAddr, now: Cycle) {
        trace::emit(|| TraceEvent {
            at: now,
            data: EventData::LoadReturn { thread: self.thread, line },
        });
        for token in self.l1.on_fill(line, now) {
            if token == PREFETCH_TOKEN {
                continue; // prefetch fill: no waiting instruction
            }
            if let Some(entry) = self.entry_mut(token) {
                entry.done_at = now;
            }
        }
    }

    /// O(1) ROB access by instruction id (ids are dense and monotonic).
    fn entry_mut(&mut self, id: u64) -> Option<&mut RobEntry> {
        let head = self.rob.front()?.id;
        if id < head {
            return None;
        }
        self.rob.get_mut((id - head) as usize)
    }

    /// Read-only counterpart of [`Core::entry_mut`].
    fn entry(&self, id: u64) -> Option<&RobEntry> {
        let head = self.rob.front()?.id;
        if id < head {
            return None;
        }
        self.rob.get((id - head) as usize)
    }

    /// Advances the core one cycle: retire, issue loads, dispatch.
    pub fn tick(&mut self, now: Cycle, l2: &mut SharedL2) {
        self.retire(now, l2);
        self.issue_loads(now, l2);
        self.dispatch(now);
    }

    /// Whether the next dispatch attempt is structurally blocked (ROB full,
    /// or the skid-buffered op cannot take an LRQ/SRQ slot) — exactly the
    /// conditions under which [`Core::dispatch`] counts a stall cycle.
    fn dispatch_blocked(&self) -> bool {
        self.rob.len() >= self.cfg.rob_entries
            || match &self.pending_op {
                Some(Op::Load(_)) => self.lrq_count >= self.cfg.lrq_entries,
                Some(Op::Store(_)) => self.srq_count >= self.cfg.srq_entries,
                _ => false,
            }
    }

    /// The earliest cycle at which a [`Core::tick`] can change observable
    /// state (including stall counters' *regime boundaries*), given that no
    /// L2 response arrives before then. `None` when every pipeline stage is
    /// blocked on input only the memory system can deliver — the cache's
    /// own [`SharedL2::next_activity`] covers those wake-ups.
    ///
    /// Conservative by design: never *later* than a real change (see
    /// `DESIGN.md` §10); an early wake-up is a harmless no-op tick.
    pub fn next_activity(&self, now: Cycle, l2: &SharedL2) -> Option<Cycle> {
        let horizon = now + 1;
        // Fast path for the overwhelmingly common case — an unblocked
        // frontend dispatches next tick, so no cheaper wake-up exists and
        // the checks below cannot improve on it. This keeps the skip
        // protocol's per-cycle cost near zero while a core is running.
        if self.frontend_stall_until <= horizon && !self.dispatch_blocked() {
            return Some(horizon);
        }
        let mut best: Option<Cycle> = None;
        let mut consider = |c: Cycle| best = Some(best.map_or(c, |b: Cycle| b.min(c)));
        // Retirement: a finite completion time bounds the skip; a store at
        // the head with an open port retires once the send interval allows.
        if let Some(head) = self.rob.front() {
            match head.kind {
                RobKind::NonMem | RobKind::Load { .. } => {
                    if head.done_at != u64::MAX {
                        consider(head.done_at.max(horizon));
                    }
                }
                RobKind::Store { line } => {
                    if head.done_at > now {
                        consider(head.done_at.max(horizon));
                    } else if l2.can_accept(self.thread, line) {
                        consider(self.next_store_at.max(horizon));
                    }
                    // else: port-blocked; unblocking is bank activity.
                }
            }
        }
        // Load issue: an issuable head load acts next tick. A blocked one
        // waits on an L1 fill or port credit, which the cache reports.
        if let Some(&id) = self.unissued_loads.front() {
            match self.entry(id) {
                None => consider(horizon), // stale id: next tick pops it
                Some(entry) => {
                    let RobKind::Load { line, .. } = entry.kind else {
                        unreachable!("unissued-load queue holds loads only")
                    };
                    if self.l1.probe(line)
                        || self.l1.has_mshr(line)
                        || (self.l1.can_allocate_miss() && l2.can_accept(self.thread, line))
                    {
                        consider(horizon);
                    }
                }
            }
        }
        // Dispatch: an unblocked frontend consumes workload ops as soon as
        // any bubble expires. (A structurally blocked frontend only counts
        // stall cycles, which fast_forward advances arithmetically.)
        if !self.dispatch_blocked() {
            consider(self.frontend_stall_until.max(horizon));
        }
        best
    }

    /// Advances the stall counters over the skipped ticks
    /// `now + 1 ..= target - 1`, exactly as if [`Core::tick`] had run on
    /// each of them. Sound because `target` never exceeds
    /// [`Core::next_activity`]: within the region every blocking predicate
    /// is constant, so each skipped tick increments the same counters a
    /// naive tick would (see `DESIGN.md` §10).
    pub fn fast_forward(&mut self, now: Cycle, target: Cycle) {
        let skipped = target - now - 1;
        if skipped == 0 {
            return;
        }
        if let Some(head) = self.rob.front() {
            // A completed store still at the head is being held back by the
            // port or the send interval on every skipped tick.
            if matches!(head.kind, RobKind::Store { .. }) && head.done_at <= now {
                self.stats.store_stall_cycles.add(skipped);
            }
        }
        if self.frontend_stall_until <= now + 1 && self.dispatch_blocked() {
            self.stats.dispatch_stall_cycles.add(skipped);
        }
    }

    fn dispatch(&mut self, now: Cycle) {
        if now < self.frontend_stall_until {
            return;
        }
        let mut dispatched = 0;
        while dispatched < self.cfg.dispatch_width {
            if self.rob.len() >= self.cfg.rob_entries {
                self.stats.dispatch_stall_cycles.inc();
                return;
            }
            // Structural hazards stall dispatch in order; an op consumed
            // from the workload but blocked waits in the skid buffer.
            let op = match self.pending_op.take() {
                Some(op) => op,
                None => self.workload.next_op(),
            };
            let kind = match op {
                Op::Bubble(n) => {
                    self.frontend_stall_until = now + u64::from(n);
                    return;
                }
                Op::NonMem => RobKind::NonMem,
                Op::Load(line) => {
                    if self.lrq_count >= self.cfg.lrq_entries {
                        self.pending_op = Some(op);
                        self.stats.dispatch_stall_cycles.inc();
                        return;
                    }
                    self.lrq_count += 1;
                    self.unissued_loads.push_back(self.next_id);
                    RobKind::Load { line, issued: false }
                }
                Op::Store(line) => {
                    if self.srq_count >= self.cfg.srq_entries {
                        self.pending_op = Some(op);
                        self.stats.dispatch_stall_cycles.inc();
                        return;
                    }
                    self.srq_count += 1;
                    RobKind::Store { line }
                }
            };
            let done_at = match kind {
                RobKind::NonMem => now + 1,
                // Stores are architecturally complete at dispatch (weak
                // consistency; data waits in the SRQ); they gate at retire.
                RobKind::Store { .. } => now + 1,
                RobKind::Load { .. } => u64::MAX,
            };
            self.rob.push_back(RobEntry { id: self.next_id, kind, done_at });
            self.next_id += 1;
            dispatched += 1;
        }
    }

    fn issue_loads(&mut self, now: Cycle, l2: &mut SharedL2) {
        let mut issued = 0;
        while issued < self.cfg.load_issue_width {
            let Some(&id) = self.unissued_loads.front() else { return };
            let Some(entry) = self.entry_mut(id) else {
                self.unissued_loads.pop_front();
                continue;
            };
            let RobKind::Load { line, .. } = entry.kind else {
                unreachable!("unissued-load queue holds loads only")
            };
            match self.try_issue_load(line, id, now, l2) {
                Some(done_at) => {
                    let e = self.entry_mut(id).expect("entry just seen");
                    e.kind = RobKind::Load { line, issued: true };
                    e.done_at = done_at;
                    self.unissued_loads.pop_front();
                    issued += 1;
                }
                // Structural block (LMQ full or no port credit): loads
                // issue in order from the LRQ, so stop here.
                None => return,
            }
        }
    }

    /// Attempts to issue one load. Returns its completion time if known
    /// (L1 hit), `u64::MAX` if it will complete via an L2 response, or
    /// `None` if it cannot issue this cycle.
    fn try_issue_load(
        &mut self,
        line: LineAddr,
        token: u64,
        now: Cycle,
        l2: &mut SharedL2,
    ) -> Option<Cycle> {
        if self.l1.probe(line) {
            match self.l1.access_load(line, token, now) {
                L1LoadResult::Hit { ready_at } => return Some(ready_at),
                other => unreachable!("probe said hit, access said {other:?}"),
            }
        }
        if self.l1.has_mshr(line) {
            match self.l1.access_load(line, token, now) {
                L1LoadResult::MissSecondary => return Some(u64::MAX),
                other => unreachable!("existing MSHR, access said {other:?}"),
            }
        }
        // Primary miss: needs both an MSHR/LMQ slot and an L2 port credit.
        if !self.l1.can_allocate_miss() || !l2.can_accept(self.thread, line) {
            return None;
        }
        match self.l1.access_load(line, token, now) {
            L1LoadResult::MissPrimary => {
                l2.submit(
                    CacheRequest { thread: self.thread, line, kind: AccessKind::Read, token },
                    now,
                );
                self.issue_prefetches(line, now, l2);
                Some(u64::MAX)
            }
            other => unreachable!("allocation checked, access said {other:?}"),
        }
    }

    /// Sequential prefetcher: fetch the next `prefetch_degree` lines behind
    /// a primary miss, best effort (skipped when resident, already
    /// outstanding, or out of MSHR/port capacity).
    fn issue_prefetches(&mut self, miss_line: LineAddr, now: Cycle, l2: &mut SharedL2) {
        for d in 1..=self.cfg.prefetch_degree as u64 {
            let line = LineAddr(miss_line.0 + d);
            if self.l1.probe(line) || self.l1.has_mshr(line) {
                continue;
            }
            if !self.l1.can_allocate_prefetch() || !l2.can_accept(self.thread, line) {
                return;
            }
            self.l1.allocate_prefetch(line);
            l2.submit(
                CacheRequest {
                    thread: self.thread,
                    line,
                    kind: AccessKind::Read,
                    token: PREFETCH_TOKEN,
                },
                now,
            );
            self.stats.prefetches.inc();
        }
    }

    fn retire(&mut self, now: Cycle, l2: &mut SharedL2) {
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            let Some(&head) = self.rob.front() else { return };
            match head.kind {
                RobKind::NonMem | RobKind::Load { .. } => {
                    if head.done_at > now {
                        return;
                    }
                }
                RobKind::Store { line } => {
                    if head.done_at > now {
                        return;
                    }
                    // Write-through: the store must leave for the L2 at
                    // retirement, throttled by the half-frequency port and
                    // the bank's input credits.
                    if now < self.next_store_at || !l2.can_accept(self.thread, line) {
                        self.stats.store_stall_cycles.inc();
                        return;
                    }
                    self.l1.access_store(line, now);
                    l2.submit(
                        CacheRequest {
                            thread: self.thread,
                            line,
                            kind: AccessKind::Write,
                            token: head.id,
                        },
                        now,
                    );
                    self.next_store_at = now + self.cfg.store_send_interval;
                }
            }
            match head.kind {
                RobKind::NonMem => self.stats.non_mem.inc(),
                RobKind::Load { .. } => {
                    self.stats.loads.inc();
                    self.lrq_count -= 1;
                }
                RobKind::Store { .. } => {
                    self.stats.stores.inc();
                    self.srq_count -= 1;
                }
            }
            self.rob.pop_front();
            self.retired += 1;
            retired += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::FixedTrace;
    use vpc_arbiters::ArbiterPolicy;
    use vpc_cache::L2Config;
    use vpc_mem::MemConfig;

    fn small_l2(threads: usize) -> SharedL2 {
        let mut cfg = L2Config::table1(threads, ArbiterPolicy::Fcfs);
        cfg.total_sets = 128;
        SharedL2::new(cfg, MemConfig::ddr2_800())
    }

    fn run(core: &mut Core, l2: &mut SharedL2, cycles: Cycle) {
        for now in 0..cycles {
            core.tick(now, l2);
            l2.tick(now);
            while let Some(resp) = l2.pop_response(now) {
                assert_eq!(resp.thread, core.thread());
                core.on_l2_response(resp.line, now);
            }
        }
    }

    #[test]
    fn non_mem_ipc_hits_pipeline_width() {
        let w = FixedTrace::new("spin", vec![Op::NonMem]);
        let mut core = Core::new(CoreConfig::table1(), ThreadId(0), Box::new(w));
        let mut l2 = small_l2(1);
        run(&mut core, &mut l2, 10_000);
        let ipc = core.ipc(10_000);
        assert!((4.5..=5.0).contains(&ipc), "non-mem IPC {ipc} should approach retire width");
    }

    #[test]
    fn repeated_load_hits_l1_after_first_miss() {
        let w = FixedTrace::new("hit", vec![Op::Load(LineAddr(8))]);
        let mut core = Core::new(CoreConfig::table1(), ThreadId(0), Box::new(w));
        let mut l2 = small_l2(1);
        run(&mut core, &mut l2, 20_000);
        let l1 = core.l1_stats();
        // The first access is a primary miss; loads dispatched behind it
        // (up to the LRQ depth) merge into the same MSHR as secondary
        // misses. After the fill everything hits.
        assert!(
            (1..=33).contains(&l1.load_misses.get()),
            "one primary miss plus merged secondaries, got {}",
            l1.load_misses.get()
        );
        assert!(l1.load_hits.get() > 1_000);
        let ipc = core.ipc(20_000);
        assert!(ipc > 1.0, "L1-resident loads are fast, got IPC {ipc}");
    }

    #[test]
    fn l2_bound_load_stream_is_bandwidth_limited() {
        // 512 distinct lines thrash the 64-set x 4-way L1 but fit in L2.
        let ops: Vec<Op> = (0..512).map(|i| Op::Load(LineAddr(i))).collect();
        let w = FixedTrace::new("loads", ops);
        let mut core = Core::new(CoreConfig::table1(), ThreadId(0), Box::new(w));
        let mut l2 = small_l2(1);
        run(&mut core, &mut l2, 60_000);
        let ipc = core.ipc(60_000);
        // 2 banks x 1 read / 8 cycles = 0.25 loads/cycle upper bound.
        assert!(ipc <= 0.30, "load stream cannot exceed data-array bandwidth, got {ipc}");
        assert!(ipc >= 0.10, "load stream should come near the bandwidth bound, got {ipc}");
        let u = l2.utilization(60_000);
        assert!(u.data_array > 0.5, "data array should be heavily used: {u:?}");
    }

    #[test]
    fn store_stream_is_throttled_by_write_bandwidth() {
        let ops: Vec<Op> = (0..512).map(|i| Op::Store(LineAddr(i))).collect();
        let w = FixedTrace::new("stores", ops);
        let mut core = Core::new(CoreConfig::table1(), ThreadId(0), Box::new(w));
        let mut l2 = small_l2(1);
        run(&mut core, &mut l2, 60_000);
        let ipc = core.ipc(60_000);
        // 2 banks x 1 write / 16 cycles = 0.125 stores/cycle once warm.
        assert!(ipc <= 0.25, "store stream bounded by write bandwidth, got {ipc}");
        assert!(core.stats().store_stall_cycles.get() > 0, "stores must backpressure");
    }

    #[test]
    fn loads_and_stores_retire_in_order() {
        let w = FixedTrace::new(
            "mix",
            vec![Op::Load(LineAddr(8)), Op::NonMem, Op::Store(LineAddr(16))],
        );
        let mut core = Core::new(CoreConfig::table1(), ThreadId(0), Box::new(w));
        let mut l2 = small_l2(1);
        run(&mut core, &mut l2, 30_000);
        let s = core.stats();
        // Retired counts reflect the 1:1:1 mix.
        let total = s.non_mem.get() + s.loads.get() + s.stores.get();
        assert_eq!(total, core.retired());
        assert!(s.loads.get() > 0 && s.stores.get() > 0 && s.non_mem.get() > 0);
        let diff = s.loads.get().abs_diff(s.stores.get());
        assert!(diff <= 1, "in-order retirement keeps the mix balanced");
    }

    #[test]
    fn prefetching_accelerates_low_mlp_streams() {
        // Prefetching hides latency, so it pays off when demand MLP is the
        // bottleneck: a core whose LMQ holds only 2 demand misses walks a
        // fresh-line stream. Degree-4 sequential prefetch raises the
        // effective MLP through the spare MSHRs.
        let ops: Vec<Op> = (0..4096).map(|i| Op::Load(LineAddr(i))).collect();
        let mut base_cfg = CoreConfig::table1();
        base_cfg.l1.lmq_entries = 2;
        let mut pf_cfg = base_cfg;
        pf_cfg.prefetch_degree = 4;
        let mut with =
            Core::new(pf_cfg, ThreadId(0), Box::new(FixedTrace::new("stream", ops.clone())));
        let mut without =
            Core::new(base_cfg, ThreadId(0), Box::new(FixedTrace::new("stream", ops)));
        let mut l2a = small_l2(1);
        let mut l2b = small_l2(1);
        run(&mut with, &mut l2a, 60_000);
        run(&mut without, &mut l2b, 60_000);
        assert!(with.stats().prefetches.get() > 100, "prefetches must issue");
        assert!(
            with.retired() as f64 > without.retired() as f64 * 1.2,
            "prefetching should lift a latency-bound stream: with {} vs without {}",
            with.retired(),
            without.retired()
        );
    }

    #[test]
    fn prefetch_fills_wake_no_instructions() {
        // A single load with prefetching: the prefetched line's fill must
        // not complete any ROB entry or corrupt retirement.
        let mut cfg = CoreConfig::table1();
        cfg.prefetch_degree = 4;
        let w = FixedTrace::new("one", vec![Op::Load(LineAddr(8)), Op::NonMem]);
        let mut core = Core::new(cfg, ThreadId(0), Box::new(w));
        let mut l2 = small_l2(1);
        run(&mut core, &mut l2, 20_000);
        let s = core.stats();
        assert_eq!(
            s.loads.get() + s.non_mem.get(),
            core.retired(),
            "retired counts stay consistent with prefetching enabled"
        );
        assert!(core.retired() > 100);
    }

    #[test]
    fn mlp_is_bounded_by_lmq() {
        let ops: Vec<Op> = (0..512).map(|i| Op::Load(LineAddr(i))).collect();
        let w = FixedTrace::new("loads", ops);
        let mut cfg = CoreConfig::table1();
        cfg.l1.lmq_entries = 2; // tiny LMQ throttles MLP hard
        let mut throttled = Core::new(
            cfg,
            ThreadId(0),
            Box::new(FixedTrace::new("loads", (0..512).map(|i| Op::Load(LineAddr(i))).collect())),
        );
        let mut wide = Core::new(CoreConfig::table1(), ThreadId(0), Box::new(w));
        let mut l2a = small_l2(1);
        let mut l2b = small_l2(1);
        run(&mut throttled, &mut l2a, 40_000);
        run(&mut wide, &mut l2b, 40_000);
        assert!(
            wide.retired() > throttled.retired() * 2,
            "LMQ depth limits load throughput: wide {} vs throttled {}",
            wide.retired(),
            throttled.retired()
        );
    }
}
