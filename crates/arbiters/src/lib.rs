//! Bandwidth arbiters for shared cache resources.
//!
//! The baseline cache microarchitecture (paper §3.1, Figure 2b) has three
//! shared bandwidth resources per L2 bank — the tag array, the data array and
//! the bank's data bus — each guarded by an arbiter. This crate provides:
//!
//! * [`Arbiter`] — the common interface: requests enter arbitration and the
//!   arbiter picks which pending request accesses the resource next.
//! * [`FcfsArbiter`] — first-come first-serve, the paper's multiprocessor
//!   baseline for shared resources.
//! * [`RowFcfsArbiter`] — read-over-write FCFS, the uniprocessor policy that
//!   *starves* stores when another thread issues a continuous load stream
//!   (demonstrated in the paper's Figure 8 and in this crate's tests).
//! * [`RoundRobinArbiter`] — per-thread round-robin, used by the cache
//!   controller's thread-selection stage.
//! * [`VpcArbiter`] — the paper's contribution: a fair-queuing arbiter with
//!   per-thread virtual-time registers (`R.S_i`) that guarantees each thread
//!   its allocated share `beta_i` of the resource's bandwidth (§4.1), using
//!   earliest-virtual-finish-time-first (EDF) selection and supporting
//!   intra-thread read-over-write reordering without losing the guarantee.
//! * [`ArbitratedResource`] — a busy-until resource wrapper that owns an
//!   arbiter and a utilization meter, mirroring Figure 2b's
//!   resource-plus-arbiter blocks.
//!
//! # Examples
//!
//! ```
//! use vpc_arbiters::{Arbiter, ArbRequest, VpcArbiter, IntraThreadOrder};
//! use vpc_sim::{AccessKind, Share, ThreadId};
//!
//! let mut arb = VpcArbiter::new(4, IntraThreadOrder::ReadOverWrite);
//! arb.set_share(ThreadId(0), Share::new(3, 4).unwrap());
//! arb.set_share(ThreadId(1), Share::new(1, 4).unwrap());
//!
//! arb.enqueue(ArbRequest::new(1, ThreadId(0), AccessKind::Read, 8), 0);
//! arb.enqueue(ArbRequest::new(2, ThreadId(1), AccessKind::Read, 8), 0);
//!
//! // Thread 0 has the larger share => earlier virtual finish time.
//! let first = arb.select(0).unwrap();
//! assert_eq!(first.thread, ThreadId(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod drr;
pub mod request;
pub mod resource;
pub mod sfq;
pub mod vpc;

pub use arbiter::{Arbiter, FcfsArbiter, RoundRobinArbiter, RowFcfsArbiter};
pub use drr::DrrArbiter;
pub use request::ArbRequest;
pub use resource::ArbitratedResource;
pub use sfq::SfqArbiter;
pub use vpc::{IntraThreadOrder, VpcArbiter};

use vpc_sim::Share;

/// Which arbiter policy guards a shared resource — the x-axis of the paper's
/// Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub enum ArbiterPolicy {
    /// First-come first-serve (multiprocessor baseline).
    Fcfs,
    /// Read-over-write, then first-come first-serve (uniprocessor policy;
    /// starves writers under shared load streams).
    RowFcfs,
    /// Round-robin over threads.
    RoundRobin,
    /// The VPC fair-queuing arbiter with the given per-thread shares.
    Vpc {
        /// Bandwidth share `beta_i` for each thread; missing entries are zero.
        shares: Vec<Share>,
        /// Ordering applied within each thread's arbitration buffer.
        order: IntraThreadOrder,
    },
    /// Deficit round robin with the given shares (alternative fairness
    /// policy; coarser short-term latency than the VPC arbiter).
    Drr {
        /// Bandwidth share per thread; missing entries are zero.
        shares: Vec<Share>,
    },
    /// Start-time fair queuing with the given shares (no banked
    /// punishment for past excess service).
    Sfq {
        /// Bandwidth share per thread; missing entries are zero.
        shares: Vec<Share>,
    },
}

impl ArbiterPolicy {
    /// A VPC policy with equal shares for `threads` threads and
    /// read-over-write intra-thread reordering (the paper's default
    /// multiprocessor configuration).
    pub fn vpc_equal(threads: usize) -> ArbiterPolicy {
        let share = Share::new(1, threads as u32).expect("1/threads is a valid share");
        ArbiterPolicy::Vpc { shares: vec![share; threads], order: IntraThreadOrder::ReadOverWrite }
    }

    /// Instantiates a boxed arbiter for `threads` hardware threads.
    pub fn build(&self, threads: usize) -> Box<dyn Arbiter> {
        match self {
            ArbiterPolicy::Fcfs => Box::new(FcfsArbiter::new()),
            ArbiterPolicy::RowFcfs => Box::new(RowFcfsArbiter::new()),
            ArbiterPolicy::RoundRobin => Box::new(RoundRobinArbiter::new(threads)),
            ArbiterPolicy::Vpc { shares, order } => {
                let mut arb = VpcArbiter::new(threads, *order);
                for (i, s) in shares.iter().enumerate().take(threads) {
                    arb.set_share(vpc_sim::ThreadId(i as u8), *s);
                }
                Box::new(arb)
            }
            ArbiterPolicy::Drr { shares } => {
                let mut arb = DrrArbiter::new(threads);
                for (i, s) in shares.iter().enumerate().take(threads) {
                    arb.set_share(vpc_sim::ThreadId(i as u8), *s);
                }
                Box::new(arb)
            }
            ArbiterPolicy::Sfq { shares } => {
                let mut arb = SfqArbiter::new(threads);
                for (i, s) in shares.iter().enumerate().take(threads) {
                    arb.set_share(vpc_sim::ThreadId(i as u8), *s);
                }
                Box::new(arb)
            }
        }
    }

    /// Short name used in experiment reports ("FCFS", "RoW", "VPC", ...).
    pub fn label(&self) -> &'static str {
        match self {
            ArbiterPolicy::Fcfs => "FCFS",
            ArbiterPolicy::RowFcfs => "RoW",
            ArbiterPolicy::RoundRobin => "RR",
            ArbiterPolicy::Vpc { .. } => "VPC",
            ArbiterPolicy::Drr { .. } => "DRR",
            ArbiterPolicy::Sfq { .. } => "SFQ",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::{AccessKind, ThreadId};

    #[test]
    fn policy_builds_each_variant() {
        let q = Share::new(1, 4).unwrap();
        for policy in [
            ArbiterPolicy::Fcfs,
            ArbiterPolicy::RowFcfs,
            ArbiterPolicy::RoundRobin,
            ArbiterPolicy::vpc_equal(4),
            ArbiterPolicy::Drr { shares: vec![q; 4] },
            ArbiterPolicy::Sfq { shares: vec![q; 4] },
        ] {
            let mut arb = policy.build(4);
            assert!(arb.is_empty());
            arb.enqueue(ArbRequest::new(1, ThreadId(0), AccessKind::Read, 8), 0);
            assert_eq!(arb.len(), 1);
            let granted = arb.select(0).expect("one pending request");
            assert_eq!(granted.id, 1);
            assert!(arb.is_empty());
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ArbiterPolicy::Fcfs.label(), "FCFS");
        assert_eq!(ArbiterPolicy::RowFcfs.label(), "RoW");
        assert_eq!(ArbiterPolicy::vpc_equal(2).label(), "VPC");
    }
}
