//! Figure 8: the Loads and Stores microbenchmarks under each arbiter.
//!
//! Two threads — Loads on processor 1, Stores on processor 2 — run under
//! RoW-FCFS, FCFS, and five VPC configurations (the label "VPC x%" gives
//! the Stores thread `beta = x`, with the remainder to Loads). The paper's
//! results: RoW-FCFS lets the load stream *starve* the stores entirely (a
//! critical design flaw); FCFS splits the data array 67/33 in favor of
//! stores (writes cost two accesses); and every VPC configuration gives
//! each benchmark precisely its allocated bandwidth, meeting its target
//! IPC.

use std::fmt;

use vpc_arbiters::ArbiterPolicy;
use vpc_sim::exec::{self, Job};
use vpc_sim::Share;

use crate::config::{CmpConfig, WorkloadSpec};
use crate::experiments::{pct, RunBudget};
use crate::system::CmpSystem;
use crate::target::target_ipc;

/// One x-axis point of Figure 8.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Configuration label ("RoW", "FCFS", "VPC 25%", ...).
    pub label: String,
    /// Loads thread IPC.
    pub loads_ipc: f64,
    /// Stores thread IPC.
    pub stores_ipc: f64,
    /// Loads target IPC (private machine with its allocation; 0 under
    /// non-VPC arbiters, which guarantee nothing).
    pub loads_target: f64,
    /// Stores target IPC.
    pub stores_target: f64,
    /// Data-array utilization attributable to the whole workload.
    pub data_util: f64,
}

/// The Figure 8 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// One row per arbiter configuration.
    pub rows: Vec<Fig8Row>,
}

impl Fig8Result {
    /// Finds a row by label.
    pub fn row(&self, label: &str) -> Option<&Fig8Row> {
        self.rows.iter().find(|r| r.label == label)
    }
}

impl fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8: Loads and Stores Microbenchmarks — IPC and Data Array Utilization")?;
        writeln!(
            f,
            "{:<10} {:>10} {:>12} {:>10} {:>13} {:>10}",
            "arbiter", "Loads IPC", "Loads target", "Stores IPC", "Stores target", "data util"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>10.3} {:>12.3} {:>10.3} {:>13.3} {:>10}",
                r.label,
                r.loads_ipc,
                r.loads_target,
                r.stores_ipc,
                r.stores_target,
                pct(r.data_util),
            )?;
        }
        Ok(())
    }
}

fn run_pair(base: &CmpConfig, arbiter: ArbiterPolicy, budget: RunBudget) -> (f64, f64, f64) {
    let mut cfg = base.clone().with_arbiter(arbiter);
    cfg.processors = 2;
    cfg.l2.threads = 2;
    cfg.l2.capacity = vpc_cache::CapacityPolicy::vpc_equal(2);
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Stores]);
    let m = sys.run_measured(budget.warmup, budget.window);
    (m.ipc[0], m.ipc[1], m.util.data_array)
}

/// Runs the Figure 8 sweep: RoW-FCFS, FCFS, and VPC with the Stores share
/// at 0%, 25%, 50%, 75% and 100% — one parallel job per arbiter
/// configuration.
pub fn run(base: &CmpConfig, budget: RunBudget) -> Fig8Result {
    let alpha = Share::new(1, 2).expect("two threads, equal ways");
    let mut jobs: Vec<Job<'_, Fig8Row>> = Vec::new();

    for (label, arbiter) in
        [("RoW".to_string(), ArbiterPolicy::RowFcfs), ("FCFS".to_string(), ArbiterPolicy::Fcfs)]
    {
        jobs.push(Job::new(format!("fig8/{label}"), move || {
            let (loads_ipc, stores_ipc, data_util) = run_pair(base, arbiter, budget);
            Fig8Row {
                label,
                loads_ipc,
                stores_ipc,
                loads_target: 0.0,
                stores_target: 0.0,
                data_util,
            }
        }));
    }

    for stores_pct in [0u32, 25, 50, 75, 100] {
        jobs.push(Job::new(format!("fig8/VPC {stores_pct}%"), move || {
            let stores_share = Share::from_percent(stores_pct).expect("valid percent");
            let loads_share = Share::from_percent(100 - stores_pct).expect("valid percent");
            let arbiter = ArbiterPolicy::Vpc {
                shares: vec![loads_share, stores_share],
                order: vpc_arbiters::IntraThreadOrder::ReadOverWrite,
            };
            let (loads_ipc, stores_ipc, data_util) = run_pair(base, arbiter, budget);
            Fig8Row {
                label: format!("VPC {stores_pct}%"),
                loads_ipc,
                stores_ipc,
                loads_target: target_ipc(
                    base,
                    WorkloadSpec::Loads,
                    loads_share,
                    alpha,
                    budget.warmup,
                    budget.window,
                ),
                stores_target: target_ipc(
                    base,
                    WorkloadSpec::Stores,
                    stores_share,
                    alpha,
                    budget.warmup,
                    budget.window,
                ),
                data_util,
            }
        }));
    }
    Fig8Result { rows: exec::map_indexed(jobs, exec::jobs()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> CmpConfig {
        let mut base = CmpConfig::table1_with_threads(2);
        base.l2.total_sets = 2048;
        base
    }

    #[test]
    fn row_fcfs_starves_stores() {
        let base = quick_base();
        let (loads, stores, _) = run_pair(&base, ArbiterPolicy::RowFcfs, RunBudget::quick());
        assert!(loads > 0.15, "Loads should run at full speed, got {loads}");
        assert!(
            stores < loads * 0.15,
            "RoW-FCFS must starve stores: loads {loads}, stores {stores}"
        );
    }

    #[test]
    fn fcfs_lets_stores_dominate_data_array() {
        // Uniform request interleaving + double-cost writes => stores get
        // about 2/3 of the data-array bandwidth.
        let base = quick_base();
        let (loads, stores, util) = run_pair(&base, ArbiterPolicy::Fcfs, RunBudget::quick());
        assert!(util > 0.85, "both streams keep the data array busy: {util}");
        assert!(stores > 0.0 && loads > 0.0);
        // Loads IPC under FCFS is well below its solo rate (~0.3).
        assert!(loads < 0.25, "loads throttled by interleaved stores, got {loads}");
    }

    #[test]
    fn vpc_meets_targets_at_50_50() {
        let base = quick_base();
        let budget = RunBudget::quick();
        let half = Share::new(1, 2).unwrap();
        let arbiter = ArbiterPolicy::Vpc {
            shares: vec![half, half],
            order: vpc_arbiters::IntraThreadOrder::ReadOverWrite,
        };
        let (loads, stores, _) = run_pair(&base, arbiter, budget);
        let loads_target =
            target_ipc(&base, WorkloadSpec::Loads, half, half, budget.warmup, budget.window);
        let stores_target =
            target_ipc(&base, WorkloadSpec::Stores, half, half, budget.warmup, budget.window);
        assert!(
            loads >= loads_target * 0.9,
            "Loads must meet its target: got {loads}, target {loads_target}"
        );
        assert!(
            stores >= stores_target * 0.9,
            "Stores must meet its target: got {stores}, target {stores_target}"
        );
    }
}
