//! Cache capacity management: replacement policies and set-associative sets.
//!
//! The paper's **VPC Capacity Manager** (§4.2) provides each thread a
//! virtual private cache with the same number of sets as the shared cache
//! and at least `alpha_i * ways` of the ways, via a thread-aware replacement
//! policy:
//!
//! 1. Victimize the LRU line owned by *another* thread `j` that occupies
//!    more than its share `alpha_j` of the ways in the destination set.
//! 2. Otherwise, victimize the requesting thread's own LRU line.
//!
//! This crate provides the reusable set-associative machinery ([`TagSet`])
//! plus the [`ReplacementPolicy`] implementations: [`TrueLru`] (the shared
//! baseline) and [`VpcCapacityManager`] with a configurable fairness
//! refinement ([`OverQuotaTieBreak`]) for choosing among multiple over-quota
//! threads.
//!
//! # Examples
//!
//! ```
//! use vpc_capacity::{TagSet, VpcCapacityManager, ReplacementPolicy};
//! use vpc_sim::{LineAddr, Share, ThreadId};
//!
//! // 4 ways, two threads with 2 ways each.
//! let policy = VpcCapacityManager::from_shares(
//!     &[Share::new(1, 2).unwrap(), Share::new(1, 2).unwrap()],
//!     4,
//! );
//! let mut set = TagSet::new(4);
//! for (i, t) in [(0u64, 0u8), (1, 0), (2, 1), (3, 1)] {
//!     let victim = set.find_way_for(LineAddr(i), ThreadId(t), &policy);
//!     set.fill(victim, LineAddr(i), ThreadId(t), i);
//! }
//! // Thread 0 inserting a 3rd line must evict its own LRU (condition 2),
//! // never thread 1's guaranteed ways.
//! let victim = set.find_way_for(LineAddr(9), ThreadId(0), &policy);
//! assert_eq!(set.owner(victim), Some(ThreadId(0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod set;

pub use policy::{OverQuotaTieBreak, ReplacementPolicy, TrueLru, VpcCapacityManager};
pub use set::{Eviction, TagSet, Way};
