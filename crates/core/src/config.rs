//! Whole-system configuration (the paper's Table 1) and workload naming.

use vpc_arbiters::{ArbiterPolicy, IntraThreadOrder};
use vpc_cache::{CapacityPolicy, L2Config};
use vpc_cpu::{CoreConfig, FixedTrace, Op, Workload};
use vpc_mem::{ChannelMode, MemConfig};
use vpc_sim::{Share, ThreadId};
use vpc_workloads::{loads_micro, spec, stores_micro};

/// Configuration of the simulated CMP: cores, shared L2, memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpConfig {
    /// Number of processors (= hardware threads; Table 1 uses 4).
    pub processors: usize,
    /// Per-core pipeline configuration.
    pub core: CoreConfig,
    /// Shared L2 configuration, including the arbiter and capacity policy.
    pub l2: L2Config,
    /// Memory system configuration.
    pub mem: MemConfig,
    /// SDRAM channel topology: per-thread private channels (the paper's
    /// isolation setup) or a shared channel (FCFS or fair-queued).
    pub channels: ChannelMode,
}

impl CmpConfig {
    /// The paper's Table 1 system: 4 processors at 2 GHz, a 16 MB 32-way
    /// 2-bank shared L2 at half core frequency, DDR2-800 with one private
    /// channel per thread. Defaults to FCFS arbiters (the multiprocessor
    /// baseline) and equal VPC way quotas.
    pub fn table1() -> CmpConfig {
        CmpConfig {
            processors: 4,
            core: CoreConfig::table1(),
            l2: L2Config::table1(4, ArbiterPolicy::Fcfs),
            mem: MemConfig::ddr2_800(),
            channels: ChannelMode::PerThread,
        }
    }

    /// Table 1 with `processors` threads (for 1- and 2-thread experiments).
    pub fn table1_with_threads(processors: usize) -> CmpConfig {
        CmpConfig {
            processors,
            core: CoreConfig::table1(),
            l2: L2Config::table1(processors, ArbiterPolicy::Fcfs),
            mem: MemConfig::ddr2_800(),
            channels: ChannelMode::PerThread,
        }
    }

    /// Replaces the SDRAM channel topology.
    pub fn with_channels(mut self, channels: ChannelMode) -> CmpConfig {
        self.channels = channels;
        self
    }

    /// Replaces the L2 arbiter policy on all three shared resources.
    pub fn with_arbiter(mut self, arbiter: ArbiterPolicy) -> CmpConfig {
        self.l2.arbiter = arbiter;
        self
    }

    /// Uses VPC arbiters with the given per-thread bandwidth shares
    /// `beta_i` (and read-over-write intra-thread reordering).
    pub fn with_vpc_shares(mut self, shares: Vec<Share>) -> CmpConfig {
        self.l2.arbiter = ArbiterPolicy::Vpc { shares, order: IntraThreadOrder::ReadOverWrite };
        self
    }

    /// Replaces the capacity policy.
    pub fn with_capacity(mut self, capacity: CapacityPolicy) -> CmpConfig {
        self.l2.capacity = capacity;
        self
    }

    /// Sets the number of L2 banks (Figure 5's sweep).
    pub fn with_banks(mut self, banks: usize) -> CmpConfig {
        self.l2.banks = banks;
        self
    }

    /// The single-processor *private machine* equivalent to a VPC with
    /// bandwidth share `beta` and capacity share `alpha` (§5.3): same
    /// number of sets, `alpha * ways` ways, and all shared-resource
    /// latencies scaled by `1/beta`.
    pub fn private_machine(&self, beta: Share, alpha: Share) -> CmpConfig {
        CmpConfig {
            processors: 1,
            core: self.core,
            l2: self.l2.scaled_private(beta, alpha),
            mem: self.mem,
            channels: ChannelMode::PerThread,
        }
    }
}

impl Default for CmpConfig {
    fn default() -> Self {
        CmpConfig::table1()
    }
}

/// A named workload a thread can run — the vocabulary of the experiment
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// The Table 2 Loads microbenchmark.
    Loads,
    /// The Table 2 Stores microbenchmark.
    Stores,
    /// A synthetic SPEC profile by name (see
    /// [`SPEC_NAMES`](vpc_workloads::SPEC_NAMES)).
    Spec(&'static str),
    /// A compute-only spinner (no memory traffic) — used by the
    /// work-conservation ablation.
    Idle,
}

impl WorkloadSpec {
    /// Instantiates the workload for `thread`.
    ///
    /// # Panics
    ///
    /// Panics if a [`WorkloadSpec::Spec`] name is unknown.
    pub fn build(&self, thread: ThreadId) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Loads => Box::new(loads_micro(thread)),
            WorkloadSpec::Stores => Box::new(stores_micro(thread)),
            WorkloadSpec::Spec(name) => Box::new(
                spec::workload(name, thread)
                    .unwrap_or_else(|| panic!("unknown SPEC profile {name:?}")),
            ),
            WorkloadSpec::Idle => Box::new(FixedTrace::new("idle", vec![Op::NonMem])),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Loads => "Loads",
            WorkloadSpec::Stores => "Stores",
            WorkloadSpec::Spec(name) => name,
            WorkloadSpec::Idle => "idle",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let cfg = CmpConfig::table1();
        assert_eq!(cfg.processors, 4);
        assert_eq!(cfg.l2.banks, 2);
        assert_eq!(cfg.l2.ways, 32);
        assert_eq!(cfg.core.rob_entries, 100);
    }

    #[test]
    fn builders_compose() {
        let cfg =
            CmpConfig::table1().with_banks(8).with_vpc_shares(vec![Share::new(1, 4).unwrap(); 4]);
        assert_eq!(cfg.l2.banks, 8);
        assert_eq!(cfg.l2.arbiter.label(), "VPC");
    }

    #[test]
    fn private_machine_is_uniprocessor() {
        let cfg = CmpConfig::table1();
        let p = cfg.private_machine(Share::new(1, 2).unwrap(), Share::new(1, 4).unwrap());
        assert_eq!(p.processors, 1);
        assert_eq!(p.l2.ways, 8);
        assert_eq!(p.l2.tag_latency, 8);
    }

    #[test]
    fn workload_specs_build() {
        for spec in [
            WorkloadSpec::Loads,
            WorkloadSpec::Stores,
            WorkloadSpec::Spec("art"),
            WorkloadSpec::Idle,
        ] {
            let w = spec.build(ThreadId(0));
            assert_eq!(w.name(), spec.name());
        }
    }

    #[test]
    #[should_panic(expected = "unknown SPEC profile")]
    fn unknown_spec_panics() {
        let _ = WorkloadSpec::Spec("notabench").build(ThreadId(0));
    }
}
