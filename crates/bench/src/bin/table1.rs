//! Prints the simulated system configuration (the paper's Table 1).

use vpc::prelude::*;

fn main() {
    // Accepted for CLI uniformity with the other binaries; printing the
    // configuration spawns no simulation jobs.
    let _ = vpc_bench::jobs_from_args();
    let cfg = CmpConfig::table1();
    println!("== Table 1: 2 GHz CMP System Configuration ==");
    println!("Processors            : {} processors", cfg.processors);
    println!(
        "Reorder buffer        : {} instructions (20 dispatch groups x 5)",
        cfg.core.rob_entries
    );
    println!(
        "Dispatch / retire     : {} / {} per cycle",
        cfg.core.dispatch_width, cfg.core.retire_width
    );
    println!(
        "Load / store queues   : {} entry LRQ, {} entry SRQ",
        cfg.core.lrq_entries, cfg.core.srq_entries
    );
    println!(
        "D-cache               : {} sets x {} ways x {} B lines, {} cycle latency, {} MSHRs, {}-entry LMQ",
        cfg.core.l1.sets, cfg.core.l1.ways, cfg.core.l1.line_bytes, cfg.core.l1.latency,
        cfg.core.l1.mshrs, cfg.core.l1.lmq_entries
    );
    println!(
        "L2 cache              : {} banks, {} sets x {} ways x {} B = {} MB, tag {} cycles, data {} cycles (writes x{}), bus {} cycles",
        cfg.l2.banks, cfg.l2.total_sets, cfg.l2.ways, cfg.l2.line_bytes,
        (cfg.l2.total_sets * cfg.l2.ways * cfg.l2.line_bytes as usize) >> 20,
        cfg.l2.tag_latency, cfg.l2.data_latency, cfg.l2.write_data_accesses, cfg.l2.bus_latency
    );
    println!(
        "Store gathering       : {} entries/thread, retire-at-{}, partial flush on read conflict",
        cfg.l2.sgb_entries, cfg.l2.sgb_retire_at
    );
    println!(
        "Controller            : {} state machines per thread per bank, round-robin selection",
        cfg.l2.sm_per_thread
    );
    println!(
        "Memory                : DDR2-800, {} ranks x {} banks per channel, 1 private channel/thread, closed page",
        cfg.mem.ranks, cfg.mem.banks_per_rank
    );
    println!(
        "                        {} read + {} write buffer entries per thread",
        cfg.mem.transaction_buffer, cfg.mem.write_buffer
    );
}
