//! Trace-driven workloads.
//!
//! The paper drives its cores with sampled instruction traces. This module
//! provides the same capability for users who have real traces: a small
//! line-oriented text format, a [`TraceWorkload`] that replays it (looping,
//! like the paper's steady-state samples), and a recorder that captures any
//! generator's stream into the format.
//!
//! # Format
//!
//! One operation per line; `#` starts a comment. Addresses are cache-line
//! numbers in hex or decimal:
//!
//! ```text
//! # ops: N = non-memory, L <line> = load, S <line> = store, B <n> = bubble
//! N
//! L 0x1a2
//! S 420
//! B 4
//! ```

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use vpc_cpu::{Op, Workload};
use vpc_sim::LineAddr;

/// Error produced when parsing a trace fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// 1-based column of the offending token (0 when the error concerns
    /// the document as a whole, e.g. an empty trace).
    pub column: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}, column {}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// Splits the comment-stripped content of one line into whitespace-
/// separated tokens, each tagged with its 1-based byte column in the
/// original line (comments never precede tokens, so columns agree).
fn tokenize(content: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, ch) in content.char_indices() {
        if ch.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s + 1, &content[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s + 1, &content[s..]));
    }
    out
}

fn parse_line_addr(s: &str) -> Result<LineAddr, String> {
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())?
    } else {
        s.parse::<u64>().map_err(|e| e.to_string())?
    };
    Ok(LineAddr(v))
}

/// Parses the trace text format into a vector of operations.
///
/// Repeated line addresses are accepted: a replay trace legitimately
/// revisits its hot lines (and [`TraceWorkload`] loops the whole trace
/// anyway). Use [`parse_trace_strict`] for footprint-shaped traces where
/// every address must be distinct.
///
/// # Errors
///
/// Returns [`ParseTraceError`] (with line and column context) on the
/// first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<Op>, ParseTraceError> {
    parse_trace_impl(text, false)
}

/// Like [`parse_trace`], but additionally rejects a load or store whose
/// line address was already used by an earlier memory op — the right
/// contract for traces that *define a working set* (one op per line
/// address), where a silent duplicate means the generator is broken.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on the first malformed line or duplicate
/// address; the duplicate message names the line that first used it.
pub fn parse_trace_strict(text: &str) -> Result<Vec<Op>, ParseTraceError> {
    parse_trace_impl(text, true)
}

fn parse_trace_impl(text: &str, strict: bool) -> Result<Vec<Op>, ParseTraceError> {
    let mut ops = Vec::new();
    let mut first_use: HashMap<u64, usize> = HashMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let content = raw.split('#').next().unwrap_or("");
        let tokens = tokenize(content);
        let Some(&(tag_col, tag)) = tokens.first() else {
            continue;
        };
        let err =
            |column: usize, message: String| ParseTraceError { line: line_no, column, message };
        let mut rest = tokens[1..].iter().copied();
        let op = match tag {
            "N" => Op::NonMem,
            "L" | "S" => {
                let (col, addr) = rest
                    .next()
                    .ok_or_else(|| err(tag_col, format!("'{tag}' needs a line address")))?;
                let addr =
                    parse_line_addr(addr).map_err(|e| err(col, format!("bad address: {e}")))?;
                if strict {
                    if let Some(&first) = first_use.get(&addr.0) {
                        return Err(err(
                            col,
                            format!("duplicate address {:#x} (first used at line {first})", addr.0),
                        ));
                    }
                    first_use.insert(addr.0, line_no);
                }
                if tag == "L" {
                    Op::Load(addr)
                } else {
                    Op::Store(addr)
                }
            }
            "B" => {
                let (col, n) =
                    rest.next().ok_or_else(|| err(tag_col, "'B' needs a cycle count".into()))?;
                let n: u8 = n.parse().map_err(|e| err(col, format!("bad bubble count: {e}")))?;
                Op::Bubble(n)
            }
            other => return Err(err(tag_col, format!("unknown op tag {other:?}"))),
        };
        if let Some((col, junk)) = rest.next() {
            return Err(err(col, format!("trailing token {junk:?}")));
        }
        ops.push(op);
    }
    Ok(ops)
}

/// Serializes operations into the trace text format (the inverse of
/// [`parse_trace`]).
pub fn format_trace(ops: &[Op]) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            Op::NonMem => out.push_str("N\n"),
            Op::Load(l) => out.push_str(&format!("L {:#x}\n", l.0)),
            Op::Store(l) => out.push_str(&format!("S {:#x}\n", l.0)),
            Op::Bubble(n) => out.push_str(&format!("B {n}\n")),
        }
    }
    out
}

/// Records the next `n` operations of any workload into the trace format.
pub fn record<W: Workload + ?Sized>(workload: &mut W, n: usize) -> String {
    let ops: Vec<Op> = (0..n).map(|_| workload.next_op()).collect();
    format_trace(&ops)
}

/// A workload replaying a parsed trace in a loop.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    ops: Vec<Op>,
    pos: usize,
}

impl TraceWorkload {
    /// Wraps parsed operations.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> TraceWorkload {
        assert!(!ops.is_empty(), "trace must contain at least one op");
        TraceWorkload { name: name.into(), ops, pos: 0 }
    }

    /// The number of operations in one pass of the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromStr for TraceWorkload {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let ops = parse_trace(s)?;
        if ops.is_empty() {
            return Err(ParseTraceError {
                line: 0,
                column: 0,
                message: "trace contains no operations".into(),
            });
        }
        Ok(TraceWorkload::new("trace", ops))
    }
}

impl Workload for TraceWorkload {
    fn next_op(&mut self) -> Op {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::check::{self, Config};
    use vpc_sim::{ensure_eq, SplitMix64};

    #[test]
    fn parses_all_op_kinds() {
        let text = "# header comment\nN\nL 0x1a2\nS 420\nB 4\n\n# trailing\n";
        let ops = parse_trace(text).unwrap();
        assert_eq!(
            ops,
            vec![Op::NonMem, Op::Load(LineAddr(0x1a2)), Op::Store(LineAddr(420)), Op::Bubble(4)]
        );
    }

    #[test]
    fn reports_line_numbers_in_errors() {
        let err = parse_trace("N\nL\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("needs a line address"));
        let err = parse_trace("X 1\n").unwrap_err();
        assert!(err.message.contains("unknown op tag"));
        let err = parse_trace("N extra\n").unwrap_err();
        assert!(err.message.contains("trailing token"));
        let err = parse_trace("B 300\n").unwrap_err();
        assert!(err.message.contains("bad bubble count"));
    }

    #[test]
    fn inline_comments_are_stripped() {
        let ops = parse_trace("L 7 # the hot line\n").unwrap();
        assert_eq!(ops, vec![Op::Load(LineAddr(7))]);
    }

    #[test]
    fn errors_carry_column_context() {
        // The bad address starts at column 5 of line 2.
        let err = parse_trace("N\n  L oops\n").unwrap_err();
        assert_eq!((err.line, err.column), (2, 5));
        assert!(err.to_string().contains("line 2, column 5"), "got {err}");
        // A missing operand points at the tag that demanded it.
        let err = parse_trace("  B\n").unwrap_err();
        assert_eq!((err.line, err.column), (1, 3));
        // A trailing token points at itself.
        let err = parse_trace("L 1 junk\n").unwrap_err();
        assert_eq!((err.line, err.column), (1, 5));
    }

    #[test]
    fn strict_mode_rejects_duplicate_addresses() {
        let text = "L 0x10\nS 2\nN\nS 0x10\n";
        // The lenient parser replays revisited lines as-is.
        assert_eq!(parse_trace(text).unwrap().len(), 4);
        let err = parse_trace_strict(text).unwrap_err();
        assert_eq!((err.line, err.column), (4, 3));
        assert!(
            err.message.contains("duplicate address 0x10")
                && err.message.contains("first used at line 1"),
            "got: {}",
            err.message
        );
        // Distinct addresses pass strict mode untouched.
        assert_eq!(parse_trace_strict("L 1\nS 2\nB 3\n").unwrap().len(), 3);
    }

    #[test]
    fn trace_workload_loops() {
        let mut w: TraceWorkload = "L 1\nS 2\n".parse().unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_op(), Op::Load(LineAddr(1)));
        assert_eq!(w.next_op(), Op::Store(LineAddr(2)));
        assert_eq!(w.next_op(), Op::Load(LineAddr(1)));
    }

    #[test]
    fn empty_trace_is_rejected() {
        let err = "# only comments\n".parse::<TraceWorkload>().unwrap_err();
        assert!(err.message.contains("no operations"));
    }

    #[test]
    fn recording_a_synthetic_profile_roundtrips() {
        let mut art = crate::spec::workload("art", vpc_sim::ThreadId(0)).unwrap();
        let text = record(&mut art, 500);
        let replay: TraceWorkload = text.parse().unwrap();
        assert_eq!(replay.len(), 500);
        // Replaying yields the identical prefix.
        let mut art2 = crate::spec::workload("art", vpc_sim::ThreadId(0)).unwrap();
        let mut replay = replay;
        for _ in 0..500 {
            assert_eq!(replay.next_op(), art2.next_op());
        }
    }

    fn arb_op(rng: &mut SplitMix64) -> Op {
        match rng.below(4) {
            0 => Op::NonMem,
            1 => Op::Load(LineAddr(rng.below(1 << 40))),
            2 => Op::Store(LineAddr(rng.below(1 << 40))),
            _ => Op::Bubble(1 + rng.below(64) as u8),
        }
    }

    #[test]
    fn format_parse_roundtrip() {
        check::forall_seq("format_parse_roundtrip", Config::cases(256), (1, 199), arb_op, |ops| {
            let text = format_trace(ops);
            let back = parse_trace(&text).map_err(|e| e.to_string())?;
            ensure_eq!(ops, &back[..]);
            Ok(())
        });
    }
}
