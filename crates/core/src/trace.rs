//! Chrome `trace_event` export for [`vpc_sim::trace`] logs.
//!
//! Converts a [`TraceLog`] into the JSON object format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! `traceEvents` array of events with microsecond-style timestamps (we
//! emit processor cycles directly — the viewer's time unit is then
//! "cycles", off by a fixed 10^6 label), thread/process metadata, and an
//! `otherData` block recording the ring's capacity and drop counter.
//!
//! Mapping:
//!
//! * arbiter **grants** become duration events (`ph: "X"`) on the granted
//!   thread's track, lasting the request's service time, with the
//!   fair-queuing virtual start/finish times (Eq. 3'/4) in `args`;
//! * everything else (defer, hit/miss, evict, SGB gather/drain, DRAM
//!   issue, load return) becomes an instant event (`ph: "i"`);
//! * the event `cat` is the resource class (`tag`/`data`/`bus`/`dram`) or
//!   subsystem (`bank`/`sgb`/`core`), so Perfetto's category filter can
//!   isolate one resource;
//! * `tid` is the simulated thread index and `pid` the job index, so a
//!   merged multi-job export shows one process lane per job.

use std::io;
use std::path::Path;

use vpc_sim::trace::{EventData, TraceLog};

use crate::json::JsonValue;

/// A `(label, log)` pair as produced by [`vpc_sim::trace::take_job_logs`].
pub type JobTrace = (String, TraceLog);

fn opt_u64(v: Option<u64>) -> JsonValue {
    match v {
        Some(v) => JsonValue::from(v),
        None => JsonValue::Null,
    }
}

fn event_json(event: &vpc_sim::trace::TraceEvent, pid: usize) -> JsonValue {
    let thread = event.data.thread();
    let mut fields: Vec<(String, JsonValue)> = vec![
        ("name".into(), JsonValue::from(event.data.name())),
        (
            "ph".into(),
            JsonValue::from(if matches!(event.data, EventData::Grant { .. }) { "X" } else { "i" }),
        ),
        ("ts".into(), JsonValue::from(event.at)),
        ("pid".into(), JsonValue::from(pid)),
        ("tid".into(), JsonValue::from(u64::from(thread.0))),
    ];
    let (cat, args): (&str, Vec<(String, JsonValue)>) = match event.data {
        EventData::Grant { resource, kind, service, virtual_start, virtual_finish, .. } => {
            fields.push(("dur".into(), JsonValue::from(service)));
            (
                resource.kind.label(),
                vec![
                    ("resource".into(), JsonValue::from(resource.to_string())),
                    ("kind".into(), JsonValue::from(if kind.is_read() { "read" } else { "write" })),
                    ("virtual_start".into(), opt_u64(virtual_start)),
                    ("virtual_finish".into(), opt_u64(virtual_finish)),
                ],
            )
        }
        EventData::Defer { resource, virtual_start, .. } => (
            resource.kind.label(),
            vec![
                ("resource".into(), JsonValue::from(resource.to_string())),
                ("virtual_start".into(), opt_u64(virtual_start)),
            ],
        ),
        EventData::BankAccess { bank, line, kind, .. } => (
            "bank",
            vec![
                ("bank".into(), JsonValue::from(u64::from(bank))),
                ("line".into(), JsonValue::from(line.to_string())),
                ("kind".into(), JsonValue::from(if kind.is_read() { "read" } else { "write" })),
            ],
        ),
        EventData::Evict { bank, line, victim, dirty, .. } => (
            "bank",
            vec![
                ("bank".into(), JsonValue::from(u64::from(bank))),
                ("line".into(), JsonValue::from(line.to_string())),
                ("victim".into(), JsonValue::from(u64::from(victim.0))),
                ("dirty".into(), JsonValue::from(dirty)),
            ],
        ),
        EventData::SgbGather { line, .. } => {
            ("sgb", vec![("line".into(), JsonValue::from(line.to_string()))])
        }
        EventData::SgbDrain { line, occupancy, .. } => (
            "sgb",
            vec![
                ("line".into(), JsonValue::from(line.to_string())),
                ("occupancy".into(), JsonValue::from(u64::from(occupancy))),
            ],
        ),
        EventData::DramIssue { channel, line, kind, .. } => (
            "dram",
            vec![
                ("channel".into(), JsonValue::from(u64::from(channel))),
                ("line".into(), JsonValue::from(line.to_string())),
                ("kind".into(), JsonValue::from(if kind.is_read() { "read" } else { "write" })),
            ],
        ),
        EventData::LoadReturn { line, .. } => {
            ("core", vec![("line".into(), JsonValue::from(line.to_string()))])
        }
    };
    fields.insert(1, ("cat".into(), JsonValue::from(cat)));
    if matches!(event.data, EventData::Defer { .. }) {
        // Instant-event scope: thread-scoped, so the tick renders on the
        // thread's own track.
        fields.push(("s".into(), JsonValue::from("t")));
    }
    fields.push(("args".into(), JsonValue::Object(args)));
    JsonValue::Object(fields)
}

fn metadata(name: &str, pid: usize, tid: Option<u64>, value: &str) -> JsonValue {
    let mut fields: Vec<(String, JsonValue)> = vec![
        ("name".into(), JsonValue::from(name)),
        ("ph".into(), JsonValue::from("M")),
        ("pid".into(), JsonValue::from(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".into(), JsonValue::from(tid)));
    }
    fields.push(("args".into(), JsonValue::object([("name", JsonValue::from(value))])));
    JsonValue::Object(fields)
}

/// Converts labeled job logs into one Chrome `trace_event` JSON document,
/// with one process lane per job (job index = `pid`, job label = process
/// name) and one track per simulated thread.
pub fn chrome_trace_jobs(jobs: &[JobTrace]) -> JsonValue {
    let mut events = Vec::new();
    let mut retained = 0u64;
    let mut dropped = 0u64;
    for (pid, (label, log)) in jobs.iter().enumerate() {
        events.push(metadata("process_name", pid, None, label));
        let mut threads: Vec<u64> =
            log.events().iter().map(|e| u64::from(e.data.thread().0)).collect();
        threads.sort_unstable();
        threads.dedup();
        for tid in threads {
            events.push(metadata("thread_name", pid, Some(tid), &format!("T{tid}")));
        }
        for event in log.events() {
            events.push(event_json(event, pid));
        }
        retained += log.events().len() as u64;
        dropped += log.dropped();
    }
    JsonValue::object([
        ("traceEvents", JsonValue::Array(events)),
        (
            "otherData",
            JsonValue::object([
                ("clock", JsonValue::from("processor-cycles")),
                ("retained_events", JsonValue::from(retained)),
                ("dropped_events", JsonValue::from(dropped)),
            ]),
        ),
    ])
}

/// Converts a single unlabeled log (e.g. one recorded inline rather than
/// through the job pool) into a Chrome `trace_event` JSON document.
pub fn chrome_trace(label: &str, log: &TraceLog) -> JsonValue {
    chrome_trace_jobs(std::slice::from_ref(&(label.to_string(), log.clone())))
}

/// Writes a Chrome trace document to `path` (pretty-printed, with a
/// trailing newline).
pub fn write_chrome_trace(path: &Path, doc: &JsonValue) -> io::Result<()> {
    std::fs::write(path, doc.pretty() + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::trace::{ResourceId, TraceEvent};
    use vpc_sim::{AccessKind, LineAddr, ThreadId};

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new(4);
        log.push(TraceEvent {
            at: 10,
            data: EventData::Grant {
                resource: ResourceId::data_array(0),
                thread: ThreadId(1),
                kind: AccessKind::Write,
                service: 16,
                virtual_start: Some(100),
                virtual_finish: Some(164),
            },
        });
        log.push(TraceEvent {
            at: 10,
            data: EventData::Defer {
                resource: ResourceId::data_array(0),
                thread: ThreadId(0),
                virtual_start: Some(120),
            },
        });
        log.push(TraceEvent {
            at: 12,
            data: EventData::BankAccess {
                bank: 0,
                thread: ThreadId(1),
                line: LineAddr(0x40),
                kind: AccessKind::Read,
                hit: false,
            },
        });
        for at in 13..20 {
            log.push(TraceEvent {
                at,
                data: EventData::LoadReturn { thread: ThreadId(0), line: LineAddr(at) },
            });
        }
        log
    }

    #[test]
    fn export_is_valid_json_with_expected_shape() {
        let doc = chrome_trace("fig5/sample", &sample_log());
        let parsed = JsonValue::parse(&doc.pretty()).expect("export parses back");
        let JsonValue::Object(fields) = &parsed else { panic!("not an object") };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents present");
        let JsonValue::Array(events) = events else { panic!("traceEvents not an array") };
        // 1 process_name + 2 thread_name metadata + 4 retained events.
        assert_eq!(events.len(), 7);
        let text = doc.pretty();
        assert!(text.contains("\"ph\": \"X\""), "grant is a duration event");
        assert!(text.contains("\"virtual_start\": 100"));
        assert!(text.contains("\"virtual_finish\": 164"));
        assert!(text.contains("\"dropped_events\": 6"), "overflow drops surface in otherData");
    }

    #[test]
    fn job_lanes_get_distinct_pids() {
        let jobs = vec![("job/a".to_string(), sample_log()), ("job/b".to_string(), sample_log())];
        let text = chrome_trace_jobs(&jobs).pretty();
        assert!(text.contains("\"pid\": 1"), "second job gets pid 1");
        assert!(text.contains("job/b"));
    }
}
