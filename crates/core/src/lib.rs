//! # Virtual Private Caches
//!
//! A reproduction of *Virtual Private Caches* (Nesbit, Laudon & Smith,
//! ISCA 2007): microarchitecture mechanisms that give each thread sharing a
//! CMP's L2 cache a guaranteed share of the cache's **bandwidth** (the VPC
//! Arbiters, fair-queuing schedulers on the tag array, data array and data
//! bus) and **capacity** (the VPC Capacity Manager, a way-quota replacement
//! policy) — so that a thread allocated shares `(beta, alpha)` performs at
//! least as well as it would on a real private machine with those
//! resources, regardless of what other threads do.
//!
//! This crate assembles the full simulated system from the substrate
//! crates and exposes the experiment harness that regenerates every table
//! and figure of the paper's evaluation:
//!
//! * [`CmpConfig`] — the paper's Table 1 machine (4 cores @ 2 GHz, 16 MB
//!   32-way 2-bank shared L2 at half core frequency, DDR2-800 with private
//!   per-thread channels).
//! * [`CmpSystem`] — cores + shared L2 + memory, with warm-up/measure
//!   windows.
//! * [`target_ipc`] — the QoS reference: the thread's IPC on the
//!   equivalently-provisioned private machine (§5.3).
//! * [`experiments`] — one runner per figure (5 through 10 plus the
//!   ablations), each returning a typed, printable result.
//!
//! # Quickstart
//!
//! ```
//! use vpc::prelude::*;
//!
//! // A 2-thread system: Loads vs Stores under VPC arbiters with a 75/25
//! // bandwidth split (Figure 8's "VPC 25%" point).
//! let shares = vec![Share::new(3, 4).unwrap(), Share::new(1, 4).unwrap()];
//! let mut cfg = CmpConfig::table1_with_threads(2).with_vpc_shares(shares);
//! cfg.l2.total_sets = 512; // doc-test sized
//! let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Stores]);
//! let m = sys.run_measured(10_000, 20_000);
//! assert!(m.ipc[0] > 0.0 && m.ipc[1] > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod json;
pub mod metrics;
pub mod report;
pub mod system;
pub mod target;
pub mod trace;
pub mod vpm;

pub use config::{CmpConfig, WorkloadSpec};
pub use system::{
    cycle_skipping_default, set_cycle_skipping_default, CmpSystem, Measurement, Snapshot,
};
pub use target::target_ipc;
pub use vpm::{VpmAllocation, VpmConfig, VpmError};

/// Convenient glob-import surface for examples and experiment binaries.
pub mod prelude {
    pub use crate::config::{CmpConfig, WorkloadSpec};
    pub use crate::metrics::{
        harmonic_mean, improvement_pct, minimum, normalized_ipcs, weighted_speedup,
    };
    pub use crate::system::{CmpSystem, Measurement};
    pub use crate::target::target_ipc;
    pub use vpc_arbiters::{ArbiterPolicy, IntraThreadOrder};
    pub use vpc_cache::CapacityPolicy;
    pub use vpc_sim::{Share, ThreadId};
}
