//! Fair-queuing scheduling state for a *shared* memory channel.
//!
//! The paper's evaluation gives every thread a private SDRAM channel to
//! isolate cache effects (§5.1), but the broader VPM framework manages
//! main-memory bandwidth with the same fair-queuing principles — the FQ
//! memory scheduler of Nesbit et al. that the paper builds on (§2.1). This
//! module implements that per-thread virtual-time bookkeeping for a shared
//! channel: each thread `i` holds a share `beta_i` of the channel, a
//! `R.S_i`-style register tracks its virtual clock, and the scheduler
//! services the candidate with the earliest virtual finish time.

use vpc_sim::{Cycle, Share, ThreadId};

/// Virtual-time registers for fair-queuing a shared memory channel.
#[derive(Debug, Clone)]
pub struct FqClock {
    r_s: Vec<u64>,
    shares: Vec<Share>,
    backlog: Vec<usize>,
}

impl FqClock {
    /// Creates the clock for `threads` threads with the given shares
    /// (missing entries get zero share).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize, shares: &[Share]) -> FqClock {
        assert!(threads > 0, "at least one thread required");
        let mut s = vec![Share::ZERO; threads];
        for (i, &share) in shares.iter().enumerate().take(threads) {
            s[i] = share;
        }
        FqClock { r_s: vec![0; threads], shares: s, backlog: vec![0; threads] }
    }

    /// Equal shares for `threads` threads.
    pub fn equal(threads: usize) -> FqClock {
        let share = Share::new(1, threads as u32).expect("1/threads is a valid share");
        FqClock::new(threads, &vec![share; threads])
    }

    /// `thread`'s configured share.
    pub fn share(&self, thread: ThreadId) -> Share {
        self.shares[thread.index()]
    }

    /// Reconfigures `thread`'s share.
    pub fn set_share(&mut self, thread: ThreadId, share: Share) {
        self.shares[thread.index()] = share;
    }

    /// Notes a request arriving for `thread` at `now` (Eq. 6: an arrival to
    /// an idle thread resets its stale virtual clock).
    pub fn on_arrival(&mut self, thread: ThreadId, now: Cycle) {
        let t = thread.index();
        if self.backlog[t] == 0 && self.r_s[t] < now {
            self.r_s[t] = now;
        }
        self.backlog[t] += 1;
    }

    /// Picks among `candidates` (thread, service-time estimate) the one to
    /// schedule next: earliest virtual finish among guaranteed threads,
    /// else the first zero-share candidate. Returns the winning index into
    /// `candidates` and charges the winner's virtual clock.
    pub fn pick(&mut self, candidates: &[(ThreadId, u64)]) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (i, &(thread, service)) in candidates.iter().enumerate() {
            let t = thread.index();
            if let Some(virt) = self.shares[t].scaled_latency(service) {
                let finish = self.r_s[t] + virt;
                if best.is_none_or(|(f, _)| finish < f) {
                    best = Some((finish, i));
                }
            }
        }
        let winner = match best {
            Some((finish, i)) => {
                let t = candidates[i].0.index();
                self.r_s[t] = finish;
                i
            }
            // Only zero-share candidates: excess bandwidth, first come.
            None => {
                if candidates.is_empty() {
                    return None;
                }
                0
            }
        };
        let t = candidates[winner].0.index();
        self.backlog[t] = self.backlog[t].saturating_sub(1);
        Some(winner)
    }

    /// `R.S_i` for inspection.
    pub fn virtual_start(&self, thread: ThreadId) -> u64 {
        self.r_s[thread.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_alternate_backlogged_threads() {
        let mut clock = FqClock::equal(2);
        for now in 0..8u64 {
            clock.on_arrival(ThreadId((now % 2) as u8), 0);
        }
        let mut grants = [0u32; 2];
        for _ in 0..8 {
            let candidates = [(ThreadId(0), 70u64), (ThreadId(1), 70u64)];
            let winner = clock.pick(&candidates).unwrap();
            grants[winner] += 1;
        }
        assert_eq!(grants[0], grants[1], "equal shares alternate: {grants:?}");
    }

    #[test]
    fn larger_share_wins_more_often() {
        let mut clock = FqClock::new(2, &[Share::new(3, 4).unwrap(), Share::new(1, 4).unwrap()]);
        for _ in 0..100 {
            clock.on_arrival(ThreadId(0), 0);
            clock.on_arrival(ThreadId(1), 0);
        }
        let mut grants = [0u32; 2];
        for _ in 0..100 {
            let candidates = [(ThreadId(0), 70u64), (ThreadId(1), 70u64)];
            grants[clock.pick(&candidates).unwrap()] += 1;
        }
        let ratio = f64::from(grants[0]) / f64::from(grants[1]);
        assert!((2.5..3.5).contains(&ratio), "3:1 shares give ~3:1 grants, got {ratio}");
    }

    #[test]
    fn idle_thread_is_not_credited() {
        let mut clock = FqClock::equal(2);
        clock.on_arrival(ThreadId(0), 0);
        // Thread 0 runs solo for a long virtual stretch.
        for _ in 0..10 {
            clock.pick(&[(ThreadId(0), 70)]);
            clock.on_arrival(ThreadId(0), 0);
        }
        // Thread 1 wakes at t=1000: its clock starts at *now*, not zero.
        clock.on_arrival(ThreadId(1), 1000);
        assert_eq!(clock.virtual_start(ThreadId(1)), 1000);
    }

    #[test]
    fn zero_share_only_wins_alone() {
        let mut clock = FqClock::new(2, &[Share::FULL, Share::ZERO]);
        clock.on_arrival(ThreadId(0), 0);
        clock.on_arrival(ThreadId(1), 0);
        let winner = clock.pick(&[(ThreadId(1), 70), (ThreadId(0), 70)]).unwrap();
        assert_eq!(winner, 1, "guaranteed thread beats zero-share thread");
        let winner = clock.pick(&[(ThreadId(1), 70)]).unwrap();
        assert_eq!(winner, 0, "zero-share thread served when alone");
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut clock = FqClock::equal(2);
        assert_eq!(clock.pick(&[]), None);
    }
}
