//! A minimal wall-clock benchmark harness.
//!
//! Replaces the external Criterion dependency for this workspace's needs:
//! fixed iteration counts, an explicit warmup, and a median + p10/p90
//! summary per operation, printed as a table or as machine-readable JSON
//! (`--json`) suitable for a checked-in `BENCH_*.json` baseline.
//!
//! Two measurement shapes cover every scenario the old Criterion benches
//! had:
//!
//! * [`Suite::bench`] — a routine that can run back to back. Cheap
//!   routines are auto-batched so the `Instant` overhead does not drown
//!   nanosecond-scale operations.
//! * [`Suite::bench_batched`] — a routine that consumes a fresh input per
//!   iteration (the setup runs outside the timed region).

use std::hint::black_box;
use std::time::Instant;

use vpc::report::{to_json, JsonValue, ToJson};

/// Spread one timed sample across enough inner repetitions that it spans
/// at least this many nanoseconds.
const TARGET_SAMPLE_NS: u128 = 5_000;

/// One benchmark's wall-clock summary, in nanoseconds per operation.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Scenario name, e.g. `arbiter_grant/FCFS`.
    pub name: String,
    /// Number of timed samples taken.
    pub iters: u32,
    /// Median time per operation.
    pub median_ns: f64,
    /// 10th-percentile time per operation.
    pub p10_ns: f64,
    /// 90th-percentile time per operation.
    pub p90_ns: f64,
    /// Mean time per operation.
    pub mean_ns: f64,
}

impl ToJson for BenchResult {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("name", JsonValue::from(self.name.as_str())),
            ("iters", JsonValue::from(u64::from(self.iters))),
            ("median_ns", JsonValue::from(self.median_ns)),
            ("p10_ns", JsonValue::from(self.p10_ns)),
            ("p90_ns", JsonValue::from(self.p90_ns)),
            ("mean_ns", JsonValue::from(self.mean_ns)),
        ])
    }
}

/// A named collection of benchmarks sharing CLI flags and output format.
pub struct Suite {
    name: String,
    quick: bool,
    json: bool,
    results: Vec<BenchResult>,
}

impl Suite {
    /// Creates a suite, reading `--quick` / `VPC_QUICK=1` and `--json`
    /// from the process arguments and environment.
    pub fn from_args(name: &str) -> Suite {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("VPC_QUICK").is_ok_and(|v| v == "1");
        Suite::new(name, quick, crate::json_requested())
    }

    /// Creates a suite with explicit settings (used by tests).
    pub fn new(name: &str, quick: bool, json: bool) -> Suite {
        Suite { name: name.to_string(), quick, json, results: Vec::new() }
    }

    /// The effective sample count: `--quick` divides by 10 (minimum 3) so
    /// smoke runs stay fast.
    pub fn effective_iters(&self, iters: u32) -> u32 {
        if self.quick {
            (iters / 10).max(3)
        } else {
            iters
        }
    }

    /// Times `routine` for `iters` samples after a short warmup,
    /// auto-batching cheap routines so each sample spans at least ~5µs.
    pub fn bench<T>(&mut self, name: &str, iters: u32, mut routine: impl FnMut() -> T) {
        let iters = self.effective_iters(iters);
        for _ in 0..(iters / 10).max(1) {
            black_box(routine());
        }
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1);
        let inner = (TARGET_SAMPLE_NS / once).clamp(1, 10_000) as u32;
        let mut samples = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / f64::from(inner));
        }
        self.push(name, iters, samples);
    }

    /// Times `routine` on a fresh `setup()` input per sample; only the
    /// routine is inside the timed region.
    pub fn bench_batched<S, T>(
        &mut self,
        name: &str,
        iters: u32,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        let iters = self.effective_iters(iters);
        for _ in 0..(iters / 10).max(1) {
            black_box(routine(setup()));
        }
        let mut samples = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
        }
        self.push(name, iters, samples);
    }

    fn push(&mut self, name: &str, iters: u32, samples: Vec<f64>) {
        let result = summarize(name, iters, samples);
        if !self.json {
            println!(
                "{:<44} median {:>12}  p10 {:>12}  p90 {:>12}",
                result.name,
                format_ns(result.median_ns),
                format_ns(result.p10_ns),
                format_ns(result.p90_ns),
            );
        }
        self.results.push(result);
    }

    /// Prints the suite footer (or the whole JSON document) and returns
    /// the collected results.
    pub fn finish(self) -> Vec<BenchResult> {
        if self.json {
            println!("{}", to_json(&self));
        } else {
            println!("{} scenario(s) in suite '{}'", self.results.len(), self.name);
        }
        self.results
    }
}

impl ToJson for Suite {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("suite", JsonValue::from(self.name.as_str())),
            ("quick", JsonValue::from(self.quick)),
            ("results", JsonValue::Array(self.results.iter().map(ToJson::to_json_value).collect())),
        ])
    }
}

fn summarize(name: &str, iters: u32, mut samples: Vec<f64>) -> BenchResult {
    assert!(!samples.is_empty(), "benchmark '{name}' produced no samples");
    samples.sort_by(|a, b| a.total_cmp(b));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    BenchResult {
        name: name.to_string(),
        iters,
        median_ns: percentile(&samples, 0.50),
        p10_ns: percentile(&samples, 0.10),
        p90_ns: percentile(&samples, 0.90),
        mean_ns: mean,
    }
}

/// Linear-interpolated percentile over a sorted sample vector.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates_between_ranks() {
        let sorted = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&sorted, 0.0), 10.0);
        assert_eq!(percentile(&sorted, 0.5), 30.0);
        assert_eq!(percentile(&sorted, 1.0), 50.0);
        assert_eq!(percentile(&sorted, 0.10), 14.0);
        assert_eq!(percentile(&sorted, 0.90), 46.0);
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn summarize_orders_the_quantiles() {
        let r = summarize("x", 4, vec![4.0, 1.0, 3.0, 2.0]);
        assert!(r.p10_ns <= r.median_ns && r.median_ns <= r.p90_ns);
        assert_eq!(r.mean_ns, 2.5);
        assert_eq!(r.median_ns, 2.5);
    }

    #[test]
    fn quick_mode_divides_iterations() {
        let quick = Suite::new("s", true, false);
        assert_eq!(quick.effective_iters(100), 10);
        assert_eq!(quick.effective_iters(10), 3);
        let full = Suite::new("s", false, false);
        assert_eq!(full.effective_iters(100), 100);
    }

    #[test]
    fn batched_bench_counts_iterations_and_reports() {
        let mut suite = Suite::new("unit", false, true);
        let mut setups = 0u32;
        let mut runs = 0u32;
        suite.bench_batched("counting", 20, || setups += 1, |()| runs += 1);
        // 2 warmup batches + 20 timed samples.
        assert_eq!(setups, 22);
        assert_eq!(runs, 22);
        let results = suite.finish();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "counting");
        assert_eq!(results[0].iters, 20);
        assert!(results[0].median_ns >= 0.0);
    }

    #[test]
    fn suite_json_has_the_baseline_shape() {
        let suite = Suite {
            name: "components".into(),
            quick: false,
            json: true,
            results: vec![BenchResult {
                name: "arbiter_grant/FCFS".into(),
                iters: 100,
                median_ns: 1234.5,
                p10_ns: 1000.0,
                p90_ns: 2000.0,
                mean_ns: 1300.25,
            }],
        };
        let got = to_json(&suite);
        let want = concat!(
            "{\n",
            "  \"suite\": \"components\",\n",
            "  \"quick\": false,\n",
            "  \"results\": [\n",
            "    {\n",
            "      \"name\": \"arbiter_grant/FCFS\",\n",
            "      \"iters\": 100,\n",
            "      \"median_ns\": 1234.5,\n",
            "      \"p10_ns\": 1000.0,\n",
            "      \"p90_ns\": 2000.0,\n",
            "      \"mean_ns\": 1300.25\n",
            "    }\n",
            "  ]\n",
            "}"
        );
        assert_eq!(got, want);
    }
}
