//! Figure 6: L2 cache utilization of the SPEC benchmarks (solo).
//!
//! Each synthetic SPEC profile runs alone on the baseline 2-bank cache.
//! The paper's shape: data-array utilization dominates for most
//! benchmarks, averages around 26% of a cache bank's bandwidth, and for
//! the streaming benchmarks (equake, swim) the *tag* array is busier than
//! the data array because misses perform multiple tag accesses.

use std::fmt;

use vpc_cache::L2Utilization;
use vpc_sim::exec::{self, Job};
use vpc_workloads::SPEC_NAMES;

use crate::config::{CmpConfig, WorkloadSpec};
use crate::experiments::{bar, pct, RunBudget};
use crate::system::CmpSystem;

/// One benchmark's bar group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Row {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Solo utilization of the three shared resources.
    pub util: L2Utilization,
    /// Solo IPC (used by later figures for normalization).
    pub ipc: f64,
}

/// The full Figure 6 series, in the paper's plotting order.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Result {
    /// One row per SPEC benchmark.
    pub rows: Vec<Fig6Row>,
}

impl Fig6Result {
    /// Finds a benchmark's row.
    pub fn row(&self, benchmark: &str) -> Option<&Fig6Row> {
        self.rows.iter().find(|r| r.benchmark == benchmark)
    }

    /// Mean data-array utilization (the paper reports ~26%).
    pub fn mean_data_util(&self) -> f64 {
        self.rows.iter().map(|r| r.util.data_array).sum::<f64>() / self.rows.len() as f64
    }
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 6: SPEC L2 Cache Utilization (solo, 2 banks)")?;
        writeln!(f, "{:<10} {:>10} {:>10} {:>10} {:>8}", "benchmark", "data", "bus", "tag", "IPC")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>10} {:>10} {:>10} {:>8.3}  {}",
                r.benchmark,
                pct(r.util.data_array),
                pct(r.util.data_bus),
                pct(r.util.tag_array),
                r.ipc,
                bar(r.util.data_array, 24),
            )?;
        }
        writeln!(f, "mean data-array utilization: {} (paper: ~26%)", pct(self.mean_data_util()))
    }
}

/// Runs one benchmark alone on the baseline cache and returns its row.
pub fn run_one(base: &CmpConfig, benchmark: &'static str, budget: RunBudget) -> Fig6Row {
    let mut cfg = base.clone();
    cfg.processors = 1;
    cfg.l2.threads = 1;
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Spec(benchmark)]);
    let m = sys.run_measured(budget.warmup, budget.window);
    Fig6Row { benchmark, util: m.util, ipc: m.ipc[0] }
}

/// Runs the full 18-benchmark series, one parallel job per benchmark.
pub fn run(base: &CmpConfig, budget: RunBudget) -> Fig6Result {
    let jobs = SPEC_NAMES
        .iter()
        .map(|&b| Job::new(format!("fig6/{b}"), move || run_one(base, b, budget)))
        .collect();
    Fig6Result { rows: exec::map_indexed(jobs, exec::jobs()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggressive_benchmarks_use_more_data_bandwidth() {
        let base = CmpConfig::table1();
        let budget = RunBudget::quick();
        let art = run_one(&base, "art", budget);
        let sixtrack = run_one(&base, "sixtrack", budget);
        assert!(
            art.util.data_array > 2.0 * sixtrack.util.data_array,
            "art ({:.3}) should dwarf sixtrack ({:.3})",
            art.util.data_array,
            sixtrack.util.data_array
        );
    }

    #[test]
    fn streaming_benchmarks_invert_tag_vs_data() {
        let base = CmpConfig::table1();
        let budget = RunBudget::quick();
        let swim = run_one(&base, "swim", budget);
        assert!(
            swim.util.tag_array > swim.util.data_array * 0.9,
            "swim's misses make the tag array at least as busy as data: {:?}",
            swim.util
        );
        let crafty = run_one(&base, "crafty", budget);
        assert!(
            crafty.util.data_array > crafty.util.tag_array,
            "hit-dominated crafty keeps the data array busier: {:?}",
            crafty.util
        );
    }
}
