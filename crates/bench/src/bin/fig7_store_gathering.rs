//! Figure 7: L2 write fraction and store gathering rate.

use std::time::Instant;

use vpc::experiments::fig7;
use vpc::prelude::*;
use vpc::report::{to_json, Fig7Report};

fn main() {
    let budget = vpc_bench::budget_from_args();
    let jobs = vpc_bench::jobs_from_args();
    let trace_path = vpc_bench::trace_from_args();
    let start = Instant::now();
    let result = fig7::run(&CmpConfig::table1(), budget);
    let wall = start.elapsed();
    if vpc_bench::json_requested() {
        println!("{}", to_json(&Fig7Report::from(&result)));
    } else {
        vpc_bench::header("Figure 7", budget);
        println!("{result}");
    }
    vpc_bench::report_timings("fig7", jobs, wall);
    if let Some(path) = &trace_path {
        vpc_bench::write_job_traces(path);
    }
}
