//! Cache hierarchy configuration (the cache rows of the paper's Table 1).

use vpc_sim::Share;

use vpc_arbiters::ArbiterPolicy;

/// Which replacement policy manages the shared L2's capacity.
#[derive(Debug, Clone, PartialEq)]
pub enum CapacityPolicy {
    /// Global true LRU — the unmanaged shared baseline.
    Lru,
    /// The VPC Capacity Manager with per-thread capacity shares `alpha_i`.
    Vpc {
        /// Capacity share per thread; missing entries get zero quota.
        shares: Vec<Share>,
    },
}

impl CapacityPolicy {
    /// Equal VPC way shares for `threads` threads (the evaluation's
    /// configuration: `alpha_i = 1/threads`, no unallocated ways).
    pub fn vpc_equal(threads: usize) -> CapacityPolicy {
        let share = Share::new(1, threads as u32).expect("1/threads is a valid share");
        CapacityPolicy::Vpc { shares: vec![share; threads] }
    }
}

/// Configuration of the shared L2 cache (Table 1: 16MB, 32 ways, 64-byte
/// lines, 2 banks at half core frequency, 4-cycle tag array, 8-cycle data
/// array, 16-byte data bus, 8 controller state machines per thread per
/// bank, 8-entry store gathering buffers with a retire-at-6 policy).
#[derive(Debug, Clone, PartialEq)]
pub struct L2Config {
    /// Number of hardware threads sharing the cache.
    pub threads: usize,
    /// Number of address-interleaved cache banks.
    pub banks: usize,
    /// Total sets across all banks.
    pub total_sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Tag array access latency (processor cycles).
    pub tag_latency: u64,
    /// Data array read / single-access latency (processor cycles).
    pub data_latency: u64,
    /// Store writes perform this many back-to-back data-array accesses
    /// (ECC covers 32-byte segments: read-merge-write, §3.1).
    pub write_data_accesses: u64,
    /// Data-bus occupancy of one full line transfer (64 bytes over a
    /// 16-byte bus at half core frequency = 8 processor cycles).
    pub bus_latency: u64,
    /// Critical-word latency: cycles from bus grant until the requesting
    /// core sees its data.
    pub critical_word_latency: u64,
    /// One-way interconnect latency from core to bank (processor cycles).
    pub interconnect_latency: u64,
    /// Cache controller state machines per thread per bank.
    pub sm_per_thread: usize,
    /// Store gathering buffer entries per thread per bank.
    pub sgb_entries: usize,
    /// Retire-at-n high-water mark: the SGB starts retiring stores (and
    /// inverts read-over-write) at this occupancy.
    pub sgb_retire_at: usize,
    /// Cycles after which a quiescent SGB drains its stores anyway; `None`
    /// parks stores indefinitely below the high-water mark, as the strict
    /// retire-at-n policy would.
    pub sgb_idle_drain: Option<u64>,
    /// Tag-array accesses performed by a miss in addition to hits' single
    /// lookup: victim/state update and fill update. Misses therefore make
    /// `1 + extra_tag_accesses_per_miss` tag accesses (§5.2's observation
    /// that equake and swim's misses require multiple tag accesses).
    pub extra_tag_accesses_per_miss: u64,
    /// Per-thread per-bank input queue depth (crossbar port credits).
    pub input_queue_cap: usize,
    /// Arbiter policy for the tag array, data array and data bus.
    pub arbiter: ArbiterPolicy,
    /// Optional per-resource overrides: in full generality the VPC control
    /// registers allocate each bandwidth resource independently (§4); when
    /// `None`, the resource uses `arbiter`.
    pub tag_arbiter: Option<ArbiterPolicy>,
    /// Override for the data array (see [`L2Config::tag_arbiter`]).
    pub data_arbiter: Option<ArbiterPolicy>,
    /// Override for the data bus (see [`L2Config::tag_arbiter`]).
    pub bus_arbiter: Option<ArbiterPolicy>,
    /// Replacement / capacity management policy.
    pub capacity: CapacityPolicy,
}

impl L2Config {
    /// Table 1's shared L2 for `threads` processors with the given arbiter,
    /// equal VPC way quotas, and 2 banks.
    pub fn table1(threads: usize, arbiter: ArbiterPolicy) -> L2Config {
        L2Config {
            threads,
            banks: 2,
            // 16 MB / 64 B lines / 32 ways = 8192 sets.
            total_sets: 8192,
            ways: 32,
            line_bytes: 64,
            tag_latency: 4,
            data_latency: 8,
            write_data_accesses: 2,
            bus_latency: 8,
            critical_word_latency: 2,
            interconnect_latency: 2,
            sm_per_thread: 8,
            sgb_entries: 8,
            sgb_retire_at: 6,
            sgb_idle_drain: Some(2000),
            extra_tag_accesses_per_miss: 2,
            input_queue_cap: 4,
            arbiter,
            tag_arbiter: None,
            data_arbiter: None,
            bus_arbiter: None,
            capacity: CapacityPolicy::vpc_equal(threads),
        }
    }

    /// The effective arbiter for each resource: (tag, data, bus).
    pub fn resource_arbiters(&self) -> (&ArbiterPolicy, &ArbiterPolicy, &ArbiterPolicy) {
        (
            self.tag_arbiter.as_ref().unwrap_or(&self.arbiter),
            self.data_arbiter.as_ref().unwrap_or(&self.arbiter),
            self.bus_arbiter.as_ref().unwrap_or(&self.arbiter),
        )
    }

    /// Sets per bank.
    ///
    /// # Panics
    ///
    /// Panics if `total_sets` is not divisible by `banks`.
    pub fn sets_per_bank(&self) -> usize {
        assert!(self.total_sets.is_multiple_of(self.banks), "sets must divide evenly across banks");
        self.total_sets / self.banks
    }

    /// The bank a line maps to (low line-address bits, so a 64-byte-stride
    /// stream interleaves across banks).
    pub fn bank_of(&self, line: vpc_sim::LineAddr) -> usize {
        (line.0 % self.banks as u64) as usize
    }

    /// The set (within its bank) a line maps to.
    pub fn set_of(&self, line: vpc_sim::LineAddr) -> usize {
        ((line.0 / self.banks as u64) % self.sets_per_bank() as u64) as usize
    }

    /// Data-array occupancy of a store write (ECC read-merge-write).
    pub fn write_latency(&self) -> u64 {
        self.data_latency * self.write_data_accesses
    }

    /// Scales the shared-resource latencies by `1/beta` to model the
    /// private machine equivalent to a VPC with bandwidth share `beta`
    /// (§5.3: "all resource latencies are scaled by 1/beta_i").
    ///
    /// # Panics
    ///
    /// Panics if `beta` is zero.
    pub fn scaled_private(&self, beta: Share, alpha: Share) -> L2Config {
        assert!(!beta.is_zero(), "cannot build a private machine with zero bandwidth");
        let scale = |lat: u64| beta.scaled_latency(lat).expect("nonzero share");
        let ways = (alpha.of_ways(self.ways as u32) as usize).max(1);
        L2Config {
            threads: 1,
            tag_latency: scale(self.tag_latency),
            data_latency: scale(self.data_latency),
            bus_latency: scale(self.bus_latency),
            ways,
            arbiter: ArbiterPolicy::RowFcfs,
            tag_arbiter: None,
            data_arbiter: None,
            bus_arbiter: None,
            capacity: CapacityPolicy::Lru,
            ..self.clone()
        }
    }
}

/// Configuration of a private L1 data cache (Table 1: 16KB, 4 ways, 64-byte
/// lines, 2-cycle latency, 16 MSHRs, write-through).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Config {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in processor cycles.
    pub latency: u64,
    /// Miss status holding registers (outstanding line fetches).
    pub mshrs: usize,
    /// Load-miss-queue entries: the maximum L2 load requests in flight.
    /// Models the 970's LMQ, whose limited depth (and reject-induced
    /// out-of-order allocation) keeps a single thread from saturating more
    /// than a few banks (Figure 5 discussion).
    pub lmq_entries: usize,
}

impl L1Config {
    /// Table 1's 16KB 4-way D-cache with 16 MSHRs and an 8-entry LMQ.
    pub fn table1() -> L1Config {
        L1Config {
            // 16 KB / 64 B / 4 ways = 64 sets.
            sets: 64,
            ways: 4,
            line_bytes: 64,
            latency: 2,
            mshrs: 16,
            lmq_entries: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::LineAddr;

    #[test]
    fn table1_geometry() {
        let cfg = L2Config::table1(4, ArbiterPolicy::Fcfs);
        assert_eq!(cfg.sets_per_bank(), 4096);
        assert_eq!(cfg.write_latency(), 16);
        // 16 MB total.
        assert_eq!(cfg.total_sets * cfg.ways * cfg.line_bytes as usize, 16 << 20);
    }

    #[test]
    fn consecutive_lines_interleave_banks() {
        let cfg = L2Config::table1(4, ArbiterPolicy::Fcfs);
        assert_eq!(cfg.bank_of(LineAddr(0)), 0);
        assert_eq!(cfg.bank_of(LineAddr(1)), 1);
        assert_eq!(cfg.bank_of(LineAddr(2)), 0);
        assert_eq!(cfg.set_of(LineAddr(0)), 0);
        assert_eq!(cfg.set_of(LineAddr(2)), 1);
    }

    #[test]
    fn scaled_private_scales_latencies_and_ways() {
        let cfg = L2Config::table1(4, ArbiterPolicy::Fcfs);
        let half = Share::new(1, 2).unwrap();
        let quarter = Share::new(1, 4).unwrap();
        let p = cfg.scaled_private(half, quarter);
        assert_eq!(p.tag_latency, 8);
        assert_eq!(p.data_latency, 16);
        assert_eq!(p.bus_latency, 16);
        assert_eq!(p.ways, 8);
        assert_eq!(p.threads, 1);
    }

    #[test]
    #[should_panic(expected = "zero bandwidth")]
    fn scaled_private_rejects_zero_share() {
        let cfg = L2Config::table1(4, ArbiterPolicy::Fcfs);
        let _ = cfg.scaled_private(Share::ZERO, Share::FULL);
    }

    #[test]
    fn per_resource_overrides_apply() {
        let mut cfg = L2Config::table1(2, ArbiterPolicy::Fcfs);
        cfg.data_arbiter = Some(ArbiterPolicy::vpc_equal(2));
        let (tag, data, bus) = cfg.resource_arbiters();
        assert_eq!(tag.label(), "FCFS");
        assert_eq!(data.label(), "VPC");
        assert_eq!(bus.label(), "FCFS");
        // The private machine drops the overrides.
        let p = cfg.scaled_private(Share::new(1, 2).unwrap(), Share::FULL);
        assert!(p.data_arbiter.is_none());
    }

    #[test]
    fn l1_table1_geometry() {
        let cfg = L1Config::table1();
        assert_eq!(cfg.sets * cfg.ways * cfg.line_bytes as usize, 16 << 10);
    }
}
