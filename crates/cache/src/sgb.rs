//! Per-thread bank port: input queue, load queue, and store gathering
//! buffer (§3.1).
//!
//! Within a cache bank, each processor owns a store gathering buffer.
//! Incoming stores merge with pending stores to the same line; loads bypass
//! stores (read-over-write) after a dependence check. A load hitting a
//! pending store's line triggers a *partial flush*: the conflicting store
//! and all older stores retire to the L2 before the load proceeds. When
//! occupancy reaches the high-water mark `n` the buffer retires stores and
//! loads stop bypassing (RoW inversion) until occupancy falls below `n`
//! (the *retire-at-n* policy).

use std::collections::VecDeque;

use vpc_sim::trace::{self, EventData, TraceEvent};
use vpc_sim::{CacheRequest, Counter, Cycle, LineAddr};

/// One gathered store entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SgbEntry {
    line: LineAddr,
    /// Original request token of the first store gathered into the entry.
    token: u64,
    /// Entry must retire before any load bypasses (partial flush marker).
    flush: bool,
}

/// Statistics the paper's Figure 7 reports per benchmark.
#[derive(Debug, Clone, Copy, Default)]
pub struct SgbStats {
    /// Stores that arrived at the buffer.
    pub stores_in: Counter,
    /// Stores merged into an existing entry (gathered: no separate L2
    /// access needed).
    pub stores_gathered: Counter,
    /// Write requests retired to the L2 (after gathering).
    pub writes_out: Counter,
    /// Loads passed to the L2.
    pub loads_out: Counter,
    /// Partial flushes triggered by load-store line conflicts.
    pub partial_flushes: Counter,
}

impl SgbStats {
    /// Fraction of stores gathered with other stores (Figure 7's
    /// "store gathering rate").
    pub fn gathering_rate(&self) -> f64 {
        self.stores_gathered.fraction_of(self.stores_in.get())
    }
}

/// A request the port is ready to hand to the bank controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortCandidate {
    /// The request (writes carry the token of their first gathered store).
    pub request: CacheRequest,
    /// True if this request came from the store gathering buffer.
    pub is_store_retire: bool,
}

/// The per-thread, per-bank request port.
#[derive(Debug)]
pub struct ThreadPort {
    /// Owning hardware thread.
    thread: vpc_sim::ThreadId,
    /// In-order arrivals from the interconnect, awaiting intake.
    in_q: VecDeque<(Cycle, CacheRequest)>,
    /// Loads ready for (or awaiting) controller selection.
    loads: VecDeque<CacheRequest>,
    /// Gathered stores, oldest first.
    sgb: VecDeque<SgbEntry>,
    capacity: usize,
    retire_at: usize,
    idle_drain: Option<u64>,
    /// Last cycle a store entered or retired (for idle draining).
    last_store_activity: Cycle,
    stats: SgbStats,
}

impl ThreadPort {
    /// Creates an empty port for `thread` with an SGB of `capacity` entries
    /// that begins retiring at `retire_at` occupancy.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < retire_at <= capacity`.
    pub fn new(
        thread: vpc_sim::ThreadId,
        capacity: usize,
        retire_at: usize,
        idle_drain: Option<u64>,
    ) -> ThreadPort {
        assert!(retire_at > 0 && retire_at <= capacity, "retire-at must be in 1..=capacity");
        ThreadPort {
            thread,
            in_q: VecDeque::new(),
            loads: VecDeque::new(),
            sgb: VecDeque::new(),
            capacity,
            retire_at,
            idle_drain,
            last_store_activity: 0,
            stats: SgbStats::default(),
        }
    }

    /// Requests buffered in the input queue (for crossbar port credits).
    pub fn input_occupancy(&self) -> usize {
        self.in_q.len()
    }

    /// Total requests anywhere in the port.
    pub fn is_empty(&self) -> bool {
        self.in_q.is_empty() && self.loads.is_empty() && self.sgb.is_empty()
    }

    /// Accepts a request from the interconnect, to be processed once
    /// `ready_at` passes.
    pub fn push(&mut self, ready_at: Cycle, request: CacheRequest) {
        self.in_q.push_back((ready_at, request));
    }

    /// Moves arrived input-queue requests into the load queue / SGB, in
    /// order. Stops at a store that cannot allocate an SGB entry.
    pub fn pump(&mut self, now: Cycle) {
        while let Some(&(ready_at, req)) = self.in_q.front() {
            if ready_at > now {
                break;
            }
            if req.kind.is_read() {
                self.loads.push_back(req);
                self.in_q.pop_front();
                continue;
            }
            if self.sgb.iter().any(|e| e.line == req.line) {
                // Gathered: merged into an existing entry.
                self.stats.stores_in.inc();
                self.stats.stores_gathered.inc();
                self.last_store_activity = now;
                trace::emit(|| TraceEvent {
                    at: now,
                    data: EventData::SgbGather { thread: self.thread, line: req.line },
                });
                self.in_q.pop_front();
            } else if self.sgb.len() < self.capacity {
                self.stats.stores_in.inc();
                self.last_store_activity = now;
                self.sgb.push_back(SgbEntry { line: req.line, token: req.token, flush: false });
                self.in_q.pop_front();
            } else {
                // SGB full: head-of-line stall until a store retires.
                break;
            }
        }
    }

    /// Whether loads are currently prevented from bypassing stores
    /// (occupancy at/above the high-water mark, or a partial flush is in
    /// progress).
    pub fn row_inverted(&self) -> bool {
        self.sgb.len() >= self.retire_at || self.sgb.iter().any(|e| e.flush)
    }

    /// The request this port would present to the bank controller at `now`,
    /// without removing it.
    pub fn peek_candidate(&mut self, now: Cycle) -> Option<PortCandidate> {
        // Partial-flush and high-water store retirement take priority.
        if self.row_inverted() {
            return self.oldest_store();
        }
        if let Some(&load) = self.loads.front() {
            // Read-over-write dependence check: a load to a gathered
            // store's line forces a partial flush of that entry and all
            // older entries.
            if let Some(pos) = self.sgb.iter().position(|e| e.line == load.line) {
                for e in self.sgb.iter_mut().take(pos + 1) {
                    e.flush = true;
                }
                self.stats.partial_flushes.inc();
                return self.oldest_store();
            }
            return Some(PortCandidate { request: load, is_store_retire: false });
        }
        // No loads pending: drain quiescent stores if configured.
        if let Some(timeout) = self.idle_drain {
            if !self.sgb.is_empty() && now.saturating_sub(self.last_store_activity) >= timeout {
                return self.oldest_store();
            }
        }
        None
    }

    fn oldest_store(&self) -> Option<PortCandidate> {
        self.sgb.front().map(|e| PortCandidate {
            request: CacheRequest {
                thread: self.thread,
                line: e.line,
                kind: vpc_sim::AccessKind::Write,
                token: e.token,
            },
            is_store_retire: true,
        })
    }

    /// Removes the candidate previously returned by
    /// [`ThreadPort::peek_candidate`] once the controller accepted it.
    ///
    /// # Panics
    ///
    /// Panics if the port has no matching request.
    pub fn take_candidate(&mut self, candidate: &PortCandidate, now: Cycle) {
        if candidate.is_store_retire {
            let e = self.sgb.pop_front().expect("store retire candidate exists");
            assert_eq!(e.line, candidate.request.line, "retired store mismatch");
            self.stats.writes_out.inc();
            self.last_store_activity = now;
            trace::emit(|| TraceEvent {
                at: now,
                data: EventData::SgbDrain {
                    thread: self.thread,
                    line: e.line,
                    occupancy: self.sgb.len() as u16,
                },
            });
        } else {
            let l = self.loads.pop_front().expect("load candidate exists");
            assert_eq!(l.line, candidate.request.line, "load candidate mismatch");
            self.stats.loads_out.inc();
        }
    }

    /// The cycle the oldest input-queue entry becomes intakeable, if any.
    pub fn next_arrival(&self) -> Option<Cycle> {
        self.in_q.front().map(|&(ready_at, _)| ready_at)
    }

    /// Whether [`ThreadPort::peek_candidate`] would *mutate* port state
    /// (mark partial-flush entries and count the flush) if called now.
    /// The quiescence protocol treats a mutating peek as pending activity,
    /// because the naive loop performs it on the very next bank cycle.
    pub fn peek_would_mutate(&self) -> bool {
        !self.row_inverted()
            && self.loads.front().is_some_and(|l| self.sgb.iter().any(|e| e.line == l.line))
    }

    /// The earliest cycle at or after `after` this port would present a
    /// candidate, and that candidate's line — the read-only mirror of
    /// [`ThreadPort::peek_candidate`]'s priority order, for quiescence
    /// queries. `None` if the port presents nothing regardless of time
    /// (empty, or parked stores with no idle-drain configured).
    pub fn next_candidate_line(&self, after: Cycle) -> Option<(Cycle, LineAddr)> {
        if self.row_inverted() {
            return self.sgb.front().map(|e| (after, e.line));
        }
        if let Some(load) = self.loads.front() {
            if self.sgb.iter().any(|e| e.line == load.line) {
                // Conflict: peek would flush and offer the oldest store.
                return self.sgb.front().map(|e| (after, e.line));
            }
            return Some((after, load.line));
        }
        if let Some(timeout) = self.idle_drain {
            if let Some(e) = self.sgb.front() {
                return Some((after.max(self.last_store_activity + timeout), e.line));
            }
        }
        None
    }

    /// SGB occupancy.
    pub fn sgb_occupancy(&self) -> usize {
        self.sgb.len()
    }

    /// Port statistics.
    pub fn stats(&self) -> SgbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::{AccessKind, ThreadId};

    fn store(line: u64, token: u64) -> CacheRequest {
        CacheRequest { thread: ThreadId(0), line: LineAddr(line), kind: AccessKind::Write, token }
    }

    fn load(line: u64, token: u64) -> CacheRequest {
        CacheRequest { thread: ThreadId(0), line: LineAddr(line), kind: AccessKind::Read, token }
    }

    fn port() -> ThreadPort {
        ThreadPort::new(ThreadId(0), 8, 6, None)
    }

    #[test]
    fn stores_gather_to_same_line() {
        let mut p = port();
        for t in 0..4 {
            p.push(0, store(5, t));
        }
        p.pump(0);
        assert_eq!(p.sgb_occupancy(), 1);
        assert_eq!(p.stats().stores_in.get(), 4);
        assert_eq!(p.stats().stores_gathered.get(), 3);
        assert!((p.stats().gathering_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn loads_bypass_unrelated_stores() {
        let mut p = port();
        p.push(0, store(1, 0));
        p.push(0, load(2, 1));
        p.pump(0);
        let c = p.peek_candidate(0).unwrap();
        assert!(!c.is_store_retire, "load bypasses the gathered store");
        assert_eq!(c.request.line, LineAddr(2));
    }

    #[test]
    fn conflicting_load_triggers_partial_flush() {
        let mut p = port();
        p.push(0, store(1, 10));
        p.push(0, store(2, 11));
        p.push(0, store(3, 12));
        p.push(0, load(2, 1));
        p.pump(0);
        // Load to line 2 conflicts with the second store: stores 1 and 2
        // must retire first; store 3 may stay gathered.
        let c1 = p.peek_candidate(0).unwrap();
        assert!(c1.is_store_retire);
        assert_eq!(c1.request.line, LineAddr(1));
        p.take_candidate(&c1, 0);
        let c2 = p.peek_candidate(0).unwrap();
        assert!(c2.is_store_retire);
        assert_eq!(c2.request.line, LineAddr(2));
        p.take_candidate(&c2, 0);
        let c3 = p.peek_candidate(0).unwrap();
        assert!(!c3.is_store_retire, "load proceeds after the flush");
        assert_eq!(c3.request.line, LineAddr(2));
        assert_eq!(p.sgb_occupancy(), 1, "younger store still gathered");
        assert_eq!(p.stats().partial_flushes.get(), 1);
    }

    #[test]
    fn high_water_mark_inverts_row() {
        let mut p = port();
        for i in 0..6 {
            p.push(0, store(i, i));
        }
        p.push(0, load(100, 1));
        p.pump(0);
        assert!(p.row_inverted());
        let c = p.peek_candidate(0).unwrap();
        assert!(c.is_store_retire, "retire-at-6 drains stores before loads");
        p.take_candidate(&c, 0);
        assert_eq!(p.sgb_occupancy(), 5);
        let c = p.peek_candidate(0).unwrap();
        assert!(!c.is_store_retire, "below high water, loads bypass again");
    }

    #[test]
    fn full_sgb_stalls_input_queue() {
        let mut p = port();
        for i in 0..8 {
            p.push(0, store(i, i));
        }
        // While row-inverted (8 >= 6) the controller drains; but without
        // draining, a 9th store and a following load stall in order.
        p.push(0, store(100, 8));
        p.push(0, load(200, 9));
        p.pump(0);
        assert_eq!(p.sgb_occupancy(), 8);
        assert_eq!(p.input_occupancy(), 2, "store 100 and load 200 wait in order");
        assert_eq!(p.stats().stores_in.get(), 8, "stalled store not counted yet");
        // Drain one store; the stalled store and load then flow in.
        let c = p.peek_candidate(0).unwrap();
        p.take_candidate(&c, 0);
        p.pump(0);
        assert_eq!(p.sgb_occupancy(), 8);
        assert_eq!(p.input_occupancy(), 0);
    }

    #[test]
    fn idle_drain_retires_quiescent_stores() {
        let mut p = ThreadPort::new(ThreadId(0), 8, 6, Some(100));
        p.push(0, store(1, 0));
        p.pump(0);
        assert!(p.peek_candidate(50).is_none(), "below high water, no drain yet");
        let c = p.peek_candidate(150).unwrap();
        assert!(c.is_store_retire, "idle drain after timeout");
    }

    #[test]
    fn no_idle_drain_parks_stores() {
        let mut p = port();
        p.push(0, store(1, 0));
        p.pump(0);
        assert!(p.peek_candidate(1_000_000).is_none());
    }

    #[test]
    fn pump_respects_ready_time() {
        let mut p = port();
        p.push(10, load(1, 0));
        p.pump(5);
        assert!(p.peek_candidate(5).is_none());
        p.pump(10);
        assert!(p.peek_candidate(10).is_some());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use vpc_sim::check::{self, Config};
    use vpc_sim::{ensure, ensure_eq, AccessKind, SplitMix64, ThreadId};

    /// A reference model of the architectural ordering rules: the sequence
    /// of requests leaving the port must (a) retire stores in arrival
    /// order, (b) never let a load pass an *older conflicting* store, and
    /// (c) deliver every distinct-line store exactly once.
    #[derive(Default)]
    struct OrderChecker {
        /// Arrival index of each store line still gathered.
        pending_stores: Vec<(LineAddr, usize)>,
        next_idx: usize,
        last_store_retired: Option<usize>,
    }

    impl OrderChecker {
        fn on_store_arrival(&mut self, line: LineAddr) {
            if !self.pending_stores.iter().any(|&(l, _)| l == line) {
                self.pending_stores.push((line, self.next_idx));
            }
            self.next_idx += 1;
        }

        fn on_store_retire(&mut self, line: LineAddr) -> Result<(), String> {
            let pos = self
                .pending_stores
                .iter()
                .position(|&(l, _)| l == line)
                .ok_or_else(|| format!("retired store {line} was never gathered"))?;
            let (_, idx) = self.pending_stores.remove(pos);
            if let Some(last) = self.last_store_retired {
                if idx < last {
                    // Entries are FIFO by first-arrival; a smaller index
                    // after a larger one would mean reordered retirement.
                    return Err(format!("store {line} retired out of order"));
                }
            }
            self.last_store_retired = Some(idx);
            Ok(())
        }

        fn on_load_out(&mut self, line: LineAddr) -> Result<(), String> {
            if self.pending_stores.iter().any(|&(l, _)| l == line) {
                return Err(format!("load to {line} bypassed a pending store to the same line"));
            }
            Ok(())
        }
    }

    /// The body of `port_preserves_architectural_order`, shared with the
    /// saved-seed regression test below.
    fn architectural_order_property(rng: &mut SplitMix64) -> Result<(), String> {
        let mut port = ThreadPort::new(ThreadId(0), 8, 6, Some(300));
        let mut checker = OrderChecker::default();
        let mut token = 0u64;
        let mut loads_in = 0u64;

        for now in 0..3000u64 {
            // Random arrivals.
            if rng.chance(0.3) {
                let line = LineAddr(rng.below(12));
                let is_store = rng.chance(0.5);
                token += 1;
                let kind = if is_store { AccessKind::Write } else { AccessKind::Read };
                port.push(now, CacheRequest { thread: ThreadId(0), line, kind, token });
            }
            port.pump(now);
            // Mirror newly-absorbed stores into the checker before any
            // retirement can happen this iteration (SGB queue order ==
            // absorption order).
            for line in port_snapshot(&port) {
                if !checker.pending_stores.iter().any(|&(l, _)| l == line) {
                    checker.on_store_arrival(line);
                }
            }
            // Random controller acceptance.
            if rng.chance(0.5) {
                if let Some(c) = port.peek_candidate(now) {
                    port.take_candidate(&c, now);
                    if c.is_store_retire {
                        checker.on_store_retire(c.request.line)?;
                    } else {
                        loads_in += 1;
                        checker.on_load_out(c.request.line)?;
                    }
                }
            }
        }
        // Everything eventually drains via idle-drain.
        let mut now = 3000u64;
        while !port.is_empty() && now < 40_000 {
            port.pump(now);
            for line in port_snapshot(&port) {
                if !checker.pending_stores.iter().any(|&(l, _)| l == line) {
                    checker.on_store_arrival(line);
                }
            }
            if let Some(c) = port.peek_candidate(now) {
                port.take_candidate(&c, now);
                if c.is_store_retire {
                    checker.on_store_retire(c.request.line)?;
                } else {
                    loads_in += 1;
                    checker.on_load_out(c.request.line)?;
                }
            }
            now += 1;
        }
        ensure!(port.is_empty(), "port must drain");
        ensure!(checker.pending_stores.is_empty(), "all gathered stores retired");
        ensure_eq!(loads_in, port.stats().loads_out.get());
        ensure_eq!(
            port.stats().stores_in.get(),
            port.stats().stores_gathered.get() + port.stats().writes_out.get(),
            "every store either gathered into an entry or retired"
        );
        Ok(())
    }

    /// Random load/store arrivals with random controller acceptance:
    /// stores retire in first-arrival order, loads never pass an older
    /// same-line store, and no request is lost.
    #[test]
    fn port_preserves_architectural_order() {
        check::forall(
            "port_preserves_architectural_order",
            Config::cases(48),
            architectural_order_property,
        );
    }

    /// Regression: the one counterexample randomized testing ever found
    /// for this property (a saved regression seed that shrank to
    /// `seed = 5587456095501658542`). The store-gathering corner it hit —
    /// a partial flush racing the retire-at-n high-water mark — stays
    /// covered as an explicit named case.
    #[test]
    fn regression_partial_flush_vs_high_water_seed_5587456095501658542() {
        check::replay(5587456095501658542, architectural_order_property)
            .expect("saved regression seed must keep passing");
    }

    /// Lines currently gathered in the SGB, oldest first.
    fn port_snapshot(port: &ThreadPort) -> Vec<LineAddr> {
        port.sgb.iter().map(|e| e.line).collect()
    }
}
