//! DDR2 SDRAM memory system and controller.
//!
//! The paper's evaluation attaches a cycle-accurate on-chip memory controller
//! to a DDR2-800 memory system (§5.1), with **per-thread private SDRAM
//! channels** so that memory interference cannot pollute the cache-sharing
//! results: requests are interleaved across channels using the most
//! significant physical address bits, which the evaluation's virtual-to-
//! physical mapping makes equivalent to per-thread channels.
//!
//! This crate implements that substrate:
//!
//! * [`DramTiming`] — DDR2-800 timing expressed in 2 GHz processor cycles.
//! * [`DramChannel`] — one channel with ranks × banks, a closed-page policy
//!   bank state machine, and a shared data bus.
//! * [`MemoryController`] — per-thread transaction and write buffers,
//!   read-priority scheduling with write draining, routing to channels.
//!
//! # Examples
//!
//! ```
//! use vpc_mem::{MemConfig, MemoryController, MemRequest};
//! use vpc_sim::{AccessKind, LineAddr, ThreadId};
//!
//! let mut mc = MemoryController::new(MemConfig::ddr2_800(), 4);
//! assert!(mc.can_accept(ThreadId(0), AccessKind::Read));
//! mc.enqueue(MemRequest { thread: ThreadId(0), line: LineAddr(0x40), kind: AccessKind::Read, token: 1 }, 0);
//! let mut response = None;
//! for now in 0..2_000 {
//!     mc.tick(now);
//!     if let Some(r) = mc.pop_response() {
//!         response = Some(r);
//!         break;
//!     }
//! }
//! assert_eq!(response.unwrap().token, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod controller;
pub mod fq;
pub mod timing;

pub use channel::DramChannel;
pub use controller::{ChannelMode, MemRequest, MemResponse, MemoryController};
pub use fq::FqClock;
pub use timing::{DramTiming, MemConfig};
