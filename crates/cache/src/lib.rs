//! The cache hierarchy of the Virtual Private Caches reproduction.
//!
//! This crate implements the paper's baseline cache microarchitecture
//! (§3.1, Figure 2) and hosts the attachment points for the VPC mechanisms:
//!
//! * [`L1Cache`] — private, write-through, no-write-allocate L1 data caches
//!   with MSHRs and an LMQ depth limit.
//! * [`ThreadPort`] / store gathering buffers — per-thread, per-bank store
//!   gathering with read-over-write bypassing, partial flush, and the
//!   retire-at-n policy ([`sgb`]).
//! * [`L2Bank`] — controller state machines and the arbitrated tag array,
//!   data array, and data bus pipeline ([`bank`]). The arbiters come from
//!   [`vpc_arbiters`] (FCFS / RoW-FCFS baselines or the VPC fair-queuing
//!   arbiter), and the replacement policy from [`vpc_capacity`] (true LRU
//!   or the VPC Capacity Manager).
//! * [`SharedL2`] — the banked cache plus crossbar credits and the DDR2
//!   memory system from [`vpc_mem`].
//!
//! # Examples
//!
//! ```
//! use vpc_arbiters::ArbiterPolicy;
//! use vpc_cache::{L2Config, SharedL2};
//! use vpc_mem::MemConfig;
//! use vpc_sim::{AccessKind, CacheRequest, LineAddr, ThreadId};
//!
//! let cfg = L2Config::table1(4, ArbiterPolicy::vpc_equal(4));
//! let mut l2 = SharedL2::new(cfg, MemConfig::ddr2_800());
//! l2.submit(
//!     CacheRequest { thread: ThreadId(0), line: LineAddr(8), kind: AccessKind::Read, token: 1 },
//!     0,
//! );
//! let mut responded = false;
//! for now in 0..2_000 {
//!     l2.tick(now);
//!     if l2.pop_response(now).is_some() {
//!         responded = true;
//!         break;
//!     }
//! }
//! assert!(responded);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod config;
pub mod l1;
pub mod sgb;
pub mod shared_l2;

pub use bank::{BankStats, L2Bank};
pub use config::{CapacityPolicy, L1Config, L2Config};
pub use l1::{L1Cache, L1LoadResult, L1Stats};
pub use sgb::{PortCandidate, SgbStats, ThreadPort};
pub use shared_l2::{L2Utilization, SharedL2};
