//! Exact rational resource shares.
//!
//! The paper allocates each thread a share `beta_i` of every shared bandwidth
//! resource and `alpha_i` of the cache ways, with `sum(beta_i) <= 1`. The VPC
//! arbiter's virtual service time is `R.L_i = L / beta_i` (Eq. 2); computing
//! this with floating point would accumulate drift over billions of cycles,
//! so [`Share`] keeps the share as an exact rational `num/den` in lowest
//! terms and scales latencies with integer ceiling division.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// An exact rational share in `[0, 1]`, kept in lowest terms.
///
/// ```
/// use vpc_sim::Share;
///
/// let half = Share::new(2, 4).unwrap();
/// assert_eq!(half.numer(), 1);
/// assert_eq!(half.denom(), 2);
/// assert_eq!(half.scaled_latency(8), Some(16));
/// assert_eq!(Share::ZERO.scaled_latency(8), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Share {
    num: u32,
    den: u32,
}

/// Error returned by [`Share::new`] for invalid fractions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareError {
    /// The denominator was zero.
    ZeroDenominator,
    /// The fraction exceeded one.
    GreaterThanOne,
}

impl fmt::Display for ShareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShareError::ZeroDenominator => write!(f, "share denominator must be nonzero"),
            ShareError::GreaterThanOne => write!(f, "share must not exceed one"),
        }
    }
}

impl std::error::Error for ShareError {}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Share {
    /// The zero share: the thread has no guaranteed allocation and is only
    /// served from excess bandwidth.
    pub const ZERO: Share = Share { num: 0, den: 1 };

    /// The full share: the thread is allocated the entire resource.
    pub const FULL: Share = Share { num: 1, den: 1 };

    /// Creates a share `num/den`, reduced to lowest terms.
    ///
    /// # Errors
    ///
    /// Returns [`ShareError::ZeroDenominator`] if `den == 0` and
    /// [`ShareError::GreaterThanOne`] if `num > den`.
    pub fn new(num: u32, den: u32) -> Result<Share, ShareError> {
        if den == 0 {
            return Err(ShareError::ZeroDenominator);
        }
        if num > den {
            return Err(ShareError::GreaterThanOne);
        }
        if num == 0 {
            return Ok(Share::ZERO);
        }
        let g = gcd(num, den);
        Ok(Share { num: num / g, den: den / g })
    }

    /// Creates a share from a percentage in `0..=100`.
    ///
    /// # Errors
    ///
    /// Returns [`ShareError::GreaterThanOne`] if `percent > 100`.
    pub fn from_percent(percent: u32) -> Result<Share, ShareError> {
        Share::new(percent, 100)
    }

    /// The numerator, in lowest terms.
    #[inline]
    pub fn numer(self) -> u32 {
        self.num
    }

    /// The denominator, in lowest terms.
    #[inline]
    pub fn denom(self) -> u32 {
        self.den
    }

    /// Whether this is the zero share.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// The share as a floating point value, for reporting only.
    #[inline]
    pub fn as_f64(self) -> f64 {
        f64::from(self.num) / f64::from(self.den)
    }

    /// The paper's virtual service time: `ceil(latency / share)` (Eq. 2,
    /// expressed in integer processor cycles).
    ///
    /// Returns `None` for the zero share, whose virtual service time is
    /// unbounded — a zero-share thread holds no bandwidth guarantee.
    pub fn scaled_latency(self, latency: u64) -> Option<u64> {
        if self.num == 0 {
            return None;
        }
        let num = u64::from(self.num);
        let den = u64::from(self.den);
        Some((latency * den).div_ceil(num))
    }

    /// The number of cache ways guaranteed by this share out of `total_ways`
    /// (the capacity manager's `alpha_i * ways`, rounded down — a VPC is
    /// guaranteed *at least* `alpha_i` of the ways, so the guarantee itself
    /// uses the floor).
    pub fn of_ways(self, total_ways: u32) -> u32 {
        ((u64::from(self.num) * u64::from(total_ways)) / u64::from(self.den)) as u32
    }

    /// Sums an iterator of shares, returning `None` on overflow above one.
    ///
    /// Used to validate that a set of allocations does not over-commit a
    /// resource (`sum(beta_i) <= 1`, the EDF schedulability condition of
    /// §3.2).
    pub fn checked_sum<I: IntoIterator<Item = Share>>(shares: I) -> Option<Share> {
        let mut num: u64 = 0;
        let mut den: u64 = 1;
        for s in shares {
            // num/den + s.num/s.den
            num = num * u64::from(s.den) + u64::from(s.num) * den;
            den *= u64::from(s.den);
            // den >= 1, so the gcd is always nonzero.
            let g = gcd64(num, den);
            num /= g;
            den /= g;
            if num > den {
                return None;
            }
        }
        debug_assert!(num <= u64::from(u32::MAX) && den <= u64::from(u32::MAX));
        Some(Share::new(num as u32, den as u32).expect("reduced sum is a valid share"))
    }
}

fn gcd64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Default for Share {
    /// Defaults to [`Share::ZERO`] — no guaranteed allocation.
    fn default() -> Self {
        Share::ZERO
    }
}

impl PartialOrd for Share {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Share {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = u64::from(self.num) * u64::from(other.den);
        let rhs = u64::from(other.num) * u64::from(self.den);
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Share {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

/// Error returned when parsing a [`Share`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseShareError(String);

impl fmt::Display for ParseShareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid share syntax: {}", self.0)
    }
}

impl std::error::Error for ParseShareError {}

impl FromStr for Share {
    type Err = ParseShareError;

    /// Parses `"p/q"` fractions or `"n%"` percentages.
    ///
    /// ```
    /// use vpc_sim::Share;
    /// assert_eq!("1/4".parse::<Share>().unwrap(), Share::new(1, 4).unwrap());
    /// assert_eq!("25%".parse::<Share>().unwrap(), Share::new(1, 4).unwrap());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some(pct) = s.strip_suffix('%') {
            let p: u32 = pct.trim().parse().map_err(|_| ParseShareError(s.into()))?;
            return Share::from_percent(p).map_err(|_| ParseShareError(s.into()));
        }
        let (num, den) = s.split_once('/').ok_or_else(|| ParseShareError(s.into()))?;
        let num: u32 = num.trim().parse().map_err(|_| ParseShareError(s.into()))?;
        let den: u32 = den.trim().parse().map_err(|_| ParseShareError(s.into()))?;
        Share::new(num, den).map_err(|_| ParseShareError(s.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{self, gen, Config};
    use crate::{ensure, ensure_eq};

    #[test]
    fn reduces_to_lowest_terms() {
        let s = Share::new(4, 16).unwrap();
        assert_eq!((s.numer(), s.denom()), (1, 4));
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(Share::new(1, 0), Err(ShareError::ZeroDenominator));
        assert_eq!(Share::new(3, 2), Err(ShareError::GreaterThanOne));
    }

    #[test]
    fn scaled_latency_matches_paper_examples() {
        // §5.3: a VPC allocated beta = .5 sees an 8-cycle tag latency as 16
        // and the 8-cycle data latency as 16 in the equivalent private cache.
        let half = Share::new(1, 2).unwrap();
        assert_eq!(half.scaled_latency(4), Some(8));
        assert_eq!(half.scaled_latency(8), Some(16));
        let quarter = Share::new(1, 4).unwrap();
        assert_eq!(quarter.scaled_latency(4), Some(16));
    }

    #[test]
    fn zero_share_has_no_guarantee() {
        assert!(Share::ZERO.is_zero());
        assert_eq!(Share::ZERO.scaled_latency(8), None);
        assert_eq!(Share::ZERO.of_ways(32), 0);
    }

    #[test]
    fn way_allocation() {
        assert_eq!(Share::new(1, 4).unwrap().of_ways(32), 8);
        assert_eq!(Share::new(1, 2).unwrap().of_ways(32), 16);
        assert_eq!(Share::FULL.of_ways(32), 32);
        assert_eq!(Share::new(1, 3).unwrap().of_ways(32), 10);
    }

    #[test]
    fn ordering_is_by_value() {
        let s = |n, d| Share::new(n, d).unwrap();
        assert!(s(1, 4) < s(1, 2));
        assert!(s(2, 4) == s(1, 2));
        assert!(s(3, 4) > s(2, 3));
    }

    #[test]
    fn checked_sum_detects_overcommit() {
        let q = Share::new(1, 4).unwrap();
        assert_eq!(Share::checked_sum([q, q, q, q]), Some(Share::FULL));
        let h = Share::new(1, 2).unwrap();
        assert_eq!(Share::checked_sum([h, h, q]), None);
    }

    #[test]
    fn parsing() {
        assert_eq!("3/4".parse::<Share>().unwrap(), Share::new(3, 4).unwrap());
        assert_eq!("50%".parse::<Share>().unwrap(), Share::new(1, 2).unwrap());
        assert!(" 7 / 8 ".parse::<Share>().is_ok());
        assert!("4/3".parse::<Share>().is_err());
        assert!("abc".parse::<Share>().is_err());
    }

    #[test]
    fn scaled_latency_is_ceiling_division() {
        check::forall("scaled_latency_is_ceiling_division", Config::cases(256), |rng| {
            let s = gen::nonzero_share(rng, 64);
            let lat = rng.below(10_000);
            let exact = (lat as f64) * f64::from(s.denom()) / f64::from(s.numer());
            let got = s.scaled_latency(lat).unwrap();
            ensure!(got as f64 >= exact - 1e-9, "{s}: {got} below exact {exact}");
            ensure!((got as f64) < exact + 1.0, "{s}: {got} above ceiling of {exact}");
            Ok(())
        });
    }

    #[test]
    fn ways_never_exceed_total() {
        check::forall("ways_never_exceed_total", Config::cases(256), |rng| {
            let s = gen::share(rng, 64);
            let ways = gen::range(rng, 1, 64) as u32;
            ensure!(s.of_ways(ways) <= ways, "{s}.of_ways({ways}) exceeded the total");
            Ok(())
        });
    }

    #[test]
    fn display_parse_roundtrip() {
        check::forall("display_parse_roundtrip", Config::cases(256), |rng| {
            let s = gen::share(rng, 64);
            let back: Share = s.to_string().parse().unwrap();
            ensure_eq!(s, back);
            Ok(())
        });
    }
}
