//! Reproducibility: every simulation is a pure function of its
//! configuration — no wall-clock, no global RNG, no iteration-order
//! dependence.

use vpc::experiments::RunBudget;
use vpc::prelude::*;

fn run_once(seed_mix: &[&'static str; 4]) -> Vec<u64> {
    let mut cfg = CmpConfig::table1().with_arbiter(ArbiterPolicy::vpc_equal(4));
    cfg.l2.total_sets = 1024;
    let workloads: Vec<WorkloadSpec> = seed_mix.iter().map(|b| WorkloadSpec::Spec(b)).collect();
    let mut sys = CmpSystem::new(cfg, &workloads);
    sys.run(60_000);
    (0..4).map(|t| sys.core(ThreadId(t)).retired()).collect()
}

#[test]
fn identical_configs_produce_identical_histories() {
    let mix = ["art", "mcf", "equake", "gzip"];
    let a = run_once(&mix);
    let b = run_once(&mix);
    assert_eq!(a, b, "simulation must be deterministic");
    assert!(a.iter().all(|&r| r > 0), "all threads made progress: {a:?}");
}

#[test]
fn different_threads_get_independent_streams() {
    // The same benchmark on different processors uses disjoint addresses
    // and a different RNG stream, so retired counts differ slightly under
    // contention but nobody aliases anybody's cache lines.
    let mut cfg = CmpConfig::table1().with_arbiter(ArbiterPolicy::vpc_equal(4));
    cfg.l2.total_sets = 1024;
    let workloads = vec![WorkloadSpec::Spec("gcc"); 4];
    let mut sys = CmpSystem::new(cfg, &workloads);
    sys.run(60_000);
    let retired: Vec<u64> = (0..4).map(|t| sys.core(ThreadId(t)).retired()).collect();
    assert!(retired.iter().all(|&r| r > 1000), "all four make progress: {retired:?}");
    // Equal shares + same profile => roughly equal progress.
    let max = *retired.iter().max().unwrap() as f64;
    let min = *retired.iter().min().unwrap() as f64;
    assert!(max / min < 1.25, "equal-share same-profile threads stay balanced: {retired:?}");
}

#[test]
fn measurement_windows_compose() {
    // Two back-to-back measured windows cover exactly what one long window
    // covers (counters are exact, no double counting).
    let mut cfg = CmpConfig::table1_with_threads(1);
    cfg.l2.total_sets = 1024;
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Spec("gcc")]);
    sys.run(10_000);
    let s0 = sys.snapshot();
    sys.run(20_000);
    let first = sys.measure(&s0);
    let s1 = sys.snapshot();
    sys.run(20_000);
    let second = sys.measure(&s1);
    let whole = sys.measure(&s0);
    let retired_sum = first.ipc[0] * 20_000.0 + second.ipc[0] * 20_000.0;
    let retired_whole = whole.ipc[0] * 40_000.0;
    assert!(
        (retired_sum - retired_whole).abs() < 1.0,
        "windows must compose exactly: {retired_sum} vs {retired_whole}"
    );
}

#[test]
fn experiment_budgets_are_honored() {
    let b = RunBudget::quick();
    let mut cfg = CmpConfig::table1_with_threads(1);
    cfg.l2.total_sets = 1024;
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Idle]);
    let m = sys.run_measured(b.warmup, b.window);
    assert_eq!(m.cycles, b.window);
    assert_eq!(sys.now(), b.warmup + b.window);
}
