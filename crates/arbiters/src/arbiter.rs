//! The [`Arbiter`] trait and the conventional (non-QoS) policies.

use std::collections::VecDeque;
use std::fmt;

use vpc_sim::Cycle;

use crate::request::ArbRequest;

/// Selects which pending request accesses a shared resource next.
///
/// An arbiter sees requests *after* the cache controller has checked them for
/// memory-consistency conflicts (§4.1.1), so any serviceable request may be
/// granted in any order without affecting correctness — ordering only affects
/// performance and fairness.
pub trait Arbiter: fmt::Debug {
    /// Enters `req` into arbitration at cycle `now`. The arbiter stamps the
    /// request's arrival time.
    fn enqueue(&mut self, req: ArbRequest, now: Cycle);

    /// Grants the resource to one pending request, removing it from
    /// arbitration. Called by the resource when it becomes free at `now`.
    /// Returns `None` if nothing is pending.
    fn select(&mut self, now: Cycle) -> Option<ArbRequest>;

    /// Number of requests pending in arbitration.
    fn len(&self) -> usize;

    /// Whether no requests are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconfigures `thread`'s bandwidth share, if this arbiter supports
    /// QoS shares (the VPC arbiter's system-software-visible control
    /// registers, §4). Returns `false` for share-oblivious arbiters.
    fn reconfigure_share(&mut self, _thread: vpc_sim::ThreadId, _share: vpc_sim::Share) -> bool {
        false
    }

    /// Virtual `(start, finish)` times the most recent [`Arbiter::select`]
    /// assigned to the request it granted (Eq. 3'/4 of the paper), for
    /// trace observability.
    ///
    /// `None` for arbiters without a virtual clock (FCFS, round-robin,
    /// DRR) and for excess-bandwidth grants to zero-share threads.
    /// Read-only: querying it never changes arbitration state.
    fn last_grant_virtual(&self) -> Option<(u64, u64)> {
        None
    }

    /// Appends the threads still holding pending requests to `out`, each
    /// with its current virtual start time `R.S_i` where the policy tracks
    /// one, for trace observability (the "deferred" side of a grant).
    /// Read-only; the caller clears and reuses `out` so the per-grant
    /// backlog report allocates nothing in steady state.
    fn backlogged_threads(&self, out: &mut Vec<(vpc_sim::ThreadId, Option<u64>)>) {
        let _ = out;
    }
}

/// Appends the distinct threads present in `queues`, in first-occurrence
/// order, with no virtual time (shared by the FIFO-family arbiters'
/// backlog reports).
fn fifo_backlog<'a>(
    queues: impl Iterator<Item = &'a ArbRequest>,
    out: &mut Vec<(vpc_sim::ThreadId, Option<u64>)>,
) {
    for req in queues {
        if !out.iter().any(|(t, _)| *t == req.thread) {
            out.push((req.thread, None));
        }
    }
}

/// First-come first-serve: grants the oldest pending request regardless of
/// thread or kind. The paper's baseline for *shared* cache resources.
#[derive(Debug, Default)]
pub struct FcfsArbiter {
    queue: VecDeque<ArbRequest>,
    seq: u64,
}

impl FcfsArbiter {
    /// Creates an empty FCFS arbiter.
    pub fn new() -> FcfsArbiter {
        FcfsArbiter::default()
    }
}

impl Arbiter for FcfsArbiter {
    fn enqueue(&mut self, mut req: ArbRequest, now: Cycle) {
        req.arrival = now;
        // FIFO insertion preserves arrival order; same-cycle arrivals keep
        // their enqueue order, which the caller makes deterministic.
        self.seq += 1;
        self.queue.push_back(req);
    }

    fn select(&mut self, _now: Cycle) -> Option<ArbRequest> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn backlogged_threads(&self, out: &mut Vec<(vpc_sim::ThreadId, Option<u64>)>) {
        fifo_backlog(self.queue.iter(), out);
    }
}

/// Read-over-write first-come first-serve: all pending reads (oldest first)
/// are granted before any write.
///
/// Effective for *private* caches (§3.1), but on a shared resource a thread
/// with a continuous load stream starves every other thread's stores — the
/// paper calls this "a critical design flaw" in a real system.
#[derive(Debug, Default)]
pub struct RowFcfsArbiter {
    reads: VecDeque<ArbRequest>,
    writes: VecDeque<ArbRequest>,
}

impl RowFcfsArbiter {
    /// Creates an empty RoW-FCFS arbiter.
    pub fn new() -> RowFcfsArbiter {
        RowFcfsArbiter::default()
    }
}

impl Arbiter for RowFcfsArbiter {
    fn enqueue(&mut self, mut req: ArbRequest, now: Cycle) {
        req.arrival = now;
        if req.kind.is_read() {
            self.reads.push_back(req);
        } else {
            self.writes.push_back(req);
        }
    }

    fn select(&mut self, _now: Cycle) -> Option<ArbRequest> {
        self.reads.pop_front().or_else(|| self.writes.pop_front())
    }

    fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    fn backlogged_threads(&self, out: &mut Vec<(vpc_sim::ThreadId, Option<u64>)>) {
        fifo_backlog(self.reads.iter().chain(self.writes.iter()), out);
    }
}

/// Per-thread round-robin: grants threads' oldest requests in rotating
/// order, skipping threads with nothing pending.
///
/// The baseline cache controller uses round-robin selection from the
/// threads' requests after store gathering (§3.1).
#[derive(Debug)]
pub struct RoundRobinArbiter {
    queues: Vec<VecDeque<ArbRequest>>,
    next: usize,
    pending: usize,
}

impl RoundRobinArbiter {
    /// Creates a round-robin arbiter over `threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> RoundRobinArbiter {
        assert!(threads > 0, "at least one thread required");
        RoundRobinArbiter {
            queues: (0..threads).map(|_| VecDeque::new()).collect(),
            next: 0,
            pending: 0,
        }
    }
}

impl Arbiter for RoundRobinArbiter {
    fn enqueue(&mut self, mut req: ArbRequest, now: Cycle) {
        req.arrival = now;
        let idx = req.thread.index();
        assert!(idx < self.queues.len(), "thread {} out of range", req.thread);
        self.queues[idx].push_back(req);
        self.pending += 1;
    }

    fn select(&mut self, _now: Cycle) -> Option<ArbRequest> {
        let n = self.queues.len();
        for offset in 0..n {
            let idx = (self.next + offset) % n;
            if let Some(req) = self.queues[idx].pop_front() {
                self.next = (idx + 1) % n;
                self.pending -= 1;
                return Some(req);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.pending
    }

    fn backlogged_threads(&self, out: &mut Vec<(vpc_sim::ThreadId, Option<u64>)>) {
        out.extend(
            self.queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .map(|(t, _)| (vpc_sim::ThreadId(t as u8), None)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::{AccessKind, ThreadId};

    fn read(id: u64, t: u8) -> ArbRequest {
        ArbRequest::new(id, ThreadId(t), AccessKind::Read, 8)
    }

    fn write(id: u64, t: u8) -> ArbRequest {
        ArbRequest::new(id, ThreadId(t), AccessKind::Write, 16)
    }

    #[test]
    fn fcfs_grants_in_arrival_order() {
        let mut arb = FcfsArbiter::new();
        arb.enqueue(write(1, 0), 0);
        arb.enqueue(read(2, 1), 1);
        arb.enqueue(read(3, 0), 2);
        assert_eq!(arb.select(10).unwrap().id, 1);
        assert_eq!(arb.select(10).unwrap().id, 2);
        assert_eq!(arb.select(10).unwrap().id, 3);
        assert!(arb.select(10).is_none());
    }

    #[test]
    fn row_fcfs_prioritizes_reads() {
        let mut arb = RowFcfsArbiter::new();
        arb.enqueue(write(1, 0), 0);
        arb.enqueue(read(2, 1), 5);
        arb.enqueue(read(3, 1), 6);
        assert_eq!(arb.select(10).unwrap().id, 2);
        assert_eq!(arb.select(10).unwrap().id, 3);
        assert_eq!(arb.select(10).unwrap().id, 1);
    }

    #[test]
    fn row_fcfs_starves_writes_under_read_stream() {
        // The paper's §5.3 observation: a continuous load stream starves a
        // store under RoW-FCFS for as long as the loads keep coming.
        let mut arb = RowFcfsArbiter::new();
        arb.enqueue(write(0, 1), 0);
        for now in 0..1000u64 {
            arb.enqueue(read(now + 1, 0), now);
            let granted = arb.select(now).unwrap();
            assert!(granted.kind.is_read(), "write was granted while reads pending");
        }
        // Only once the read stream stops does the write get service.
        assert_eq!(arb.select(1000).unwrap().id, 0);
    }

    #[test]
    fn round_robin_rotates_across_threads() {
        let mut arb = RoundRobinArbiter::new(3);
        arb.enqueue(read(10, 0), 0);
        arb.enqueue(read(11, 0), 0);
        arb.enqueue(read(20, 1), 0);
        arb.enqueue(read(30, 2), 0);
        let order: Vec<u64> = std::iter::from_fn(|| arb.select(0)).map(|r| r.id).collect();
        assert_eq!(order, vec![10, 20, 30, 11]);
    }

    #[test]
    fn round_robin_skips_idle_threads() {
        let mut arb = RoundRobinArbiter::new(4);
        arb.enqueue(read(1, 3), 0);
        assert_eq!(arb.select(0).unwrap().id, 1);
        assert!(arb.is_empty());
    }

    #[test]
    fn len_tracks_pending() {
        let mut arb = RoundRobinArbiter::new(2);
        assert!(arb.is_empty());
        arb.enqueue(read(1, 0), 0);
        arb.enqueue(read(2, 1), 0);
        assert_eq!(arb.len(), 2);
        arb.select(0);
        assert_eq!(arb.len(), 1);
    }

    #[test]
    fn arrival_is_stamped_on_enqueue() {
        let mut arb = FcfsArbiter::new();
        arb.enqueue(read(1, 0), 42);
        assert_eq!(arb.select(43).unwrap().arrival, 42);
    }
}
