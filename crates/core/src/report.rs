//! Machine-readable experiment reports.
//!
//! Each figure runner's typed result converts into a flat report that
//! implements [`ToJson`], so downstream tooling (plotting scripts,
//! regression tracking) can consume `--json` output from the `vpc-bench`
//! binaries. Serialization is handled by the in-tree [`crate::json`]
//! emitter — the workspace is hermetic and uses no external crates.

use std::fmt;
use std::time::Duration;

use vpc_sim::exec;

use crate::experiments::{fig10, fig5, fig6, fig7, fig8, fig9};
pub use crate::json::{JsonValue, ToJson};

/// One utilization sample.
#[derive(Debug, Clone)]
pub struct UtilizationReport {
    /// Row label (benchmark, or "benchmark NB").
    pub label: String,
    /// Tag array utilization in `[0, 1]`.
    pub tag_array: f64,
    /// Data array utilization in `[0, 1]`.
    pub data_array: f64,
    /// Data bus utilization in `[0, 1]`.
    pub data_bus: f64,
}

/// Figure 5 as a flat series.
#[derive(Debug, Clone)]
pub struct Fig5Report {
    /// One entry per (benchmark, banks) point.
    pub rows: Vec<UtilizationReport>,
}

impl From<&fig5::Fig5Result> for Fig5Report {
    fn from(r: &fig5::Fig5Result) -> Self {
        Fig5Report {
            rows: r
                .rows
                .iter()
                .map(|row| UtilizationReport {
                    label: format!("{} {}B", row.benchmark, row.banks),
                    tag_array: row.util.tag_array,
                    data_array: row.util.data_array,
                    data_bus: row.util.data_bus,
                })
                .collect(),
        }
    }
}

/// Figure 6 as a flat series (adds the solo IPC).
#[derive(Debug, Clone)]
pub struct Fig6Report {
    /// One entry per benchmark.
    pub rows: Vec<Fig6RowReport>,
    /// Mean data-array utilization (paper: ~26%).
    pub mean_data_util: f64,
}

/// One Figure 6 row.
#[derive(Debug, Clone)]
pub struct Fig6RowReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Data array utilization.
    pub data_array: f64,
    /// Data bus utilization.
    pub data_bus: f64,
    /// Tag array utilization.
    pub tag_array: f64,
    /// Solo IPC.
    pub ipc: f64,
}

impl From<&fig6::Fig6Result> for Fig6Report {
    fn from(r: &fig6::Fig6Result) -> Self {
        Fig6Report {
            rows: r
                .rows
                .iter()
                .map(|row| Fig6RowReport {
                    benchmark: row.benchmark.to_string(),
                    data_array: row.util.data_array,
                    data_bus: row.util.data_bus,
                    tag_array: row.util.tag_array,
                    ipc: row.ipc,
                })
                .collect(),
            mean_data_util: r.mean_data_util(),
        }
    }
}

/// Figure 7 as a flat series.
#[derive(Debug, Clone)]
pub struct Fig7Report {
    /// One entry per benchmark: (name, write fraction, gathering rate).
    pub rows: Vec<(String, f64, f64)>,
    /// Mean write fraction (paper: ~55%).
    pub mean_write_frac: f64,
    /// Mean gathering rate (paper: ~80%).
    pub mean_gathering: f64,
}

impl From<&fig7::Fig7Result> for Fig7Report {
    fn from(r: &fig7::Fig7Result) -> Self {
        Fig7Report {
            rows: r
                .rows
                .iter()
                .map(|row| (row.benchmark.to_string(), row.l2_write_frac, row.gathering_rate))
                .collect(),
            mean_write_frac: r.mean_write_frac(),
            mean_gathering: r.mean_gathering(),
        }
    }
}

/// Figure 8 as a flat series.
#[derive(Debug, Clone)]
pub struct Fig8Report {
    /// One entry per arbiter configuration.
    pub rows: Vec<Fig8RowReport>,
}

/// One Figure 8 row.
#[derive(Debug, Clone)]
pub struct Fig8RowReport {
    /// Arbiter label.
    pub arbiter: String,
    /// Loads IPC.
    pub loads_ipc: f64,
    /// Loads target IPC (0 for non-VPC arbiters).
    pub loads_target: f64,
    /// Stores IPC.
    pub stores_ipc: f64,
    /// Stores target IPC.
    pub stores_target: f64,
    /// Data-array utilization.
    pub data_util: f64,
}

impl From<&fig8::Fig8Result> for Fig8Report {
    fn from(r: &fig8::Fig8Result) -> Self {
        Fig8Report {
            rows: r
                .rows
                .iter()
                .map(|row| Fig8RowReport {
                    arbiter: row.label.clone(),
                    loads_ipc: row.loads_ipc,
                    loads_target: row.loads_target,
                    stores_ipc: row.stores_ipc,
                    stores_target: row.stores_target,
                    data_util: row.data_util,
                })
                .collect(),
        }
    }
}

/// Figure 9 as a flat series.
#[derive(Debug, Clone)]
pub struct Fig9Report {
    /// One entry per subject benchmark.
    pub rows: Vec<Fig9RowReport>,
    /// Fraction of subjects meeting every QoS target (5% slack).
    pub qos_met_fraction: f64,
}

/// One Figure 9 row (all IPCs normalized to the beta=1 target).
#[derive(Debug, Clone)]
pub struct Fig9RowReport {
    /// Subject benchmark.
    pub benchmark: String,
    /// Normalized IPC under FCFS.
    pub fcfs: f64,
    /// Normalized IPC at beta = 1/4.
    pub vpc25: f64,
    /// Normalized IPC at beta = 1/2.
    pub vpc50: f64,
    /// Normalized IPC at beta = 1.
    pub vpc100: f64,
    /// Normalized target at beta = 1/4.
    pub target25: f64,
    /// Normalized target at beta = 1/2.
    pub target50: f64,
    /// Subject's data-array utilization share under FCFS / VPC 25/50/100.
    pub utils: [f64; 4],
}

impl From<&fig9::Fig9Result> for Fig9Report {
    fn from(r: &fig9::Fig9Result) -> Self {
        Fig9Report {
            rows: r
                .rows
                .iter()
                .map(|row| Fig9RowReport {
                    benchmark: row.benchmark.to_string(),
                    fcfs: row.fcfs_norm,
                    vpc25: row.vpc25_norm,
                    vpc50: row.vpc50_norm,
                    vpc100: row.vpc100_norm,
                    target25: row.target25_norm,
                    target50: row.target50_norm,
                    utils: [row.fcfs_util, row.vpc25_util, row.vpc50_util, row.vpc100_util],
                })
                .collect(),
            qos_met_fraction: r.qos_met_fraction(0.05),
        }
    }
}

/// The headline experiment as a flat series.
#[derive(Debug, Clone)]
pub struct Fig10Report {
    /// One entry per mix.
    pub mixes: Vec<MixReport>,
    /// Mean harmonic-mean improvement, percent (paper: ~14%).
    pub hmean_improvement_pct: f64,
    /// Mean minimum-normalized-IPC improvement, percent (paper: ~25%).
    pub min_improvement_pct: f64,
}

/// One mix's numbers.
#[derive(Debug, Clone)]
pub struct MixReport {
    /// The four benchmarks.
    pub mix: Vec<String>,
    /// Target-normalized IPCs under FCFS.
    pub fcfs_norm: Vec<f64>,
    /// Target-normalized IPCs under VPC.
    pub vpc_norm: Vec<f64>,
}

impl From<&fig10::Fig10Result> for Fig10Report {
    fn from(r: &fig10::Fig10Result) -> Self {
        Fig10Report {
            mixes: r
                .mixes
                .iter()
                .map(|m| MixReport {
                    mix: m.mix.iter().map(|s| s.to_string()).collect(),
                    fcfs_norm: m.fcfs_norm.clone(),
                    vpc_norm: m.vpc_norm.clone(),
                })
                .collect(),
            hmean_improvement_pct: r.hmean_improvement_pct(),
            min_improvement_pct: r.min_improvement_pct(),
        }
    }
}

/// Serializes any report to pretty JSON.
pub fn to_json<T: ToJson>(report: &T) -> String {
    report.to_json_value().pretty()
}

/// Aggregated wall-clock cost of all jobs sharing one label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingRow {
    /// The job label (e.g. `fig6/art`).
    pub label: String,
    /// How many jobs ran under this label.
    pub runs: u64,
    /// Total wall-clock time across those runs.
    pub total: Duration,
}

/// Where simulation time went: per-job wall-clock timings drained from
/// the [`exec`] layer, aggregated by label.
///
/// Timing is measurement noise, not figure data — the figure binaries
/// print this to stderr so `--json` stdout stays byte-identical across
/// `--jobs` settings and machines.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimingReport {
    /// One row per distinct job label, slowest total first.
    pub rows: Vec<TimingRow>,
    /// Total simulation time across all jobs (sums worker time, so it can
    /// exceed wall-clock when jobs ran in parallel).
    pub total: Duration,
}

impl TimingReport {
    /// Drains every job timing the [`exec`] layer recorded since the last
    /// drain and aggregates it.
    pub fn drain() -> TimingReport {
        TimingReport::from_timings(exec::take_timings())
    }

    /// Aggregates an explicit timing list (exposed for tests).
    pub fn from_timings(timings: Vec<exec::JobTiming>) -> TimingReport {
        let mut rows: Vec<TimingRow> = Vec::new();
        let mut total = Duration::ZERO;
        for t in timings {
            total += t.elapsed;
            match rows.iter_mut().find(|r| r.label == t.label) {
                Some(row) => {
                    row.runs += 1;
                    row.total += t.elapsed;
                }
                None => rows.push(TimingRow { label: t.label, runs: 1, total: t.elapsed }),
            }
        }
        rows.sort_by(|a, b| b.total.cmp(&a.total).then_with(|| a.label.cmp(&b.label)));
        TimingReport { rows, total }
    }

    /// Number of jobs behind the report.
    pub fn jobs(&self) -> u64 {
        self.rows.iter().map(|r| r.runs).sum()
    }

    /// True when no job timings were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "simulation time by job: {} job(s), {:.3} s total",
            self.jobs(),
            self.total.as_secs_f64()
        )?;
        for row in self.rows.iter().take(12) {
            writeln!(
                f,
                "  {:<44} {:>9.1} ms  x{}",
                row.label,
                row.total.as_secs_f64() * 1e3,
                row.runs
            )?;
        }
        if self.rows.len() > 12 {
            writeln!(f, "  ... {} more label(s)", self.rows.len() - 12)?;
        }
        Ok(())
    }
}

impl ToJson for TimingRow {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("label", JsonValue::from(self.label.as_str())),
            ("runs", JsonValue::from(self.runs)),
            ("total_ms", JsonValue::from(self.total.as_secs_f64() * 1e3)),
        ])
    }
}

impl ToJson for TimingReport {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("jobs", JsonValue::from(self.jobs())),
            ("total_ms", JsonValue::from(self.total.as_secs_f64() * 1e3)),
            ("rows", rows_json(&self.rows)),
        ])
    }
}

impl ToJson for UtilizationReport {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("label", JsonValue::from(self.label.as_str())),
            ("tag_array", JsonValue::from(self.tag_array)),
            ("data_array", JsonValue::from(self.data_array)),
            ("data_bus", JsonValue::from(self.data_bus)),
        ])
    }
}

impl ToJson for Fig5Report {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([("rows", rows_json(&self.rows))])
    }
}

impl ToJson for Fig6RowReport {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("benchmark", JsonValue::from(self.benchmark.as_str())),
            ("data_array", JsonValue::from(self.data_array)),
            ("data_bus", JsonValue::from(self.data_bus)),
            ("tag_array", JsonValue::from(self.tag_array)),
            ("ipc", JsonValue::from(self.ipc)),
        ])
    }
}

impl ToJson for Fig6Report {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("rows", rows_json(&self.rows)),
            ("mean_data_util", JsonValue::from(self.mean_data_util)),
        ])
    }
}

impl ToJson for Fig7Report {
    fn to_json_value(&self) -> JsonValue {
        // Tuple rows render as 3-element arrays, matching the historical
        // shape of `results/fig7_store_gathering.json`.
        let rows = self
            .rows
            .iter()
            .map(|(name, write_frac, gathering)| {
                JsonValue::Array(vec![
                    JsonValue::from(name.as_str()),
                    JsonValue::from(*write_frac),
                    JsonValue::from(*gathering),
                ])
            })
            .collect();
        JsonValue::object([
            ("rows", JsonValue::Array(rows)),
            ("mean_write_frac", JsonValue::from(self.mean_write_frac)),
            ("mean_gathering", JsonValue::from(self.mean_gathering)),
        ])
    }
}

impl ToJson for Fig8RowReport {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("arbiter", JsonValue::from(self.arbiter.as_str())),
            ("loads_ipc", JsonValue::from(self.loads_ipc)),
            ("loads_target", JsonValue::from(self.loads_target)),
            ("stores_ipc", JsonValue::from(self.stores_ipc)),
            ("stores_target", JsonValue::from(self.stores_target)),
            ("data_util", JsonValue::from(self.data_util)),
        ])
    }
}

impl ToJson for Fig8Report {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([("rows", rows_json(&self.rows))])
    }
}

impl ToJson for Fig9RowReport {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("benchmark", JsonValue::from(self.benchmark.as_str())),
            ("fcfs", JsonValue::from(self.fcfs)),
            ("vpc25", JsonValue::from(self.vpc25)),
            ("vpc50", JsonValue::from(self.vpc50)),
            ("vpc100", JsonValue::from(self.vpc100)),
            ("target25", JsonValue::from(self.target25)),
            ("target50", JsonValue::from(self.target50)),
            ("utils", JsonValue::array(self.utils.to_vec())),
        ])
    }
}

impl ToJson for Fig9Report {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("rows", rows_json(&self.rows)),
            ("qos_met_fraction", JsonValue::from(self.qos_met_fraction)),
        ])
    }
}

impl ToJson for MixReport {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("mix", JsonValue::array(self.mix.iter().map(String::as_str))),
            ("fcfs_norm", JsonValue::array(self.fcfs_norm.clone())),
            ("vpc_norm", JsonValue::array(self.vpc_norm.clone())),
        ])
    }
}

impl ToJson for Fig10Report {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::object([
            ("mixes", rows_json(&self.mixes)),
            ("hmean_improvement_pct", JsonValue::from(self.hmean_improvement_pct)),
            ("min_improvement_pct", JsonValue::from(self.min_improvement_pct)),
        ])
    }
}

fn rows_json<T: ToJson>(rows: &[T]) -> JsonValue {
    JsonValue::Array(rows.iter().map(ToJson::to_json_value).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_cache::L2Utilization;

    #[test]
    fn fig5_report_flattens_rows() {
        let result = fig5::Fig5Result {
            rows: vec![fig5::Fig5Row {
                benchmark: "Loads",
                banks: 2,
                util: L2Utilization { tag_array: 0.5, data_array: 1.0, data_bus: 1.0 },
            }],
        };
        let report = Fig5Report::from(&result);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].label, "Loads 2B");
        assert_eq!(report.rows[0].data_array, 1.0);
    }

    #[test]
    fn fig8_report_preserves_targets() {
        let result = fig8::Fig8Result {
            rows: vec![fig8::Fig8Row {
                label: "VPC 50%".into(),
                loads_ipc: 0.156,
                stores_ipc: 0.078,
                loads_target: 0.156,
                stores_target: 0.078,
                data_util: 1.0,
            }],
        };
        let report = Fig8Report::from(&result);
        assert_eq!(report.rows[0].arbiter, "VPC 50%");
        assert_eq!(report.rows[0].loads_target, 0.156);
    }

    #[test]
    fn fig10_report_carries_improvements() {
        let result = fig10::Fig10Result {
            mixes: vec![fig10::MixResult {
                mix: ["a", "b", "c", "d"],
                fcfs_norm: vec![1.0, 0.9, 1.1, 0.8],
                vpc_norm: vec![1.0, 1.0, 1.1, 1.0],
                fcfs_standalone: vec![0.5; 4],
                vpc_standalone: vec![0.5; 4],
            }],
        };
        let report = Fig10Report::from(&result);
        assert!(report.min_improvement_pct > 0.0);
        assert_eq!(report.mixes[0].mix, vec!["a", "b", "c", "d"]);
    }

    /// Golden output: a full figure-5 report serializes byte-for-byte in
    /// the shape the checked-in `results/fig5_micro_util.json` uses.
    #[test]
    fn fig5_json_matches_golden_shape() {
        let result = fig5::Fig5Result {
            rows: vec![
                fig5::Fig5Row {
                    benchmark: "Loads",
                    banks: 2,
                    util: L2Utilization { tag_array: 0.5, data_array: 1.0, data_bus: 1.0 },
                },
                fig5::Fig5Row {
                    benchmark: "Stores",
                    banks: 4,
                    util: L2Utilization {
                        tag_array: 0.25,
                        data_array: 0.22222916666666667,
                        data_bus: 0.125,
                    },
                },
            ],
        };
        let got = to_json(&Fig5Report::from(&result));
        let want = concat!(
            "{\n",
            "  \"rows\": [\n",
            "    {\n",
            "      \"label\": \"Loads 2B\",\n",
            "      \"tag_array\": 0.5,\n",
            "      \"data_array\": 1.0,\n",
            "      \"data_bus\": 1.0\n",
            "    },\n",
            "    {\n",
            "      \"label\": \"Stores 4B\",\n",
            "      \"tag_array\": 0.25,\n",
            "      \"data_array\": 0.22222916666666667,\n",
            "      \"data_bus\": 0.125\n",
            "    }\n",
            "  ]\n",
            "}"
        );
        assert_eq!(got, want);
    }

    #[test]
    fn timing_report_aggregates_by_label_and_sorts_by_total() {
        let ms = Duration::from_millis;
        let report = TimingReport::from_timings(vec![
            exec::JobTiming { label: "fig6/art".into(), elapsed: ms(10) },
            exec::JobTiming { label: "fig6/mcf".into(), elapsed: ms(30) },
            exec::JobTiming { label: "fig6/art".into(), elapsed: ms(25) },
        ]);
        assert_eq!(report.jobs(), 3);
        assert_eq!(report.total, ms(65));
        assert_eq!(report.rows[0].label, "fig6/art");
        assert_eq!(report.rows[0].runs, 2);
        assert_eq!(report.rows[0].total, ms(35));
        assert_eq!(report.rows[1].label, "fig6/mcf");
        let text = report.to_string();
        assert!(text.contains("3 job(s)"), "{text}");
        assert!(to_json(&report).contains("\"total_ms\": 65.0"));
    }

    /// Tuple rows (figure 7) serialize as plain JSON arrays.
    #[test]
    fn fig7_rows_serialize_as_arrays() {
        let report = Fig7Report {
            rows: vec![("gcc".to_string(), 0.55, 0.8)],
            mean_write_frac: 0.55,
            mean_gathering: 0.8,
        };
        let got = to_json(&report);
        assert!(
            got.contains("\"rows\": [\n    [\n      \"gcc\",\n      0.55,\n      0.8\n    ]\n  ]")
        );
        assert!(got.contains("\"mean_write_frac\": 0.55"));
    }
}
