//! Smoke tests: every figure runner executes on a reduced configuration
//! and produces structurally complete, printable results.

use vpc::experiments::{ablations, fig10, fig4, fig5, fig6, fig8, fig9, RunBudget};
use vpc::prelude::*;

fn small_base() -> CmpConfig {
    let mut cfg = CmpConfig::table1();
    cfg.l2.total_sets = 1024;
    cfg
}

fn tiny_budget() -> RunBudget {
    RunBudget { warmup: 6_000, window: 20_000 }
}

#[test]
fn fig4_smoke() {
    let r = fig4::run(&small_base());
    assert!(r.first_latency >= 10 && r.first_latency <= 30);
    assert!(r.to_string().contains("critical word"));
}

#[test]
fn fig5_smoke() {
    let r = fig5::run(&small_base(), tiny_budget());
    assert_eq!(r.rows.len(), 8, "2 benchmarks x 4 bank counts");
    for row in &r.rows {
        assert!(row.util.data_array >= 0.0 && row.util.data_array <= 1.0);
    }
    assert!(r.to_string().contains("Loads 2B"));
}

#[test]
fn fig6_and_fig7_smoke_subset() {
    // The full 18-benchmark series runs in the bench binary; here a
    // 3-benchmark subset checks the machinery.
    let base = small_base();
    let budget = tiny_budget();
    for b in ["art", "swim", "sixtrack"] {
        let row = fig6::run_one(&base, b, budget);
        assert!(row.ipc > 0.0, "{b} must make progress");
        assert!(row.util.data_array > 0.0, "{b} must touch the L2");
    }
}

#[test]
fn fig8_smoke() {
    let r = fig8::run(&small_base(), tiny_budget());
    assert_eq!(r.rows.len(), 7, "RoW + FCFS + 5 VPC points");
    let row = r.row("RoW").expect("RoW row present");
    // With the tiny warm-up the load stream still has miss gaps that let a
    // few stores through; the steady-state starvation check lives in
    // tests/qos_end_to_end.rs.
    assert!(row.stores_ipc < row.loads_ipc * 0.3, "RoW heavily favors loads: {row:?}");
    let vpc100 = r.row("VPC 100%").expect("VPC 100% row");
    let vpc0 = r.row("VPC 0%").expect("VPC 0% row");
    assert!(
        vpc100.loads_ipc < vpc0.loads_ipc * 0.5,
        "zero-share Loads lives on scraps: {vpc100:?} vs {vpc0:?}"
    );
    assert!(vpc100.stores_ipc > vpc0.stores_ipc, "Stores gains with its share");
    assert!(r.to_string().contains("VPC 50%"));
}

#[test]
fn fig9_smoke_one_subject() {
    let r = fig9::run(&small_base(), &["gcc"], tiny_budget());
    assert_eq!(r.rows.len(), 1);
    let row = &r.rows[0];
    assert!(row.vpc100_norm > 0.8, "full share approaches standalone: {row:?}");
    assert!(r.to_string().contains("gcc"));
}

#[test]
fn fig10_smoke_one_mix() {
    let r = fig10::run(&small_base(), &[["gcc", "gzip", "twolf", "ammp"]], tiny_budget());
    assert_eq!(r.mixes.len(), 1);
    assert!(r.vpc_qos_met(0.10) > 0.7, "most threads meet targets: {r:?}");
    assert!(r.to_string().contains("hmean"));
}

#[test]
fn ablation_displays_are_complete() {
    let base = small_base();
    let budget = tiny_budget();
    let wc = ablations::work_conservation(&base, budget);
    assert!(wc.to_string().contains("work conservation"));
    let re = ablations::reorder(&base, budget);
    assert!(re.to_string().contains("reordering"));
    let pre = ablations::preemption(&base, budget);
    assert_eq!(pre.points.len(), 3);
    assert!(pre.to_string().contains("preemption"));
}
