//! A minimal, dependency-free JSON document model and pretty printer.
//!
//! The workspace is hermetic (std only), so the `--json` output of the
//! `vpc-bench` binaries is produced by this hand-rolled emitter instead of
//! an external serialization crate. The printer reproduces the layout the
//! checked-in `results/*.json` files were generated with: two-space
//! indent, `"key": value` spacing, shortest-roundtrip floats with a
//! trailing `.0` on integral values, and tuples rendered as arrays.
//!
//! Build documents with the [`JsonValue`] constructors, or implement
//! [`ToJson`] for a report type and call [`crate::report::to_json`].

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`. Also emitted for non-finite floats, which JSON cannot carry.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, printed without a decimal point.
    Int(i64),
    /// A float, printed shortest-roundtrip with `.0` appended when
    /// integral so it round-trips as a float.
    Float(f64),
    /// A string, escaped on output.
    Str(String),
    /// An ordered sequence.
    Array(Vec<JsonValue>),
    /// Key/value pairs, printed in insertion order (reports rely on this
    /// to keep field order stable across runs).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from anything convertible to [`JsonValue`].
    pub fn array<V: Into<JsonValue>>(items: impl IntoIterator<Item = V>) -> JsonValue {
        JsonValue::Array(items.into_iter().map(Into::into).collect())
    }

    /// Pretty-prints with two-space indentation (no trailing newline).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(x) => write_f64(out, *x),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; degrade to null rather than emit an
        // unparseable document.
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{x}");
    // Rust's shortest-roundtrip Display prints integral floats without a
    // fraction ("1"); keep them self-describing as floats ("1.0").
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a JSON document node.
///
/// Implemented by every report type in [`crate::report`]; implement it for
/// new result types to make them `--json`-printable via
/// [`crate::report::to_json`].
pub trait ToJson {
    /// Converts `self` into a [`JsonValue`] tree.
    fn to_json_value(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json_value(&self) -> JsonValue {
        self.clone()
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<i64> for JsonValue {
    fn from(i: i64) -> Self {
        JsonValue::Int(i)
    }
}

impl From<u64> for JsonValue {
    fn from(u: u64) -> Self {
        match i64::try_from(u) {
            Ok(i) => JsonValue::Int(i),
            Err(_) => JsonValue::Float(u as f64),
        }
    }
}

impl From<u32> for JsonValue {
    fn from(u: u32) -> Self {
        JsonValue::Int(i64::from(u))
    }
}

impl From<usize> for JsonValue {
    fn from(u: usize) -> Self {
        JsonValue::from(u as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Float(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl<V: Into<JsonValue>> From<Vec<V>> for JsonValue {
    fn from(items: Vec<V>) -> Self {
        JsonValue::array(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_print_like_json() {
        assert_eq!(JsonValue::Null.pretty(), "null");
        assert_eq!(JsonValue::Bool(true).pretty(), "true");
        assert_eq!(JsonValue::Bool(false).pretty(), "false");
        assert_eq!(JsonValue::Int(-42).pretty(), "-42");
        // Values beyond i64 fall back to the float path.
        assert_eq!(
            JsonValue::from(18_446_744_073_709_551_615u64).pretty(),
            "18446744073709552000.0"
        );
    }

    #[test]
    fn floats_keep_a_fraction_and_roundtrip_shortest() {
        assert_eq!(JsonValue::Float(1.0).pretty(), "1.0");
        assert_eq!(JsonValue::Float(-0.0).pretty(), "-0.0");
        assert_eq!(JsonValue::Float(0.5).pretty(), "0.5");
        assert_eq!(JsonValue::Float(0.156).pretty(), "0.156");
        // Shortest roundtrip, exactly as the checked-in results files.
        assert_eq!(JsonValue::Float(0.22222916666666667).pretty(), "0.22222916666666667");
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        assert_eq!(JsonValue::Float(f64::NAN).pretty(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).pretty(), "null");
        assert_eq!(JsonValue::Float(f64::NEG_INFINITY).pretty(), "null");
    }

    #[test]
    fn strings_escape_quotes_backslashes_and_control_chars() {
        assert_eq!(JsonValue::from("plain").pretty(), "\"plain\"");
        assert_eq!(JsonValue::from("say \"hi\"").pretty(), r#""say \"hi\"""#);
        assert_eq!(JsonValue::from("a\\b").pretty(), r#""a\\b""#);
        assert_eq!(
            JsonValue::from("line1\nline2\ttabbed\r").pretty(),
            r#""line1\nline2\ttabbed\r""#
        );
        assert_eq!(JsonValue::from("\u{08}\u{0c}\u{01}").pretty(), r#""\b\f\u0001""#);
        // Non-ASCII passes through unescaped (UTF-8 output).
        assert_eq!(JsonValue::from("héllo").pretty(), "\"héllo\"");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(JsonValue::Array(vec![]).pretty(), "[]");
        assert_eq!(JsonValue::Object(vec![]).pretty(), "{}");
    }

    #[test]
    fn nested_arrays_and_objects_indent_two_spaces() {
        let doc = JsonValue::object([
            (
                "rows",
                JsonValue::array(vec![JsonValue::object([
                    ("label", JsonValue::from("Loads 2B")),
                    ("tag_array", JsonValue::from(0.5)),
                ])]),
            ),
            ("mean", JsonValue::from(1.0)),
            (
                "tuple",
                JsonValue::Array(vec![
                    JsonValue::from("gcc"),
                    JsonValue::from(0.25),
                    JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(2)]),
                ]),
            ),
        ]);
        let want = "{\n  \"rows\": [\n    {\n      \"label\": \"Loads 2B\",\n      \"tag_array\": 0.5\n    }\n  ],\n  \"mean\": 1.0,\n  \"tuple\": [\n    \"gcc\",\n    0.25,\n    [\n      1,\n      2\n    ]\n  ]\n}";
        assert_eq!(doc.pretty(), want);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let doc = JsonValue::object([("z", JsonValue::Int(1)), ("a", JsonValue::Int(2))]);
        assert_eq!(doc.pretty(), "{\n  \"z\": 1,\n  \"a\": 2\n}");
    }
}
