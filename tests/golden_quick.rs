//! Golden tests: every figure series at `RunBudget::quick()`, diffed
//! byte-for-byte against the checked-in `results/quick/*.json` files.
//!
//! Each test regenerates exactly what the corresponding binary prints
//! with `--quick --json` (same config, same full benchmark grid), so a
//! behavioral change anywhere in the simulator surfaces as a golden
//! diff. After an *intended* change, refresh the files with:
//!
//! ```sh
//! VPC_UPDATE_GOLDENS=1 cargo test --test golden_quick
//! ```

use std::path::PathBuf;

use vpc::experiments::{fig10, fig5, fig6, fig7, fig8, fig9, RunBudget};
use vpc::prelude::*;
use vpc::report::{
    to_json, Fig10Report, Fig5Report, Fig6Report, Fig7Report, Fig8Report, Fig9Report,
};
use vpc_workloads::SPEC_NAMES;

/// Environment variable that switches the tests into updater mode.
const UPDATE_ENV: &str = "VPC_UPDATE_GOLDENS";

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/quick").join(name)
}

/// Compares `rendered` (plus the trailing newline `println!` adds) to
/// the golden file, or rewrites the file when `VPC_UPDATE_GOLDENS=1`.
fn check_golden(name: &str, rendered: String) {
    let rendered = format!("{rendered}\n");
    let path = golden_path(name);
    if std::env::var(UPDATE_ENV).is_ok_and(|v| v == "1") {
        std::fs::write(&path, rendered).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("read {path:?}: {e}\n(generate goldens with {UPDATE_ENV}=1 cargo test --test golden_quick)")
    });
    assert_eq!(
        rendered, golden,
        "regenerated {name} differs from the checked-in golden; if the \
         behavior change is intended, refresh with {UPDATE_ENV}=1"
    );
}

#[test]
fn fig5_matches_golden() {
    let result = fig5::run(&CmpConfig::table1(), RunBudget::quick());
    check_golden("fig5_micro_util.json", to_json(&Fig5Report::from(&result)));
}

#[test]
fn fig6_matches_golden() {
    let result = fig6::run(&CmpConfig::table1(), RunBudget::quick());
    check_golden("fig6_spec_util.json", to_json(&Fig6Report::from(&result)));
}

#[test]
fn fig7_matches_golden() {
    let result = fig7::run(&CmpConfig::table1(), RunBudget::quick());
    check_golden("fig7_store_gathering.json", to_json(&Fig7Report::from(&result)));
}

#[test]
fn fig8_matches_golden() {
    let result = fig8::run(&CmpConfig::table1_with_threads(2), RunBudget::quick());
    check_golden("fig8_loads_stores.json", to_json(&Fig8Report::from(&result)));
}

#[test]
fn fig9_matches_golden() {
    let result = fig9::run(&CmpConfig::table1(), &SPEC_NAMES, RunBudget::quick());
    check_golden("fig9_spec_vs_stores.json", to_json(&Fig9Report::from(&result)));
}

#[test]
fn fig10_matches_golden() {
    let result = fig10::run(&CmpConfig::table1(), &fig10::MIXES, RunBudget::quick());
    check_golden("fig10_heterogeneous.json", to_json(&Fig10Report::from(&result)));
}
