//! Cross-policy QoS properties: every share-aware arbiter (VPC, DRR, SFQ)
//! must converge to share-proportional service under backlog, and the
//! share-oblivious policies must at least not lose requests.

use vpc_arbiters::{ArbRequest, ArbiterPolicy, IntraThreadOrder};
use vpc_sim::check::{self, gen, Config};
use vpc_sim::{ensure, ensure_eq, AccessKind, Share, ThreadId};

fn share_aware_policies(shares: Vec<Share>) -> Vec<ArbiterPolicy> {
    vec![
        ArbiterPolicy::Vpc { shares: shares.clone(), order: IntraThreadOrder::ReadOverWrite },
        ArbiterPolicy::Drr { shares: shares.clone() },
        ArbiterPolicy::Sfq { shares },
    ]
}

/// Under continuous backlog with mixed read/write service times, every
/// QoS arbiter delivers service (busy cycles, not grant counts)
/// proportional to the configured shares, within 10%.
#[test]
fn qos_arbiters_converge_to_proportional_service() {
    check::forall("qos_arbiters_converge_to_proportional_service", Config::cases(20), |rng| {
        let num0 = gen::range(rng, 1, 3) as u32;
        let shares = vec![Share::new(num0, 4).unwrap(), Share::new(4 - num0, 4).unwrap()];
        let inner_seed = rng.next_u64();
        for policy in share_aware_policies(shares.clone()) {
            let mut arb = policy.build(2);
            // Each policy replays the identical arrival pattern.
            let mut rng = vpc_sim::SplitMix64::new(inner_seed);
            let mut service = [0u64; 2];
            let mut id = 0;
            let mut now = 0u64;
            let mut queued = [0u32; 2];
            for _ in 0..6000 {
                for t in 0..2u8 {
                    while queued[t as usize] < 2 {
                        id += 1;
                        let write = rng.chance(0.4);
                        let kind = if write { AccessKind::Write } else { AccessKind::Read };
                        let cost = if write { 16 } else { 8 };
                        arb.enqueue(ArbRequest::new(id, ThreadId(t), kind, cost), now);
                        queued[t as usize] += 1;
                    }
                }
                let g = arb.select(now).expect("backlogged");
                queued[g.thread.index()] -= 1;
                service[g.thread.index()] += g.service_time;
                now += g.service_time;
            }
            let total = (service[0] + service[1]) as f64;
            let got = service[0] as f64 / total;
            let want = shares[0].as_f64();
            ensure!(
                (got - want).abs() < 0.10,
                "{}: thread 0 got {got:.3} of service, share is {want:.3}",
                policy.label()
            );
        }
        Ok(())
    });
}

/// No arbiter ever loses or duplicates a request.
#[test]
fn arbiters_conserve_requests() {
    check::forall("arbiters_conserve_requests", Config::cases(20), |rng| {
        let shares = vec![Share::new(1, 2).unwrap(), Share::new(1, 2).unwrap()];
        let policy = match rng.below(6) {
            0 => ArbiterPolicy::Fcfs,
            1 => ArbiterPolicy::RowFcfs,
            2 => ArbiterPolicy::RoundRobin,
            3 => ArbiterPolicy::Vpc { shares, order: IntraThreadOrder::Fifo },
            4 => ArbiterPolicy::Drr { shares },
            _ => ArbiterPolicy::Sfq { shares },
        };
        let mut arb = policy.build(2);
        let mut submitted = std::collections::BTreeSet::new();
        let mut granted = std::collections::BTreeSet::new();
        let mut id = 0u64;
        for now in 0..2000u64 {
            if rng.chance(0.4) {
                id += 1;
                let t = gen::thread_id(rng, 2);
                arb.enqueue(ArbRequest::new(id, t, AccessKind::Read, 8), now);
                submitted.insert(id);
            }
            if rng.chance(0.4) {
                if let Some(g) = arb.select(now) {
                    ensure!(granted.insert(g.id), "request {} granted twice", g.id);
                }
            }
        }
        while let Some(g) = arb.select(3000) {
            ensure!(granted.insert(g.id), "request {} granted twice", g.id);
        }
        ensure_eq!(submitted, granted, "every request granted exactly once");
        ensure!(arb.is_empty());
        Ok(())
    });
}

/// Round robin visits backlogged threads in strict rotation.
#[test]
fn round_robin_is_fair_per_request() {
    check::forall("round_robin_is_fair_per_request", Config::cases(20), |rng| {
        let mut arb = ArbiterPolicy::RoundRobin.build(4);
        let mut id = 0u64;
        // Keep all four threads backlogged; over 4k grants each thread
        // receives exactly 1k.
        let mut queued = [0u32; 4];
        let mut grants = [0u32; 4];
        for now in 0..4000u64 {
            for t in 0..4u8 {
                while queued[t as usize] < 2 {
                    id += 1;
                    let kind = gen::access_kind(rng);
                    arb.enqueue(ArbRequest::new(id, ThreadId(t), kind, 8), now);
                    queued[t as usize] += 1;
                }
            }
            let g = arb.select(now).expect("backlogged");
            queued[g.thread.index()] -= 1;
            grants[g.thread.index()] += 1;
        }
        for t in 0..4 {
            ensure_eq!(grants[t], 1000, "thread {t} grants {grants:?}");
        }
        Ok(())
    });
}
