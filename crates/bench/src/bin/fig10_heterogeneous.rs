//! Headline result: heterogeneous 4-thread mixes, FCFS vs. VPC.

use std::time::Instant;

use vpc::experiments::fig10;
use vpc::prelude::*;
use vpc::report::{to_json, Fig10Report};

fn main() {
    let budget = vpc_bench::budget_from_args();
    let jobs = vpc_bench::jobs_from_args();
    let trace_path = vpc_bench::trace_from_args();
    let start = Instant::now();
    let result = fig10::run(&CmpConfig::table1(), &fig10::MIXES, budget);
    let wall = start.elapsed();
    if vpc_bench::json_requested() {
        println!("{}", to_json(&Fig10Report::from(&result)));
    } else {
        vpc_bench::header("Heterogeneous mixes (abstract's 14% / 25% claim)", budget);
        println!("{result}");
    }
    vpc_bench::report_timings("fig10", jobs, wall);
    if let Some(path) = &trace_path {
        vpc_bench::write_job_traces(path);
    }
}
