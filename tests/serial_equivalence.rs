//! The headline guarantee of the parallel experiment engine: running a
//! figure grid with `--jobs 4` produces output *byte-identical* to
//! `--jobs 1`. Each runner here renders its `ToJson` report under both
//! worker counts and compares the strings.
//!
//! The worker-count override is process-global, so every test serializes
//! on one mutex and restores the default before releasing it.

use std::sync::Mutex;

use vpc::experiments::{fig10, fig5, fig6, fig7, fig8, fig9, RunBudget};
use vpc::prelude::*;
use vpc::report::{
    to_json, Fig10Report, Fig5Report, Fig6Report, Fig7Report, Fig8Report, Fig9Report,
};
use vpc_sim::exec;

static JOBS_LOCK: Mutex<()> = Mutex::new(());

/// Renders `render()` once at 1 worker and once at 4, returning both
/// strings. Holds the global jobs lock for the duration and always
/// restores the default worker count.
fn render_at_1_and_4(render: impl Fn() -> String) -> (String, String) {
    let _guard = JOBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    exec::set_jobs(Some(1));
    let serial = render();
    exec::set_jobs(Some(4));
    let parallel = render();
    exec::set_jobs(None);
    exec::take_timings();
    (serial, parallel)
}

fn small_base() -> CmpConfig {
    let mut cfg = CmpConfig::table1();
    cfg.l2.total_sets = 1024;
    cfg
}

#[test]
fn fig5_is_serial_equivalent() {
    let base = small_base();
    let (serial, parallel) =
        render_at_1_and_4(|| to_json(&Fig5Report::from(&fig5::run(&base, RunBudget::quick()))));
    assert_eq!(serial, parallel, "fig5 output depends on the worker count");
}

#[test]
fn fig6_is_serial_equivalent() {
    let base = small_base();
    let (serial, parallel) =
        render_at_1_and_4(|| to_json(&Fig6Report::from(&fig6::run(&base, RunBudget::quick()))));
    assert_eq!(serial, parallel, "fig6 output depends on the worker count");
}

#[test]
fn fig7_is_serial_equivalent() {
    let base = small_base();
    let (serial, parallel) =
        render_at_1_and_4(|| to_json(&Fig7Report::from(&fig7::run(&base, RunBudget::quick()))));
    assert_eq!(serial, parallel, "fig7 output depends on the worker count");
}

#[test]
fn fig8_is_serial_equivalent() {
    let base = {
        let mut cfg = CmpConfig::table1_with_threads(2);
        cfg.l2.total_sets = 1024;
        cfg
    };
    let (serial, parallel) =
        render_at_1_and_4(|| to_json(&Fig8Report::from(&fig8::run(&base, RunBudget::quick()))));
    assert_eq!(serial, parallel, "fig8 output depends on the worker count");
}

#[test]
fn fig9_is_serial_equivalent() {
    // Two benchmarks (14 simulations) keep the debug-mode runtime sane;
    // the full 18-benchmark grid goes through the same code path.
    let base = small_base();
    let (serial, parallel) = render_at_1_and_4(|| {
        to_json(&Fig9Report::from(&fig9::run(&base, &["gcc", "art"], RunBudget::quick())))
    });
    assert_eq!(serial, parallel, "fig9 output depends on the worker count");
}

#[test]
fn fig10_is_serial_equivalent() {
    let base = small_base();
    let (serial, parallel) = render_at_1_and_4(|| {
        let mixes = [["gcc", "gzip", "twolf", "ammp"]];
        to_json(&Fig10Report::from(&fig10::run(&base, &mixes, RunBudget::quick())))
    });
    assert_eq!(serial, parallel, "fig10 output depends on the worker count");
}
