//! QoS target IPCs (§5.3).
//!
//! A thread's *target IPC* is its performance on a standalone private
//! machine provisioned like its VPC: a uniprocessor whose private cache has
//! the same number of sets, `alpha_i * ways` ways, and all shared-resource
//! latencies scaled by `1/beta_i`. A VPC meets its QoS objective when the
//! thread's IPC on the shared machine is at least this target (modulo
//! preemption-latency effects, which the paper quantifies).

use vpc_sim::Share;

use crate::config::{CmpConfig, WorkloadSpec};
use crate::system::CmpSystem;

/// Computes the target IPC of `workload` for a VPC with bandwidth share
/// `beta` and capacity share `alpha`, by simulating the equivalent private
/// machine for `warmup + window` cycles.
///
/// Returns `0.0` when `beta` is zero (a thread with no bandwidth allocation
/// has no performance guarantee, as in the paper's Figure 8 "VPC 0%"
/// configuration).
pub fn target_ipc(
    base: &CmpConfig,
    workload: WorkloadSpec,
    beta: Share,
    alpha: Share,
    warmup: u64,
    window: u64,
) -> f64 {
    if beta.is_zero() {
        return 0.0;
    }
    let cfg = base.private_machine(beta, alpha);
    let mut sys = CmpSystem::new(cfg, &[workload]);
    let m = sys.run_measured(warmup, window);
    m.ipc[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> CmpConfig {
        let mut cfg = CmpConfig::table1();
        cfg.l2.total_sets = 512;
        cfg
    }

    #[test]
    fn zero_share_has_zero_target() {
        let base = quick_base();
        let t = target_ipc(&base, WorkloadSpec::Loads, Share::ZERO, Share::FULL, 100, 100);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn target_scales_with_bandwidth_share() {
        let base = quick_base();
        let alpha = Share::new(1, 4).unwrap();
        let full = target_ipc(&base, WorkloadSpec::Loads, Share::FULL, alpha, 20_000, 40_000);
        let half = target_ipc(
            &base,
            WorkloadSpec::Loads,
            Share::new(1, 2).unwrap(),
            alpha,
            20_000,
            40_000,
        );
        assert!(full > 0.0 && half > 0.0);
        // The Loads microbenchmark is pure L2 bandwidth: halving the share
        // roughly halves the target.
        let ratio = full / half;
        assert!((1.6..=2.4).contains(&ratio), "bandwidth scaling ratio {ratio} != ~2");
    }

    #[test]
    fn monotone_in_share_for_stores() {
        let base = quick_base();
        let alpha = Share::new(1, 4).unwrap();
        let shares = [Share::new(1, 4).unwrap(), Share::new(1, 2).unwrap(), Share::FULL];
        let targets: Vec<f64> = shares
            .iter()
            .map(|&b| target_ipc(&base, WorkloadSpec::Stores, b, alpha, 20_000, 40_000))
            .collect();
        assert!(
            targets.windows(2).all(|w| w[0] <= w[1] * 1.05),
            "targets should increase with share: {targets:?}"
        );
    }
}
