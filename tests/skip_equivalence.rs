//! The headline guarantee of quiescence-aware cycle skipping: a system
//! advanced with [`CmpSystem::run`] (which fast-forwards through
//! provably-idle regions) is *state-identical* — down to every counter,
//! histogram bucket, and queue — to one advanced by the retained naive
//! reference loop, at every observation point.
//!
//! The comparison is the full `Debug` rendering of both systems, which
//! transitively covers every core (ROB, queues, stall counters, L1,
//! workload cursor), every L2 bank (ports, SMs, arbiters, meters,
//! histograms), and the memory controller (channels, queues, in-flight
//! requests). Any divergence — a stat off by one, a request issued a
//! cycle early — shows up as a string mismatch.

use vpc::{CmpConfig, CmpSystem, WorkloadSpec};
use vpc_arbiters::ArbiterPolicy;
use vpc_cache::CapacityPolicy;
use vpc_mem::ChannelMode;
use vpc_sim::check::{self, Config};
use vpc_sim::{ensure, Share, SplitMix64};

fn random_workload(rng: &mut SplitMix64) -> WorkloadSpec {
    match rng.below(8) {
        0 => WorkloadSpec::Loads,
        1 => WorkloadSpec::Stores,
        2 => WorkloadSpec::Idle,
        3 => WorkloadSpec::Spec("gcc"),
        4 => WorkloadSpec::Spec("art"),
        5 => WorkloadSpec::Spec("mcf"),
        6 => WorkloadSpec::Spec("equake"),
        _ => WorkloadSpec::Spec("gzip"),
    }
}

fn random_arbiter(rng: &mut SplitMix64, threads: usize) -> ArbiterPolicy {
    let equal: Vec<Share> = vec![Share::new(1, threads as u32).unwrap(); threads];
    match rng.below(6) {
        0 => ArbiterPolicy::Fcfs,
        1 => ArbiterPolicy::RowFcfs,
        2 => ArbiterPolicy::RoundRobin,
        3 => ArbiterPolicy::vpc_equal(threads),
        4 => ArbiterPolicy::Drr { shares: equal },
        _ => ArbiterPolicy::Sfq { shares: equal },
    }
}

fn random_config(rng: &mut SplitMix64) -> (CmpConfig, Vec<WorkloadSpec>) {
    let threads = rng.below(4) as usize + 1;
    let mut cfg =
        CmpConfig::table1_with_threads(threads).with_arbiter(random_arbiter(rng, threads));
    cfg.l2.total_sets = if rng.chance(0.5) { 512 } else { 1024 };
    if rng.chance(0.5) {
        cfg.l2.capacity = CapacityPolicy::vpc_equal(threads);
    }
    cfg.channels = match rng.below(3) {
        0 => ChannelMode::PerThread,
        1 => ChannelMode::SharedFcfs,
        _ => {
            ChannelMode::SharedFq { shares: vec![Share::new(1, threads as u32).unwrap(); threads] }
        }
    };
    let workloads = (0..threads).map(|_| random_workload(rng)).collect();
    (cfg, workloads)
}

/// Randomized workloads, thread counts, arbiters, capacity policies, and
/// channel modes: after every chunk of cycles, the skipping system's full
/// `Debug` state equals the naive reference's.
#[test]
fn skipping_is_state_identical_to_naive() {
    check::forall("skipping_is_state_identical_to_naive", Config::cases(10), |rng| {
        let (cfg, workloads) = random_config(rng);
        let mut naive = CmpSystem::new(cfg.clone(), &workloads);
        let mut skipping = CmpSystem::new(cfg, &workloads);
        // Uneven chunk boundaries so skip regions straddle observation
        // points (run() must clamp fast-forward at each chunk end).
        for chunk in 0..4 {
            let cycles = rng.below(8_000) + 500;
            naive.run_reference(cycles);
            skipping.run(cycles);
            let a = format!("{naive:?}");
            let b = format!("{skipping:?}");
            ensure!(
                a == b,
                "state diverged after chunk {chunk} at cycle {}: \
                 first difference at byte {}",
                naive.now(),
                a.bytes().zip(b.bytes()).position(|(x, y)| x != y).unwrap_or(a.len().min(b.len())),
            );
        }
        Ok(())
    });
}

/// The measurement API (warm-up + window) agrees between the two loops —
/// the path every experiment binary actually takes.
#[test]
fn measured_windows_agree_with_naive() {
    let mut cfg = CmpConfig::table1_with_threads(2).with_arbiter(ArbiterPolicy::vpc_equal(2));
    cfg.l2.total_sets = 512;
    let workloads = [WorkloadSpec::Spec("art"), WorkloadSpec::Stores];

    let mut skipping = CmpSystem::new(cfg.clone(), &workloads);
    let fast = skipping.run_measured(5_000, 20_000);

    let mut naive = CmpSystem::new(cfg, &workloads);
    naive.set_cycle_skipping(false);
    let slow = naive.run_measured(5_000, 20_000);

    assert_eq!(format!("{fast:?}"), format!("{slow:?}"), "measurements must be identical");
}
