//! Umbrella package for the Virtual Private Caches reproduction.
//!
//! This crate exists to host the workspace-level integration tests in
//! `tests/` and the runnable examples in `examples/`. All functionality
//! lives in the member crates; the most useful entry point is the [`vpc`]
//! crate, which assembles the simulated CMP and exposes the experiment
//! harness.
//!
//! ```
//! use vpc::prelude::*;
//!
//! let config = CmpConfig::table1();
//! assert_eq!(config.processors, 4);
//! ```

pub use vpc;
pub use vpc_arbiters;
pub use vpc_cache;
pub use vpc_capacity;
pub use vpc_cpu;
pub use vpc_mem;
pub use vpc_sim;
pub use vpc_workloads;
