//! Shared helpers for the figure-regeneration binaries.
//!
//! Every binary accepts `--quick` (or the `VPC_QUICK=1` environment
//! variable) to run with short simulation windows, and prints the same
//! rows/series as the corresponding figure or table of the paper.
//! Reproduction notes for each experiment live in `EXPERIMENTS.md` at the
//! repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::time::Duration;

use vpc::experiments::RunBudget;
use vpc::report::TimingReport;
use vpc_sim::{exec, trace};

pub mod harness;
pub mod scenarios;

/// Parses the standard CLI: `--quick` selects short windows. Also
/// installs the `--no-skip` cycle-skipping override (see
/// [`skip_from_args`]) so every experiment binary honors it.
pub fn budget_from_args() -> RunBudget {
    skip_from_args();
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("VPC_QUICK").is_ok_and(|v| v == "1");
    if quick {
        RunBudget::quick()
    } else {
        RunBudget::standard()
    }
}

/// Parses `--no-skip` (or `VPC_NO_SKIP=1`): disables quiescence-aware
/// cycle skipping for every system built afterwards, forcing the naive
/// tick-every-cycle loop. Output is byte-identical either way (that is
/// the protocol's contract, and `tests/skip_equivalence.rs` enforces
/// it); the flag exists as a cross-check and for debugging the skipping
/// machinery itself. Returns `true` when skipping stays enabled.
pub fn skip_from_args() -> bool {
    let no_skip = std::env::args().any(|a| a == "--no-skip")
        || std::env::var("VPC_NO_SKIP").is_ok_and(|v| v == "1");
    if no_skip {
        vpc::set_cycle_skipping_default(false);
    }
    !no_skip
}

/// Parses `--jobs N` / `--jobs=N`, installs it as the process-wide worker
/// count override, and returns the effective worker count (falling back
/// to `VPC_JOBS`, then the host's available parallelism). Exits with an
/// error on a malformed value — silently running serial would defeat the
/// point of the flag.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut explicit = None;
    let mut i = 1;
    while i < args.len() {
        let value = if let Some(v) = args[i].strip_prefix("--jobs=") {
            Some(v.to_string())
        } else if args[i] == "--jobs" {
            i += 1;
            args.get(i).cloned()
        } else {
            i += 1;
            continue;
        };
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n > 0 => explicit = Some(n),
            _ => {
                eprintln!("error: --jobs needs a positive integer, got {value:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    exec::set_jobs(explicit);
    exec::jobs()
}

/// Drains the per-job timings behind the run just finished and prints
/// them to **stderr** (stdout must stay byte-identical across `--jobs`
/// settings, so wall-clock noise never lands there).
pub fn report_timings(what: &str, jobs: usize, wall: Duration) {
    let timings = TimingReport::drain();
    if timings.is_empty() {
        return;
    }
    eprintln!(
        "-- {what}: {:.3} s wall at --jobs {jobs}, effective parallelism {:.1}x --",
        wall.as_secs_f64(),
        timings.total.as_secs_f64() / wall.as_secs_f64().max(1e-9)
    );
    eprint!("{timings}");
}

/// Whether `--json` was passed (machine-readable output).
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Whether `--metrics` was passed (QoS ledger / histogram summaries on
/// **stderr** — stdout stays byte-identical with or without the flag).
pub fn metrics_requested() -> bool {
    std::env::args().any(|a| a == "--metrics")
}

/// Parses `--trace <path>` / `--trace=path` and, when present, turns on
/// per-job trace capture in the [`vpc_sim::exec`] pool (ring capacity
/// [`trace::DEFAULT_CAPACITY`] per job). Exits with an error on a missing
/// path — silently not tracing would defeat the point of the flag.
pub fn trace_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let mut path = None;
    let mut i = 1;
    while i < args.len() {
        let value = if let Some(v) = args[i].strip_prefix("--trace=") {
            Some(v.to_string())
        } else if args[i] == "--trace" {
            i += 1;
            args.get(i).cloned()
        } else {
            i += 1;
            continue;
        };
        match value {
            Some(v) if !v.is_empty() => path = Some(PathBuf::from(v)),
            _ => {
                eprintln!("error: --trace needs an output path");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if path.is_some() {
        trace::set_capture(Some(trace::DEFAULT_CAPACITY));
    }
    path
}

/// Sanitizes a job label into a filename fragment (`fig5/Loads 2B` →
/// `fig5-Loads-2B`).
pub fn label_slug(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '-' })
        .collect()
}

/// Derives the per-job trace path `out.<slug>.json` from the main
/// `--trace` path `out.json`.
pub fn job_trace_path(base: &Path, label: &str) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    base.with_file_name(format!("{stem}.{}.json", label_slug(label)))
}

/// Drains the per-job trace logs behind the run just finished, writes the
/// merged Chrome trace to `base` (one process lane per job) and one file
/// per job next to it, and reports what was written to **stderr**.
pub fn write_job_traces(base: &Path) {
    let jobs = trace::take_job_logs();
    if jobs.is_empty() {
        eprintln!("-- no trace events captured; nothing written to {} --", base.display());
        return;
    }
    let write = |path: &Path, doc: &vpc::json::JsonValue| {
        if let Err(err) = vpc::trace::write_chrome_trace(path, doc) {
            eprintln!("error: cannot write trace {}: {err}", path.display());
            std::process::exit(1);
        }
    };
    write(base, &vpc::trace::chrome_trace_jobs(&jobs));
    for (label, log) in &jobs {
        write(&job_trace_path(base, label), &vpc::trace::chrome_trace(label, log));
    }
    eprintln!(
        "-- wrote {} ({} jobs, {} events, {} dropped) + per-job traces --",
        base.display(),
        jobs.len(),
        jobs.iter().map(|(_, l)| l.events().len()).sum::<usize>(),
        jobs.iter().map(|(_, l)| l.dropped()).sum::<u64>(),
    );
}

/// Prints a standard experiment header.
pub fn header(title: &str, budget: RunBudget) {
    println!("== {title} ==");
    println!("(warmup {} cycles, measured {} cycles)", budget.warmup, budget.window);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_selection_follows_env() {
        // One test covers both states: the process environment is shared
        // across tests, so mutate-and-restore must not race another test.
        std::env::remove_var("VPC_QUICK");
        assert_eq!(budget_from_args(), RunBudget::standard());
        std::env::set_var("VPC_QUICK", "1");
        assert_eq!(budget_from_args(), RunBudget::quick());
        std::env::remove_var("VPC_QUICK");
    }
}
