//! Cycle-level event tracing: a bounded, thread-local event recorder.
//!
//! Every interesting micro-architectural moment — an arbiter granting (or
//! deferring) a request with its fair-queuing virtual start/finish times,
//! a bank hit/miss/eviction, a store gathering into the SGB, a DRAM
//! channel issue — can be recorded as a [`TraceEvent`] into a bounded
//! [`TraceLog`]. The `vpc` core crate converts a log into Chrome
//! `trace_event` JSON for chrome://tracing / Perfetto.
//!
//! # Contract
//!
//! * **Tracing never perturbs simulated state.** Instrumentation sites
//!   only *read* model state; whether a recorder is installed cannot
//!   change a single simulated cycle, and stdout stays byte-identical
//!   with tracing on or off.
//! * **Recording is thread-local.** [`install`] arms the current thread,
//!   [`take`] disarms it and returns the log. Each [`crate::exec`] job
//!   runs entirely on one worker thread, so per-job capture (see
//!   [`set_capture`]) composes with the thread pool: job traces are
//!   collected in input order regardless of worker count.
//! * **The log is bounded.** A [`TraceLog`] created with capacity `c`
//!   retains the *first* `c` events and counts every later event in
//!   [`TraceLog::dropped`]; retained events are never reordered or
//!   replaced. Keeping the earliest events (rather than a sliding
//!   window) makes overflowing traces a stable prefix of the full
//!   stream, which is what golden-file diffs want.
//! * **Disabled tracing is near-free.** When no recorder is installed,
//!   an instrumentation site costs one thread-local load and a branch;
//!   event construction is behind a closure and never runs.
//!
//! # Example
//!
//! ```
//! use vpc_sim::trace::{self, EventData, ResourceId, TraceEvent};
//! use vpc_sim::{AccessKind, ThreadId};
//!
//! trace::install(16);
//! trace::emit(|| TraceEvent {
//!     at: 42,
//!     data: EventData::Grant {
//!         resource: ResourceId::data_array(0),
//!         thread: ThreadId(1),
//!         kind: AccessKind::Read,
//!         service: 8,
//!         virtual_start: Some(100),
//!         virtual_finish: Some(132),
//!     },
//! });
//! let log = trace::take().expect("a recorder was installed");
//! assert_eq!(log.events().len(), 1);
//! assert_eq!(log.dropped(), 0);
//! ```

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::types::{AccessKind, Cycle, LineAddr, ThreadId};

/// Default ring capacity used by the binaries' `--trace` flag.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Which arbitrated (or otherwise shared) resource an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// An L2 bank's tag array.
    TagArray,
    /// An L2 bank's data array.
    DataArray,
    /// An L2 bank's response bus port.
    DataBus,
    /// A DRAM channel (the memory controller's shared-channel arbiter).
    DramChannel,
}

impl ResourceKind {
    /// Short lowercase label used in trace exports (`tag`, `data`, …).
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::TagArray => "tag",
            ResourceKind::DataArray => "data",
            ResourceKind::DataBus => "bus",
            ResourceKind::DramChannel => "dram",
        }
    }
}

/// A concrete resource instance: a kind plus a unit index (bank index for
/// the L2 arrays, channel index for DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId {
    /// What class of resource this is.
    pub kind: ResourceKind,
    /// Which instance (bank index, channel index).
    pub unit: u16,
}

impl ResourceId {
    /// Bank `unit`'s tag array.
    pub fn tag_array(unit: u16) -> ResourceId {
        ResourceId { kind: ResourceKind::TagArray, unit }
    }

    /// Bank `unit`'s data array.
    pub fn data_array(unit: u16) -> ResourceId {
        ResourceId { kind: ResourceKind::DataArray, unit }
    }

    /// Bank `unit`'s response bus port.
    pub fn data_bus(unit: u16) -> ResourceId {
        ResourceId { kind: ResourceKind::DataBus, unit }
    }

    /// DRAM channel `unit`.
    pub fn dram_channel(unit: u16) -> ResourceId {
        ResourceId { kind: ResourceKind::DramChannel, unit }
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ResourceKind::DramChannel => write!(f, "chan{}.{}", self.unit, self.kind.label()),
            _ => write!(f, "bank{}.{}", self.unit, self.kind.label()),
        }
    }
}

/// What happened (the payload of a [`TraceEvent`]).
///
/// Virtual times are the fair-queuing bookkeeping of Eq. 3'–6 of the
/// paper, in *virtual* (share-scaled) cycles; they are `None` for
/// arbiters that keep no virtual clock (FCFS, round-robin, DRR) and for
/// zero-share excess-bandwidth grants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventData {
    /// An arbiter granted `thread`'s request on `resource`.
    Grant {
        /// The resource that was granted.
        resource: ResourceId,
        /// The granted thread.
        thread: ThreadId,
        /// Read or write.
        kind: AccessKind,
        /// Actual service time in cycles (occupies the resource this long).
        service: u64,
        /// Virtual start time `S_i^k` assigned to this request (Eq. 3').
        virtual_start: Option<u64>,
        /// Virtual finish time `F_i^k = S_i^k + L / beta_i` (Eq. 4).
        virtual_finish: Option<u64>,
    },
    /// `thread` still has pending work on `resource` but was not granted
    /// this slot (emitted alongside the grant that passed it over).
    Defer {
        /// The contended resource.
        resource: ResourceId,
        /// The thread left waiting.
        thread: ThreadId,
        /// The waiting thread's current virtual start time `R.S_i`.
        virtual_start: Option<u64>,
    },
    /// An L2 bank finished a tag lookup for `thread`.
    BankAccess {
        /// Bank index.
        bank: u16,
        /// The accessing thread.
        thread: ThreadId,
        /// The line looked up.
        line: LineAddr,
        /// Read or write.
        kind: AccessKind,
        /// Whether the tag lookup hit.
        hit: bool,
    },
    /// A fill evicted a valid line from an L2 bank.
    Evict {
        /// Bank index.
        bank: u16,
        /// The thread whose fill caused the eviction.
        thread: ThreadId,
        /// The victim line.
        line: LineAddr,
        /// The thread that owned the victim line.
        victim: ThreadId,
        /// Whether the victim was dirty (forces a castout).
        dirty: bool,
    },
    /// A store gathered (merged) into an existing SGB entry.
    SgbGather {
        /// The storing thread.
        thread: ThreadId,
        /// The gathered line.
        line: LineAddr,
    },
    /// An SGB entry drained (retired its write toward the L2).
    SgbDrain {
        /// The draining thread.
        thread: ThreadId,
        /// The drained line.
        line: LineAddr,
        /// SGB occupancy after the drain.
        occupancy: u16,
    },
    /// The memory controller issued a request to a DRAM channel.
    DramIssue {
        /// Channel index.
        channel: u16,
        /// The issuing thread.
        thread: ThreadId,
        /// The accessed line.
        line: LineAddr,
        /// Read or write.
        kind: AccessKind,
    },
    /// An L2/memory response returned to a core and woke its load queue.
    LoadReturn {
        /// The receiving thread.
        thread: ThreadId,
        /// The returned line.
        line: LineAddr,
    },
}

impl EventData {
    /// The thread the event belongs to (used as the Chrome trace `tid`).
    pub fn thread(&self) -> ThreadId {
        match *self {
            EventData::Grant { thread, .. }
            | EventData::Defer { thread, .. }
            | EventData::BankAccess { thread, .. }
            | EventData::Evict { thread, .. }
            | EventData::SgbGather { thread, .. }
            | EventData::SgbDrain { thread, .. }
            | EventData::DramIssue { thread, .. }
            | EventData::LoadReturn { thread, .. } => thread,
        }
    }

    /// Short event name used in trace exports (`grant`, `defer`, …).
    pub fn name(&self) -> &'static str {
        match self {
            EventData::Grant { .. } => "grant",
            EventData::Defer { .. } => "defer",
            EventData::BankAccess { hit: true, .. } => "hit",
            EventData::BankAccess { hit: false, .. } => "miss",
            EventData::Evict { .. } => "evict",
            EventData::SgbGather { .. } => "gather",
            EventData::SgbDrain { .. } => "drain",
            EventData::DramIssue { .. } => "dram_issue",
            EventData::LoadReturn { .. } => "load_return",
        }
    }
}

/// One recorded event: a cycle stamp plus the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Processor cycle the event occurred at.
    pub at: Cycle,
    /// What happened.
    pub data: EventData,
}

/// A bounded in-memory event log.
///
/// Retains the first `capacity` events pushed into it; every subsequent
/// push only increments the drop counter. Retained events are stored in
/// push order and never reordered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    /// Creates an empty log that retains at most `capacity` events.
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog { events: Vec::new(), capacity, dropped: 0 }
    }

    /// Records an event, or counts it as dropped once the log is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained events, in the order they were recorded.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The configured retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events pushed after the log filled up (lost, not retained).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events offered to the log (retained + dropped).
    pub fn total(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }
}

thread_local! {
    /// The current thread's recorder, if armed.
    static RECORDER: RefCell<Option<TraceLog>> = const { RefCell::new(None) };
}

/// Process-global per-job capture request for the [`crate::exec`] pool
/// (0 = capture off).
static CAPTURE_CAPACITY: AtomicUsize = AtomicUsize::new(0);

/// Process-global sink of per-job logs, filled by [`crate::exec::map_indexed`]
/// in input order and drained by [`take_job_logs`].
static JOB_LOGS: Mutex<Vec<(String, TraceLog)>> = Mutex::new(Vec::new());

/// Arms the current thread with a fresh recorder of the given capacity,
/// discarding any previous one.
pub fn install(capacity: usize) {
    RECORDER.with(|r| *r.borrow_mut() = Some(TraceLog::new(capacity)));
}

/// Disarms the current thread's recorder and returns its log, if one was
/// installed.
pub fn take() -> Option<TraceLog> {
    RECORDER.with(|r| r.borrow_mut().take())
}

/// Whether the current thread has a recorder installed. Instrumentation
/// sites use this to skip event construction entirely when disabled.
pub fn is_enabled() -> bool {
    RECORDER.with(|r| r.borrow().is_some())
}

/// Records the event produced by `f` into the current thread's recorder.
/// When no recorder is installed, `f` is never called — the disabled cost
/// is one thread-local access and a branch.
pub fn emit<F: FnOnce() -> TraceEvent>(f: F) {
    RECORDER.with(|r| {
        if let Some(log) = r.borrow_mut().as_mut() {
            log.push(f());
        }
    });
}

/// Requests (or cancels, with `None`) per-job trace capture from the
/// [`crate::exec`] pool: each subsequent job runs with a recorder of the
/// given capacity, and its log lands in the [`take_job_logs`] sink under
/// the job's label. The binaries call this when `--trace` is passed.
pub fn set_capture(capacity: Option<usize>) {
    CAPTURE_CAPACITY.store(capacity.unwrap_or(0), Ordering::Relaxed);
}

/// The active per-job capture capacity, if capture is on.
pub fn capture_capacity() -> Option<usize> {
    match CAPTURE_CAPACITY.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Drains and returns every per-job log captured since the last call, in
/// job-batch input order.
pub fn take_job_logs() -> Vec<(String, TraceLog)> {
    std::mem::take(&mut JOB_LOGS.lock().expect("job log sink poisoned"))
}

/// Appends a batch of per-job logs to the sink (called by
/// [`crate::exec::map_indexed`] after joining a batch).
pub(crate) fn push_job_logs(logs: Vec<(String, TraceLog)>) {
    JOB_LOGS.lock().expect("job log sink poisoned").extend(logs);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker(at: Cycle) -> TraceEvent {
        TraceEvent { at, data: EventData::LoadReturn { thread: ThreadId(0), line: LineAddr(at) } }
    }

    #[test]
    fn log_retains_first_capacity_events_and_counts_drops() {
        let mut log = TraceLog::new(3);
        for at in 0..10 {
            log.push(marker(at));
        }
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.events()[2], marker(2));
        assert_eq!(log.dropped(), 7);
        assert_eq!(log.total(), 10);
    }

    #[test]
    fn emit_is_a_no_op_without_a_recorder() {
        assert!(take().is_none());
        let mut called = false;
        emit(|| {
            called = true;
            marker(0)
        });
        assert!(!called, "event closure ran with tracing disabled");
        assert!(!is_enabled());
    }

    #[test]
    fn install_emit_take_roundtrip() {
        install(8);
        assert!(is_enabled());
        emit(|| marker(1));
        emit(|| marker(2));
        let log = take().expect("recorder installed");
        assert!(!is_enabled());
        assert_eq!(log.events(), &[marker(1), marker(2)]);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn resource_ids_render_compactly() {
        assert_eq!(ResourceId::tag_array(0).to_string(), "bank0.tag");
        assert_eq!(ResourceId::data_array(3).to_string(), "bank3.data");
        assert_eq!(ResourceId::data_bus(1).to_string(), "bank1.bus");
        assert_eq!(ResourceId::dram_channel(2).to_string(), "chan2.dram");
    }

    #[test]
    fn capture_request_roundtrips() {
        assert_eq!(capture_capacity(), None);
        set_capture(Some(128));
        assert_eq!(capture_capacity(), Some(128));
        set_capture(None);
        assert_eq!(capture_capacity(), None);
    }
}
