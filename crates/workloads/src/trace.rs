//! Trace-driven workloads.
//!
//! The paper drives its cores with sampled instruction traces. This module
//! provides the same capability for users who have real traces: a small
//! line-oriented text format, a [`TraceWorkload`] that replays it (looping,
//! like the paper's steady-state samples), and a recorder that captures any
//! generator's stream into the format.
//!
//! # Format
//!
//! One operation per line; `#` starts a comment. Addresses are cache-line
//! numbers in hex or decimal:
//!
//! ```text
//! # ops: N = non-memory, L <line> = load, S <line> = store, B <n> = bubble
//! N
//! L 0x1a2
//! S 420
//! B 4
//! ```

use std::fmt;
use std::str::FromStr;

use vpc_cpu::{Op, Workload};
use vpc_sim::LineAddr;

/// Error produced when parsing a trace fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn parse_line_addr(s: &str) -> Result<LineAddr, String> {
    let v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|e| e.to_string())?
    } else {
        s.parse::<u64>().map_err(|e| e.to_string())?
    };
    Ok(LineAddr(v))
}

/// Parses the trace text format into a vector of operations.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on the first malformed line.
pub fn parse_trace(text: &str) -> Result<Vec<Op>, ParseTraceError> {
    let mut ops = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line has a first token");
        let err = |message: String| ParseTraceError { line: line_no, message };
        let op = match tag {
            "N" => Op::NonMem,
            "L" | "S" => {
                let addr =
                    parts.next().ok_or_else(|| err(format!("'{tag}' needs a line address")))?;
                let addr = parse_line_addr(addr).map_err(|e| err(format!("bad address: {e}")))?;
                if tag == "L" {
                    Op::Load(addr)
                } else {
                    Op::Store(addr)
                }
            }
            "B" => {
                let n = parts.next().ok_or_else(|| err("'B' needs a cycle count".into()))?;
                let n: u8 = n.parse().map_err(|e| err(format!("bad bubble count: {e}")))?;
                Op::Bubble(n)
            }
            other => return Err(err(format!("unknown op tag {other:?}"))),
        };
        if let Some(junk) = parts.next() {
            return Err(err(format!("trailing token {junk:?}")));
        }
        ops.push(op);
    }
    Ok(ops)
}

/// Serializes operations into the trace text format (the inverse of
/// [`parse_trace`]).
pub fn format_trace(ops: &[Op]) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            Op::NonMem => out.push_str("N\n"),
            Op::Load(l) => out.push_str(&format!("L {:#x}\n", l.0)),
            Op::Store(l) => out.push_str(&format!("S {:#x}\n", l.0)),
            Op::Bubble(n) => out.push_str(&format!("B {n}\n")),
        }
    }
    out
}

/// Records the next `n` operations of any workload into the trace format.
pub fn record<W: Workload + ?Sized>(workload: &mut W, n: usize) -> String {
    let ops: Vec<Op> = (0..n).map(|_| workload.next_op()).collect();
    format_trace(&ops)
}

/// A workload replaying a parsed trace in a loop.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    ops: Vec<Op>,
    pos: usize,
}

impl TraceWorkload {
    /// Wraps parsed operations.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> TraceWorkload {
        assert!(!ops.is_empty(), "trace must contain at least one op");
        TraceWorkload { name: name.into(), ops, pos: 0 }
    }

    /// The number of operations in one pass of the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromStr for TraceWorkload {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let ops = parse_trace(s)?;
        if ops.is_empty() {
            return Err(ParseTraceError {
                line: 0,
                message: "trace contains no operations".into(),
            });
        }
        Ok(TraceWorkload::new("trace", ops))
    }
}

impl Workload for TraceWorkload {
    fn next_op(&mut self) -> Op {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_sim::check::{self, Config};
    use vpc_sim::{ensure_eq, SplitMix64};

    #[test]
    fn parses_all_op_kinds() {
        let text = "# header comment\nN\nL 0x1a2\nS 420\nB 4\n\n# trailing\n";
        let ops = parse_trace(text).unwrap();
        assert_eq!(
            ops,
            vec![Op::NonMem, Op::Load(LineAddr(0x1a2)), Op::Store(LineAddr(420)), Op::Bubble(4)]
        );
    }

    #[test]
    fn reports_line_numbers_in_errors() {
        let err = parse_trace("N\nL\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("needs a line address"));
        let err = parse_trace("X 1\n").unwrap_err();
        assert!(err.message.contains("unknown op tag"));
        let err = parse_trace("N extra\n").unwrap_err();
        assert!(err.message.contains("trailing token"));
        let err = parse_trace("B 300\n").unwrap_err();
        assert!(err.message.contains("bad bubble count"));
    }

    #[test]
    fn inline_comments_are_stripped() {
        let ops = parse_trace("L 7 # the hot line\n").unwrap();
        assert_eq!(ops, vec![Op::Load(LineAddr(7))]);
    }

    #[test]
    fn trace_workload_loops() {
        let mut w: TraceWorkload = "L 1\nS 2\n".parse().unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_op(), Op::Load(LineAddr(1)));
        assert_eq!(w.next_op(), Op::Store(LineAddr(2)));
        assert_eq!(w.next_op(), Op::Load(LineAddr(1)));
    }

    #[test]
    fn empty_trace_is_rejected() {
        let err = "# only comments\n".parse::<TraceWorkload>().unwrap_err();
        assert!(err.message.contains("no operations"));
    }

    #[test]
    fn recording_a_synthetic_profile_roundtrips() {
        let mut art = crate::spec::workload("art", vpc_sim::ThreadId(0)).unwrap();
        let text = record(&mut art, 500);
        let replay: TraceWorkload = text.parse().unwrap();
        assert_eq!(replay.len(), 500);
        // Replaying yields the identical prefix.
        let mut art2 = crate::spec::workload("art", vpc_sim::ThreadId(0)).unwrap();
        let mut replay = replay;
        for _ in 0..500 {
            assert_eq!(replay.next_op(), art2.next_op());
        }
    }

    fn arb_op(rng: &mut SplitMix64) -> Op {
        match rng.below(4) {
            0 => Op::NonMem,
            1 => Op::Load(LineAddr(rng.below(1 << 40))),
            2 => Op::Store(LineAddr(rng.below(1 << 40))),
            _ => Op::Bubble(1 + rng.below(64) as u8),
        }
    }

    #[test]
    fn format_parse_roundtrip() {
        check::forall_seq("format_parse_roundtrip", Config::cases(256), (1, 199), arb_op, |ops| {
            let text = format_trace(ops);
            let back = parse_trace(&text).map_err(|e| e.to_string())?;
            ensure_eq!(ops, &back[..]);
            Ok(())
        });
    }
}
