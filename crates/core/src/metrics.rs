//! Throughput and fairness metrics over normalized IPCs, and the
//! [`QosLedger`] that turns QoS violations into a testable number.

use std::fmt;

use vpc_sim::{Cycle, Share};

pub use vpc_sim::stats::harmonic_mean;

/// Per-thread normalized IPC: shared-machine IPC divided by the thread's
/// standalone (full-machine) IPC. The paper's throughput metric is the
/// harmonic mean of these; its fairness-sensitive metric is their minimum.
pub fn normalized_ipcs(shared: &[f64], standalone: &[f64]) -> Vec<f64> {
    assert_eq!(shared.len(), standalone.len(), "one standalone IPC per thread");
    shared
        .iter()
        .zip(standalone)
        .map(|(&s, &alone)| if alone <= 0.0 { 0.0 } else { s / alone })
        .collect()
}

/// Weighted speedup: the sum of per-thread normalized IPCs — the CMP
/// throughput metric complementary to the harmonic mean (it rewards total
/// progress; the harmonic mean rewards *balanced* progress).
pub fn weighted_speedup(normalized: &[f64]) -> f64 {
    normalized.iter().sum()
}

/// The minimum of a slice (0 for empty slices).
pub fn minimum(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Relative improvement `(new - old) / old`, in percent.
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (new - old) / old * 100.0
    }
}

/// A windowed per-thread QoS ledger: how much data-array service each
/// thread received versus its `(beta_i, alpha_i)` entitlement.
///
/// Each measurement window contributes `capacity` resource-cycles (for
/// the L2 data array: elapsed cycles × banks). Thread `i` is *entitled*
/// to `beta_i × capacity` of them. The ledger accumulates, per thread:
///
/// * **excess service** — service received beyond `entitlement + slack`.
///   A bandwidth-partitioning arbiter (VPC) should keep this at zero for
///   every thread when all threads are backlogged; a share-oblivious
///   arbiter (FCFS) lets aggressive threads run it up.
/// * **shortfall** — service below `entitlement - slack` (the mirror
///   number: some other thread's excess is this thread's shortfall).
/// * **virtual-time lag** — the shortfall expressed in virtual time
///   (`shortfall / beta_i`, the Eq. 2 scaling): how far the thread's
///   virtual private resource fell behind where its entitlement says it
///   should be. Meaningful for continuously backlogged threads; an idle
///   thread accumulates "lag" it never asked to use.
///
/// The per-window `slack` absorbs quantization (a grant is indivisible,
/// so EDF can overshoot an entitlement boundary by at most a few
/// service quanta per window) — it is what makes "zero sustained excess"
/// a crisp, testable claim rather than an epsilon-comparison.
#[derive(Debug, Clone)]
pub struct QosLedger {
    window: Cycle,
    slack: u64,
    entitlements: Vec<(Share, Share)>,
    excess: Vec<u64>,
    shortfall: Vec<u64>,
    excess_windows: Vec<u64>,
    windows: u64,
}

impl QosLedger {
    /// Creates a ledger for threads with the given `(beta_i, alpha_i)`
    /// entitlements, accounting in windows of `window` cycles with
    /// `slack` resource-cycles of per-window tolerance.
    pub fn new(entitlements: Vec<(Share, Share)>, window: Cycle, slack: u64) -> QosLedger {
        let n = entitlements.len();
        QosLedger {
            window,
            slack,
            entitlements,
            excess: vec![0; n],
            shortfall: vec![0; n],
            excess_windows: vec![0; n],
            windows: 0,
        }
    }

    /// The accounting window length in cycles.
    pub fn window(&self) -> Cycle {
        self.window
    }

    /// Number of threads tracked.
    pub fn threads(&self) -> usize {
        self.entitlements.len()
    }

    /// Number of windows recorded so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Thread `t`'s `(beta, alpha)` entitlement.
    pub fn entitlement(&self, t: usize) -> (Share, Share) {
        self.entitlements[t]
    }

    /// Records one window: `service[t]` resource-cycles went to thread
    /// `t` out of `capacity` total resource-cycles offered.
    ///
    /// # Panics
    ///
    /// Panics if `service` has a different thread count than the ledger.
    pub fn record_window(&mut self, service: &[u64], capacity: u64) {
        assert_eq!(service.len(), self.threads(), "one service figure per thread");
        self.windows += 1;
        for (t, &got) in service.iter().enumerate() {
            let beta = self.entitlements[t].0;
            let entitled = (u128::from(capacity) * u128::from(beta.numer())
                / u128::from(beta.denom().max(1))) as u64;
            let over = got.saturating_sub(entitled + self.slack);
            if over > 0 {
                self.excess[t] += over;
                self.excess_windows[t] += 1;
            }
            self.shortfall[t] += entitled.saturating_sub(got + self.slack);
        }
    }

    /// Accumulated slack-adjusted excess service for thread `t`, in
    /// resource-cycles.
    pub fn excess_service(&self, t: usize) -> u64 {
        self.excess[t]
    }

    /// Accumulated slack-adjusted service shortfall for thread `t`, in
    /// resource-cycles.
    pub fn shortfall(&self, t: usize) -> u64 {
        self.shortfall[t]
    }

    /// Number of windows in which thread `t` exceeded its entitlement.
    pub fn excess_windows(&self, t: usize) -> u64 {
        self.excess_windows[t]
    }

    /// Whether thread `t` exceeded its entitlement in two or more
    /// windows — *sustained* excess, as opposed to a one-off transient.
    pub fn has_sustained_excess(&self, t: usize) -> bool {
        self.excess_windows[t] >= 2
    }

    /// Thread `t`'s accumulated virtual-time lag: its shortfall scaled
    /// by `1 / beta_t` (Eq. 2), in virtual cycles. Zero for zero-share
    /// threads, which hold no virtual resource to lag behind.
    pub fn virtual_lag(&self, t: usize) -> f64 {
        let beta = self.entitlements[t].0;
        if beta.is_zero() {
            return 0.0;
        }
        self.shortfall[t] as f64 * f64::from(beta.denom()) / f64::from(beta.numer())
    }
}

impl fmt::Display for QosLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "QoS ledger: {} windows x {} cycles, slack {} resource-cycles",
            self.windows, self.window, self.slack
        )?;
        for t in 0..self.threads() {
            let (beta, alpha) = self.entitlements[t];
            writeln!(
                f,
                "  T{t}: beta={beta} alpha={alpha}  excess={} ({} windows)  \
                 shortfall={}  virtual_lag={:.0}",
                self.excess[t],
                self.excess_windows[t],
                self.shortfall[t],
                self.virtual_lag(t),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let n = normalized_ipcs(&[0.5, 0.2], &[1.0, 0.4]);
        assert_eq!(n, vec![0.5, 0.5]);
        let n = normalized_ipcs(&[0.5], &[0.0]);
        assert_eq!(n, vec![0.0]);
    }

    #[test]
    fn weighted_speedup_sums() {
        assert_eq!(weighted_speedup(&[0.5, 0.25, 1.0]), 1.75);
        assert_eq!(weighted_speedup(&[]), 0.0);
    }

    #[test]
    fn minimum_of_values() {
        assert_eq!(minimum(&[0.7, 0.3, 0.9]), 0.3);
        assert_eq!(minimum(&[]), 0.0);
    }

    #[test]
    fn improvement() {
        assert!((improvement_pct(0.5, 0.57) - 14.0).abs() < 1e-9);
        assert_eq!(improvement_pct(0.0, 1.0), 0.0);
    }

    fn quarter() -> Share {
        Share::new(1, 4).unwrap()
    }

    #[test]
    fn ledger_charges_excess_beyond_entitlement_plus_slack() {
        let mut ledger =
            QosLedger::new(vec![(quarter(), quarter()), (quarter(), quarter())], 1000, 50);
        // Capacity 2000 resource-cycles; entitlement 500 each.
        ledger.record_window(&[800, 400], 2000);
        assert_eq!(ledger.excess_service(0), 250, "800 - (500 + 50)");
        assert_eq!(ledger.excess_service(1), 0);
        assert_eq!(ledger.shortfall(1), 50, "500 - (400 + 50)");
        assert!(!ledger.has_sustained_excess(0), "one window is a transient");
        ledger.record_window(&[800, 400], 2000);
        assert!(ledger.has_sustained_excess(0));
        assert!(!ledger.has_sustained_excess(1));
        assert_eq!(ledger.windows(), 2);
    }

    #[test]
    fn ledger_within_slack_is_clean() {
        let mut ledger = QosLedger::new(vec![(quarter(), quarter())], 1000, 50);
        ledger.record_window(&[540, 0, 0, 0][..1], 2000);
        ledger.record_window(&[460, 0, 0, 0][..1], 2000);
        assert_eq!(ledger.excess_service(0), 0);
        assert_eq!(ledger.shortfall(0), 0);
        assert!(!ledger.has_sustained_excess(0));
    }

    #[test]
    fn virtual_lag_scales_shortfall_by_inverse_share() {
        let mut ledger = QosLedger::new(vec![(quarter(), quarter())], 1000, 0);
        ledger.record_window(&[100], 2000); // entitled 500, short 400
        assert!((ledger.virtual_lag(0) - 1600.0).abs() < 1e-9, "400 x 4");
        let zero = QosLedger::new(vec![(Share::ZERO, Share::ZERO)], 1000, 0);
        assert_eq!(zero.virtual_lag(0), 0.0);
    }
}
