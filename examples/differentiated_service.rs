//! Differentiated service: an HD-video-style multimedia thread gets half
//! the machine while three best-effort threads split the rest — the
//! asymmetric VPM allocation of the paper's Figure 1b (50% / 10% / 10% /
//! 10%, with 20% left unallocated and distributed by the fairness policy).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example differentiated_service
//! ```

use vpc::prelude::*;

fn main() {
    let (warmup, window) = (40_000, 160_000);
    println!("== Differentiated service: Figure 1b's asymmetric allocation ==\n");

    // The demanding multimedia thread is modeled by `art` (the most
    // bandwidth-hungry profile); the best-effort threads by mid-weight
    // profiles.
    let workloads = [
        WorkloadSpec::Spec("art"),
        WorkloadSpec::Spec("gcc"),
        WorkloadSpec::Spec("twolf"),
        WorkloadSpec::Spec("gzip"),
    ];

    // Bandwidth: 50% / 10% / 10% / 10%, 20% unallocated. Capacity: same
    // split of the 32 ways (16 / 3 / 3 / 3, 7 ways spare).
    let shares = vec![
        Share::new(1, 2).unwrap(),
        Share::new(1, 10).unwrap(),
        Share::new(1, 10).unwrap(),
        Share::new(1, 10).unwrap(),
    ];
    let cfg = CmpConfig::table1()
        .with_vpc_shares(shares.clone())
        .with_capacity(CapacityPolicy::Vpc { shares: shares.clone() });
    let mut sys = CmpSystem::new(cfg, &workloads);
    let m = sys.run_measured(warmup, window);

    let base = CmpConfig::table1();
    println!("{:<12} {:>6} {:>8} {:>8} {:>10}", "thread", "share", "IPC", "target", "status");
    for (i, w) in workloads.iter().enumerate() {
        let target = target_ipc(&base, *w, shares[i], shares[i], warmup, window);
        let status = if m.ipc[i] >= target * 0.95 { "QoS met" } else { "MISSED" };
        println!(
            "{:<12} {:>6} {:>8.3} {:>8.3} {:>10}",
            w.name(),
            shares[i].to_string(),
            m.ipc[i],
            target,
            status
        );
    }
    println!(
        "\nEvery thread is guaranteed its allocation; the 20% of unallocated\n\
         bandwidth is distributed by the fairness policy (earliest virtual\n\
         finish time first), so actual IPCs sit above the targets."
    );
}
