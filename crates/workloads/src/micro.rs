//! The Table 2 microbenchmarks.
//!
//! Both benchmarks walk a two-dimensional `int array[R][C]` whose rows are
//! 64 bytes (one cache line) and whose total size is 32 KB — twice the L1
//! data cache — touching the first word of each row. The main loop is
//! unrolled four times (one address-increment instruction per four memory
//! operations), exactly as in the paper's C/PowerPC hybrid listing.

use vpc_cpu::{FixedTrace, Op};
use vpc_sim::{LineAddr, ThreadId};

/// Rows in the 32 KB array: 32 KB / 64 B = 512 lines.
pub const MICRO_LINES: u64 = 512;

/// Address-space stride separating threads' private arrays (in lines).
const THREAD_STRIDE: u64 = 1 << 32;

fn micro_ops(thread: ThreadId, make: impl Fn(LineAddr) -> Op) -> Vec<Op> {
    let base = u64::from(thread.0) * THREAD_STRIDE;
    let mut ops = Vec::with_capacity((MICRO_LINES + MICRO_LINES / 4) as usize);
    for row in 0..MICRO_LINES {
        ops.push(make(LineAddr(base + row)));
        if row % 4 == 3 {
            // The unrolled loop's address increment (`r2 <- r2 + 256`).
            ops.push(Op::NonMem);
        }
    }
    ops
}

/// The **Loads** microbenchmark: continuously loads the first column of
/// each row, creating a constant stream of L2 read hits that stresses L2
/// load bandwidth.
pub fn loads_micro(thread: ThreadId) -> FixedTrace {
    FixedTrace::new("Loads", micro_ops(thread, Op::Load))
}

/// The **Stores** microbenchmark: the same walk with stores (`stw`),
/// stressing L2 store bandwidth. Consecutive stores touch different lines,
/// so the store gathering buffers cannot merge them and every store costs
/// an L2 write.
pub fn stores_micro(thread: ThreadId) -> FixedTrace {
    FixedTrace::new("Stores", micro_ops(thread, Op::Store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpc_cpu::Workload;

    #[test]
    fn loads_micro_touches_512_distinct_lines() {
        let mut w = loads_micro(ThreadId(0));
        let mut lines = std::collections::BTreeSet::new();
        let mut loads = 0;
        let mut non_mem = 0;
        for _ in 0..(512 + 128) {
            match w.next_op() {
                Op::Load(l) => {
                    lines.insert(l);
                    loads += 1;
                }
                Op::NonMem => non_mem += 1,
                Op::Store(_) | Op::Bubble(_) => panic!("Loads must not store or stall"),
            }
        }
        assert_eq!(lines.len(), 512);
        assert_eq!(loads, 512);
        assert_eq!(non_mem, 128, "one overhead op per four loads");
    }

    #[test]
    fn stores_micro_never_repeats_within_buffer_reach() {
        // Consecutive stores are all to distinct lines until the walk wraps
        // (period 512 >> the 8-entry SGB), so gathering is impossible.
        let mut w = stores_micro(ThreadId(0));
        let mut recent = std::collections::VecDeque::new();
        for _ in 0..2000 {
            if let Op::Store(l) = w.next_op() {
                assert!(!recent.contains(&l), "store line repeats within SGB reach");
                recent.push_back(l);
                if recent.len() > 8 {
                    recent.pop_front();
                }
            }
        }
    }

    #[test]
    fn threads_use_disjoint_address_spaces() {
        let mut a = loads_micro(ThreadId(0));
        let mut b = loads_micro(ThreadId(1));
        let la = loop {
            if let Op::Load(l) = a.next_op() {
                break l;
            }
        };
        let lb = loop {
            if let Op::Load(l) = b.next_op() {
                break l;
            }
        };
        assert_ne!(la, lb);
        assert!(lb.0 >= THREAD_STRIDE);
    }

    #[test]
    fn consecutive_lines_interleave_across_banks() {
        // Lines increment by one, so with 2..16 banks the stream alternates
        // banks perfectly (ideal interleaving for in-order streams).
        let mut w = loads_micro(ThreadId(0));
        let mut last: Option<u64> = None;
        for _ in 0..20 {
            if let Op::Load(l) = w.next_op() {
                if let Some(prev) = last {
                    assert_eq!(l.0, prev + 1);
                }
                last = Some(l.0);
            }
        }
    }
}
