//! Shared helpers for the figure-regeneration binaries.
//!
//! Every binary accepts `--quick` (or the `VPC_QUICK=1` environment
//! variable) to run with short simulation windows, and prints the same
//! rows/series as the corresponding figure or table of the paper.
//! Reproduction notes for each experiment live in `EXPERIMENTS.md` at the
//! repository root.

use std::time::Duration;

use vpc::experiments::RunBudget;
use vpc::report::TimingReport;
use vpc_sim::exec;

pub mod harness;

/// Parses the standard CLI: `--quick` selects short windows.
pub fn budget_from_args() -> RunBudget {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("VPC_QUICK").is_ok_and(|v| v == "1");
    if quick {
        RunBudget::quick()
    } else {
        RunBudget::standard()
    }
}

/// Parses `--jobs N` / `--jobs=N`, installs it as the process-wide worker
/// count override, and returns the effective worker count (falling back
/// to `VPC_JOBS`, then the host's available parallelism). Exits with an
/// error on a malformed value — silently running serial would defeat the
/// point of the flag.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut explicit = None;
    let mut i = 1;
    while i < args.len() {
        let value = if let Some(v) = args[i].strip_prefix("--jobs=") {
            Some(v.to_string())
        } else if args[i] == "--jobs" {
            i += 1;
            args.get(i).cloned()
        } else {
            i += 1;
            continue;
        };
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) if n > 0 => explicit = Some(n),
            _ => {
                eprintln!("error: --jobs needs a positive integer, got {value:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    exec::set_jobs(explicit);
    exec::jobs()
}

/// Drains the per-job timings behind the run just finished and prints
/// them to **stderr** (stdout must stay byte-identical across `--jobs`
/// settings, so wall-clock noise never lands there).
pub fn report_timings(what: &str, jobs: usize, wall: Duration) {
    let timings = TimingReport::drain();
    if timings.is_empty() {
        return;
    }
    eprintln!(
        "-- {what}: {:.3} s wall at --jobs {jobs}, effective parallelism {:.1}x --",
        wall.as_secs_f64(),
        timings.total.as_secs_f64() / wall.as_secs_f64().max(1e-9)
    );
    eprint!("{timings}");
}

/// Whether `--json` was passed (machine-readable output).
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints a standard experiment header.
pub fn header(title: &str, budget: RunBudget) {
    println!("== {title} ==");
    println!("(warmup {} cycles, measured {} cycles)", budget.warmup, budget.window);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_selection_follows_env() {
        // One test covers both states: the process environment is shared
        // across tests, so mutate-and-restore must not race another test.
        std::env::remove_var("VPC_QUICK");
        assert_eq!(budget_from_args(), RunBudget::standard());
        std::env::set_var("VPC_QUICK", "1");
        assert_eq!(budget_from_args(), RunBudget::quick());
        std::env::remove_var("VPC_QUICK");
    }
}
