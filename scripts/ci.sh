#!/usr/bin/env bash
# Tier-1 verification, run fully offline: the workspace is hermetic
# (std-only, path dependencies only), so a network-less build MUST work.
# Any attempt to pull a registry crate is a failure, not an environment
# problem.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== build (release, offline) =="
cargo build --release
cargo build --release --bins

echo "== test (workspace, including formerly-slow ignored tests) =="
cargo test -q --workspace -- --include-ignored

echo "== rustdoc (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== fmt =="
cargo fmt --all -- --check

if command -v cargo-clippy >/dev/null 2>&1; then
    echo "== clippy =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy not installed; skipping =="
fi

echo "CI OK"
