//! A small deterministic RNG for reproducible workload generation.

/// SplitMix64: a fast, high-quality 64-bit PRNG with a single `u64` of state.
///
/// Every workload generator in the reproduction is seeded explicitly, so
/// an entire experiment is a pure function of its configuration.
///
/// ```
/// use vpc_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds yield independent
    /// streams for practical purposes.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next pseudorandom 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free mapping is fine for simulation use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Samples a geometric-ish burst length with the given mean (at least 1).
    ///
    /// Used by the synthetic SPEC profiles to produce bursty L2 accesses —
    /// §4.1.2 of the paper notes that general-purpose applications tend to
    /// contain bursty L2 accesses, amortizing preemption latency.
    pub fn burst_len(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        let len = (u.ln() / (1.0 - p).ln()).ceil();
        len.max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SplitMix64::new(2);
        for _ in 0..10_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn burst_len_mean_tracks_request() {
        let mut r = SplitMix64::new(4);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| r.burst_len(8.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((6.0..10.0).contains(&mean), "mean burst length {mean} out of range");
    }

    #[test]
    fn burst_len_at_least_one() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            assert!(r.burst_len(0.5) >= 1);
            assert!(r.burst_len(3.0) >= 1);
        }
    }

    #[test]
    fn roughly_uniform_buckets() {
        let mut r = SplitMix64::new(6);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} not uniform");
        }
    }
}
