//! A scoped thread-pool / job-map layer for embarrassingly-parallel
//! experiment grids.
//!
//! The paper's evaluation is a grid of *independent* simulations (one per
//! benchmark, per share point, per mix). Each simulation is a pure
//! function of its configuration — every workload owns its RNG seed — so
//! the grid can run on as many worker threads as the host offers while
//! producing output *byte-identical* to a serial run: [`map_indexed`]
//! joins results in input order, and nothing about a job's execution
//! depends on which worker ran it or when.
//!
//! # Model
//!
//! A [`Job`] is a labeled closure. [`map_indexed`] runs a batch of jobs
//! across up to `parallelism` scoped worker threads (borrowing from the
//! caller's stack is fine), returns the results in input order, and
//! propagates the first panic (in input order) with the failing job's
//! label attached. Per-job wall-clock timings are recorded into a
//! process-global sink that [`take_timings`] drains, so figure binaries
//! can report where simulation time goes.
//!
//! # Choosing parallelism
//!
//! [`jobs`] resolves the worker count used by the experiment runners:
//! an explicit [`set_jobs`] override (the binaries' `--jobs N` flag) wins,
//! then the `VPC_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].
//!
//! ```
//! use vpc_sim::exec::{self, Job};
//!
//! let jobs = (0..8).map(|i| Job::new(format!("square/{i}"), move || i * i)).collect();
//! let out = exec::map_indexed(jobs, 4);
//! assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::trace::{self, TraceLog};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "VPC_JOBS";

/// A labeled unit of independent work.
pub struct Job<'a, T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send + 'a>,
}

impl<'a, T> Job<'a, T> {
    /// Wraps a closure with a label used in timing reports and panic
    /// messages.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'a) -> Job<'a, T> {
        Job { label: label.into(), run: Box::new(run) }
    }

    /// The job's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Wall-clock cost of one completed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTiming {
    /// The job's label.
    pub label: String,
    /// Wall-clock time the job's closure ran for.
    pub elapsed: Duration,
}

/// Process-global override set by `--jobs N` (0 = no override).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-global sink of per-job timings, drained by [`take_timings`].
static TIMINGS: Mutex<Vec<JobTiming>> = Mutex::new(Vec::new());

/// Overrides the worker count used by [`jobs`] (`None` clears the
/// override). The binaries call this when `--jobs N` is passed.
pub fn set_jobs(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.unwrap_or(0), Ordering::Relaxed);
}

/// The effective worker count: the [`set_jobs`] override if present, else
/// the `VPC_JOBS` environment variable, else the host's available
/// parallelism.
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = jobs_from_env() {
        return n;
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

fn jobs_from_env() -> Option<usize> {
    let raw = std::env::var(JOBS_ENV).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Drains and returns every job timing recorded since the last call, in
/// completion batches' input order.
pub fn take_timings() -> Vec<JobTiming> {
    std::mem::take(&mut TIMINGS.lock().expect("timing sink poisoned"))
}

/// What one finished job leaves behind: its label, its result (or the
/// caught panic payload), its wall-clock cost, and — when per-job trace
/// capture is on — the events it recorded.
type Outcome<T> = (String, std::thread::Result<T>, Duration, Option<TraceLog>);

/// Runs one job, catching panics so a worker thread never unwinds.
///
/// When [`trace::set_capture`] requested per-job capture, the job runs
/// with a fresh thread-local recorder (each job runs entirely on one
/// thread, so its events cannot interleave with another job's) and the
/// resulting log travels back with the outcome.
fn run_one<T>(job: Job<'_, T>) -> Outcome<T> {
    let Job { label, run } = job;
    let capture = trace::capture_capacity();
    if let Some(capacity) = capture {
        trace::install(capacity);
    }
    let start = Instant::now();
    let result = panic::catch_unwind(AssertUnwindSafe(run));
    let elapsed = start.elapsed();
    let log = if capture.is_some() { trace::take() } else { None };
    (label, result, elapsed, log)
}

/// Renders a caught panic payload for the re-thrown message.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Runs `jobs` across up to `parallelism` worker threads and returns
/// their results **in input order**.
///
/// Each job runs exactly once. With `parallelism <= 1` (or a single job)
/// everything runs on the calling thread — the parallel and serial paths
/// are otherwise identical, which is what makes `--jobs N` output
/// byte-identical to `--jobs 1`. Per-job timings are recorded for
/// [`take_timings`] in input order regardless of completion order.
///
/// # Panics
///
/// If a job panics, every remaining job still runs (no hang, no detached
/// threads), and `map_indexed` then panics with the input-order-first
/// failing job's label and panic message.
pub fn map_indexed<T: Send>(jobs: Vec<Job<'_, T>>, parallelism: usize) -> Vec<T> {
    let n = jobs.len();
    let workers = parallelism.clamp(1, n.max(1));

    let mut outcomes: Vec<Option<Outcome<T>>> = if workers <= 1 || n <= 1 {
        jobs.into_iter().map(|job| Some(run_one(job))).collect()
    } else {
        let slots: Vec<Mutex<Option<Job<'_, T>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<Outcome<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    *results[i].lock().expect("result slot poisoned") = Some(run_one(job));
                });
            }
        });
        results.into_iter().map(|slot| slot.into_inner().expect("result slot poisoned")).collect()
    };

    let mut timings = Vec::with_capacity(n);
    let mut job_logs = Vec::new();
    let mut out = Vec::with_capacity(n);
    let mut failure: Option<(String, String)> = None;
    for outcome in outcomes.iter_mut() {
        let (label, result, elapsed, log) = outcome.take().expect("job never ran");
        timings.push(JobTiming { label: label.clone(), elapsed });
        if let Some(log) = log {
            job_logs.push((label.clone(), log));
        }
        match result {
            Ok(value) => out.push(value),
            Err(payload) => {
                if failure.is_none() {
                    failure = Some((label, payload_message(payload.as_ref()).to_string()));
                }
            }
        }
    }
    TIMINGS.lock().expect("timing sink poisoned").extend(timings);
    trace::push_job_logs(job_logs);
    if let Some((label, message)) = failure {
        panic!("job '{label}' panicked: {message}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_parallelism() {
        for parallelism in [1usize, 2, 3, 8, 64] {
            let jobs = (0..17).map(|i| Job::new(format!("id/{i}"), move || i)).collect();
            assert_eq!(map_indexed(jobs, parallelism), (0..17).collect::<Vec<_>>());
        }
        take_timings();
    }

    #[test]
    fn empty_batch_is_fine() {
        let jobs: Vec<Job<'_, u32>> = Vec::new();
        assert_eq!(map_indexed(jobs, 4), Vec::<u32>::new());
    }

    #[test]
    fn borrows_from_the_caller_scope() {
        let inputs = [10u64, 20, 30];
        let jobs = inputs.iter().map(|v| Job::new("borrow", move || v * 2)).collect();
        assert_eq!(map_indexed(jobs, 2), vec![20, 40, 60]);
        take_timings();
    }

    #[test]
    fn records_one_timing_per_job_in_input_order() {
        take_timings();
        let jobs = (0..5).map(|i| Job::new(format!("t/{i}"), move || i)).collect();
        map_indexed(jobs, 3);
        let timings = take_timings();
        let labels: Vec<&str> = timings.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels, vec!["t/0", "t/1", "t/2", "t/3", "t/4"]);
    }

    #[test]
    fn panic_carries_the_input_order_first_label() {
        let jobs: Vec<Job<'_, ()>> = (0..6)
            .map(|i| {
                Job::new(format!("p/{i}"), move || {
                    if i >= 4 {
                        panic!("boom {i}");
                    }
                })
            })
            .collect();
        let err = panic::catch_unwind(AssertUnwindSafe(|| map_indexed(jobs, 3)))
            .expect_err("a job panicked");
        let message = payload_message(err.as_ref()).to_string();
        assert!(
            message.contains("'p/4'") && message.contains("boom 4"),
            "unexpected panic message: {message}"
        );
        take_timings();
    }

    #[test]
    fn set_jobs_overrides_the_environment() {
        set_jobs(Some(3));
        assert_eq!(jobs(), 3);
        set_jobs(None);
        assert!(jobs() >= 1);
    }
}
