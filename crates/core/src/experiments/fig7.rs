//! Figure 7: percentage of L2 requests that are writes, and the store
//! gathering rate.
//!
//! The paper reports that, after gathering, writes account for ~55% of all
//! L2 requests on average, and ~80% of stores gather with other stores in
//! the store gathering buffer (so a write-through L1 plus gathering is
//! nearly as bandwidth-efficient as a write-back cache).

use std::fmt;

use vpc_sim::exec::{self, Job};
use vpc_workloads::SPEC_NAMES;

use crate::config::{CmpConfig, WorkloadSpec};
use crate::experiments::{pct, RunBudget};
use crate::system::CmpSystem;

/// One benchmark's pair of bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Row {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Fraction of L2 requests (after gathering) that are writes.
    pub l2_write_frac: f64,
    /// Fraction of stores gathered with other stores.
    pub gathering_rate: f64,
}

/// The full Figure 7 series.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// One row per benchmark.
    pub rows: Vec<Fig7Row>,
}

impl Fig7Result {
    /// Finds a benchmark's row.
    pub fn row(&self, benchmark: &str) -> Option<&Fig7Row> {
        self.rows.iter().find(|r| r.benchmark == benchmark)
    }

    /// Mean write fraction (paper: ~55%).
    pub fn mean_write_frac(&self) -> f64 {
        self.rows.iter().map(|r| r.l2_write_frac).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean gathering rate (paper: ~80%).
    pub fn mean_gathering(&self) -> f64 {
        self.rows.iter().map(|r| r.gathering_rate).sum::<f64>() / self.rows.len() as f64
    }
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 7: L2 Writes and Store Gathering Rate")?;
        writeln!(f, "{:<10} {:>12} {:>16}", "benchmark", "L2 writes", "gathering rate")?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>12} {:>16}",
                r.benchmark,
                pct(r.l2_write_frac),
                pct(r.gathering_rate)
            )?;
        }
        writeln!(
            f,
            "mean: writes {} (paper ~55%), gathering {} (paper ~80%)",
            pct(self.mean_write_frac()),
            pct(self.mean_gathering())
        )
    }
}

/// Runs the full series (each benchmark alone on the baseline cache), one
/// parallel job per benchmark.
pub fn run(base: &CmpConfig, budget: RunBudget) -> Fig7Result {
    let jobs = SPEC_NAMES
        .iter()
        .map(|&benchmark| {
            Job::new(format!("fig7/{benchmark}"), move || {
                let mut cfg = base.clone();
                cfg.processors = 1;
                cfg.l2.threads = 1;
                let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Spec(benchmark)]);
                let m = sys.run_measured(budget.warmup, budget.window);
                Fig7Row {
                    benchmark,
                    l2_write_frac: m.l2_write_frac[0],
                    gathering_rate: m.gathering_rate[0],
                }
            })
        })
        .collect();
    Fig7Result { rows: exec::map_indexed(jobs, exec::jobs()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_rows(benchmarks: &[&'static str]) -> Vec<Fig7Row> {
        let base = CmpConfig::table1();
        let budget = RunBudget::quick();
        benchmarks
            .iter()
            .map(|b| {
                let mut cfg = base.clone();
                cfg.processors = 1;
                cfg.l2.threads = 1;
                let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Spec(b)]);
                let m = sys.run_measured(budget.warmup, budget.window);
                Fig7Row {
                    benchmark: b,
                    l2_write_frac: m.l2_write_frac[0],
                    gathering_rate: m.gathering_rate[0],
                }
            })
            .collect()
    }

    #[test]
    fn gathering_rates_are_high_for_local_stores() {
        let rows = quick_rows(&["gzip", "mesa"]);
        for r in &rows {
            assert!(
                r.gathering_rate > 0.6,
                "{}: store locality should gather >60%, got {:.2}",
                r.benchmark,
                r.gathering_rate
            );
        }
    }

    #[test]
    fn streaming_benchmarks_have_few_writes() {
        let rows = quick_rows(&["swim", "mesa"]);
        let swim = rows[0];
        let mesa = rows[1];
        assert!(
            swim.l2_write_frac < mesa.l2_write_frac,
            "swim ({:.2}) writes less of its L2 traffic than mesa ({:.2})",
            swim.l2_write_frac,
            mesa.l2_write_frac
        );
    }
}
