//! Extending VPM QoS to main-memory bandwidth: all four threads share a
//! single DDR2 channel (instead of the paper's private per-thread
//! channels), and the fair-queuing memory scheduler divides it.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example memory_qos
//! ```

use vpc::prelude::*;
use vpc_mem::ChannelMode;

fn subject_ipc(channels: ChannelMode) -> f64 {
    let cfg = CmpConfig::table1().with_arbiter(ArbiterPolicy::vpc_equal(4)).with_channels(channels);
    // A latency-sensitive subject against three streaming memory hogs.
    let workloads = [
        WorkloadSpec::Spec("mcf"),
        WorkloadSpec::Spec("swim"),
        WorkloadSpec::Spec("swim"),
        WorkloadSpec::Spec("swim"),
    ];
    let mut sys = CmpSystem::new(cfg, &workloads);
    sys.run_measured(40_000, 160_000).ipc[0]
}

fn main() {
    println!("== Memory-bandwidth QoS: mcf vs 3x swim on one DDR2 channel ==\n");
    let half = Share::new(1, 2).unwrap();
    let sixth = Share::new(1, 6).unwrap();
    let quarter = Share::new(1, 4).unwrap();

    let fcfs = subject_ipc(ChannelMode::SharedFcfs);
    println!("shared channel, FCFS scheduler:        subject IPC {fcfs:.3}");

    let fq_eq = subject_ipc(ChannelMode::SharedFq { shares: vec![quarter; 4] });
    println!("shared channel, FQ (equal shares):     subject IPC {fq_eq:.3}");

    let fq_half = subject_ipc(ChannelMode::SharedFq { shares: vec![half, sixth, sixth, sixth] });
    println!("shared channel, FQ (subject gets 1/2): subject IPC {fq_half:.3}");

    let private = subject_ipc(ChannelMode::PerThread);
    println!("private channel per thread (Table 1):  subject IPC {private:.3}\n");

    println!(
        "The fair-queuing scheduler turns the channel into an allocatable\n\
         resource: growing the subject's share buys back performance the\n\
         streams would otherwise take ({:.0}% -> {:.0}% of the private-channel\n\
         reference). The paper's evaluation sidesteps this by giving every\n\
         thread a private channel; this example shows the VPM framework's\n\
         memory-bandwidth leg working on shared hardware.",
        100.0 * fcfs / private,
        100.0 * fq_half / private,
    );
}
