//! DRAM timing parameters, in processor cycles.

/// DRAM device timing, expressed in 2 GHz processor cycles.
///
/// DDR2-800 runs a 400 MHz command clock, i.e. 5 processor cycles per DRAM
/// clock at the paper's 2 GHz core frequency. The defaults correspond to a
/// 5-5-5 DDR2-800 part transferring a 64-byte line as one BL8 burst over an
/// 8-byte data bus (8 beats = 4 DRAM clocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// ACT-to-READ/WRITE delay (tRCD).
    pub t_rcd: u64,
    /// READ-to-data CAS latency (tCL).
    pub t_cl: u64,
    /// Precharge time (tRP).
    pub t_rp: u64,
    /// Minimum ACT-to-PRE time (tRAS).
    pub t_ras: u64,
    /// Write recovery time before precharge (tWR).
    pub t_wr: u64,
    /// Data-bus occupancy of one 64-byte line burst.
    pub burst: u64,
}

impl DramTiming {
    /// DDR2-800 5-5-5 timing at a 2 GHz core clock (5 core cycles per DRAM
    /// clock).
    pub fn ddr2_800() -> DramTiming {
        DramTiming {
            t_rcd: 25, // 5 DRAM clocks
            t_cl: 25,  // 5 DRAM clocks
            t_rp: 25,  // 5 DRAM clocks
            t_ras: 90, // 18 DRAM clocks (45 ns)
            t_wr: 30,  // 6 DRAM clocks (15 ns)
            burst: 20, // BL8 = 4 DRAM clocks
        }
    }

    /// The idle-bank read latency: ACT + CAS + full burst.
    pub fn idle_read_latency(&self) -> u64 {
        self.t_rcd + self.t_cl + self.burst
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming::ddr2_800()
    }
}

/// Memory-system configuration (Table 1's memory rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// Device timing.
    pub timing: DramTiming,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Read transaction buffer entries per thread.
    pub transaction_buffer: usize,
    /// Write buffer entries per thread.
    pub write_buffer: usize,
    /// Writes start draining when a thread's write buffer reaches this
    /// occupancy (closed-page controllers drain lazily so reads keep
    /// priority).
    pub write_drain_threshold: usize,
    /// Fixed controller pipeline overhead added to every transaction.
    pub controller_overhead: u64,
}

impl MemConfig {
    /// Table 1's configuration: DDR2-800, 2 ranks × 8 banks per channel,
    /// 16 transaction buffer entries and 8 write buffer entries per thread,
    /// closed page policy.
    pub fn ddr2_800() -> MemConfig {
        MemConfig {
            timing: DramTiming::ddr2_800(),
            ranks: 2,
            banks_per_rank: 8,
            transaction_buffer: 16,
            write_buffer: 8,
            write_drain_threshold: 4,
            controller_overhead: 10,
        }
    }

    /// Total banks per channel.
    pub fn total_banks(&self) -> usize {
        self.ranks * self.banks_per_rank
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::ddr2_800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr2_defaults() {
        let t = DramTiming::ddr2_800();
        assert_eq!(t.idle_read_latency(), 70);
        let c = MemConfig::ddr2_800();
        assert_eq!(c.total_banks(), 16);
        assert!(c.write_drain_threshold <= c.write_buffer);
    }
}
