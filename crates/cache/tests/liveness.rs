//! Liveness and conservation properties of the full shared-L2 + memory
//! stack under randomized traffic: every read is answered exactly once,
//! writes all retire, and the system drains to idle — under every arbiter
//! and capacity policy combination.

use vpc_arbiters::ArbiterPolicy;
use vpc_cache::{CapacityPolicy, L2Config, SharedL2};
use vpc_mem::MemConfig;
use vpc_sim::check::{self, Config};
use vpc_sim::{ensure, ensure_eq, AccessKind, CacheRequest, LineAddr, ThreadId};

fn small_cfg(threads: usize, arbiter: ArbiterPolicy, capacity: CapacityPolicy) -> L2Config {
    let mut cfg = L2Config::table1(threads, arbiter);
    cfg.total_sets = 64;
    cfg.ways = 4;
    cfg.sgb_idle_drain = Some(200);
    cfg.capacity = capacity;
    cfg
}

fn arbiter_policy(which: u8, threads: usize) -> ArbiterPolicy {
    match which % 4 {
        0 => ArbiterPolicy::Fcfs,
        1 => ArbiterPolicy::RowFcfs,
        2 => ArbiterPolicy::RoundRobin,
        _ => ArbiterPolicy::vpc_equal(threads),
    }
}

/// Fire random reads and writes from 4 threads into a tiny, heavily
/// conflicting cache; every read must be answered exactly once and the
/// whole system must drain.
#[test]
fn random_traffic_always_drains() {
    check::forall("random_traffic_always_drains", Config::cases(24), |rng| {
        let threads = 4;
        let which = rng.below(8) as u8;
        let capacity =
            if which < 4 { CapacityPolicy::Lru } else { CapacityPolicy::vpc_equal(threads) };
        let cfg = small_cfg(threads, arbiter_policy(which, threads), capacity);
        let mut l2 = SharedL2::new(cfg, MemConfig::ddr2_800());

        let mut next_token = 0u64;
        let mut outstanding_reads = std::collections::BTreeSet::new();
        let mut answered = 0u64;
        let mut submitted_reads = 0u64;
        let mut submitted_writes = 0u64;
        let mut now = 0u64;

        // Inject for 6000 cycles...
        while now < 6_000 {
            if rng.chance(0.25) {
                let thread = ThreadId(rng.below(threads as u64) as u8);
                // A small line space maximizes set conflicts, same-line
                // collisions, and evictions of lines under fill.
                let line = LineAddr(rng.below(48));
                let is_read = rng.chance(0.6);
                if l2.can_accept(thread, line) {
                    next_token += 1;
                    let kind = if is_read { AccessKind::Read } else { AccessKind::Write };
                    l2.submit(CacheRequest { thread, line, kind, token: next_token }, now);
                    if is_read {
                        outstanding_reads.insert(next_token);
                        submitted_reads += 1;
                    } else {
                        submitted_writes += 1;
                    }
                }
            }
            l2.tick(now);
            while let Some(resp) = l2.pop_response(now) {
                ensure!(
                    outstanding_reads.remove(&resp.token),
                    "duplicate or unknown response token {}",
                    resp.token
                );
                answered += 1;
            }
            now += 1;
        }
        // ...then drain.
        let deadline = now + 200_000;
        while !l2.is_idle() && now < deadline {
            l2.tick(now);
            while let Some(resp) = l2.pop_response(now) {
                ensure!(outstanding_reads.remove(&resp.token));
                answered += 1;
            }
            now += 1;
        }
        ensure!(l2.is_idle(), "system failed to drain by cycle {now}");
        ensure!(outstanding_reads.is_empty(), "unanswered reads: {outstanding_reads:?}");
        ensure_eq!(answered, submitted_reads, "every read answered exactly once");

        // Conservation: L2 transactions match what was submitted.
        let stats = l2.stats();
        ensure_eq!(
            stats.read_hits.get() + stats.read_misses.get(),
            submitted_reads,
            "read transactions conserved"
        );
        // Writes may still be parked as gathered stores only if idle-drain
        // fired; after a full drain, all distinct writes reached the L2.
        let mut port_writes = 0;
        for t in 0..threads {
            port_writes += l2.port_stats(ThreadId(t as u8)).writes_out.get()
                + l2.port_stats(ThreadId(t as u8)).stores_gathered.get();
        }
        ensure_eq!(port_writes, submitted_writes, "every store gathered or retired");
        Ok(())
    });
}

/// Same-line hammering from all threads at once: the conflict check
/// serializes state machines but must never deadlock.
#[test]
fn same_line_contention_never_deadlocks() {
    check::forall("same_line_contention_never_deadlocks", Config::cases(24), |rng| {
        let threads = 4;
        let cfg = small_cfg(
            threads,
            ArbiterPolicy::vpc_equal(threads),
            CapacityPolicy::vpc_equal(threads),
        );
        let mut l2 = SharedL2::new(cfg, MemConfig::ddr2_800());
        let mut now = 0u64;
        let mut token = 0u64;
        let mut outstanding = 0i64;
        while now < 4_000 {
            let thread = ThreadId(rng.below(threads as u64) as u8);
            let line = LineAddr(rng.below(2)); // two lines, maximal conflict
            let kind = if rng.chance(0.5) { AccessKind::Read } else { AccessKind::Write };
            if l2.can_accept(thread, line) {
                token += 1;
                l2.submit(CacheRequest { thread, line, kind, token }, now);
                if kind.is_read() {
                    outstanding += 1;
                }
            }
            l2.tick(now);
            while l2.pop_response(now).is_some() {
                outstanding -= 1;
            }
            now += 1;
        }
        let deadline = now + 200_000;
        while !l2.is_idle() && now < deadline {
            l2.tick(now);
            while l2.pop_response(now).is_some() {
                outstanding -= 1;
            }
            now += 1;
        }
        ensure!(l2.is_idle(), "contended system failed to drain");
        ensure_eq!(outstanding, 0, "all contended reads answered");
        Ok(())
    });
}
