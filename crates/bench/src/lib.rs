//! Shared helpers for the figure-regeneration binaries.
//!
//! Every binary accepts `--quick` (or the `VPC_QUICK=1` environment
//! variable) to run with short simulation windows, and prints the same
//! rows/series as the corresponding figure or table of the paper.
//! Reproduction notes for each experiment live in `EXPERIMENTS.md` at the
//! repository root.

use vpc::experiments::RunBudget;

pub mod harness;

/// Parses the standard CLI: `--quick` selects short windows.
pub fn budget_from_args() -> RunBudget {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("VPC_QUICK").is_ok_and(|v| v == "1");
    if quick {
        RunBudget::quick()
    } else {
        RunBudget::standard()
    }
}

/// Whether `--json` was passed (machine-readable output).
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Prints a standard experiment header.
pub fn header(title: &str, budget: RunBudget) {
    println!("== {title} ==");
    println!("(warmup {} cycles, measured {} cycles)", budget.warmup, budget.window);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_selection_follows_env() {
        // One test covers both states: the process environment is shared
        // across tests, so mutate-and-restore must not race another test.
        std::env::remove_var("VPC_QUICK");
        assert_eq!(budget_from_args(), RunBudget::standard());
        std::env::set_var("VPC_QUICK", "1");
        assert_eq!(budget_from_args(), RunBudget::quick());
        std::env::remove_var("VPC_QUICK");
    }
}
