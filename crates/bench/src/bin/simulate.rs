//! A general-purpose driver for the simulated CMP: pick workloads, an
//! arbiter policy, shares, banks and channel topology from the command
//! line and get per-thread IPCs, QoS targets, utilization and latency.
//!
//! ```sh
//! cargo run --release -p vpc-bench --bin simulate -- \
//!     --workloads art,mcf,Loads,Stores \
//!     --arbiter vpc --shares 1/2,1/6,1/6,1/6 \
//!     --banks 2 --warmup 50000 --cycles 200000
//! ```
//!
//! Workloads: any SPEC profile name, `Loads`, `Stores`, or `idle`.
//! Arbiters: `fcfs`, `row`, `rr`, `vpc`, `drr`, `sfq`.
//! Channels: `private` (default), `shared-fcfs`, `shared-fq`.

use std::path::PathBuf;
use std::process::ExitCode;

use vpc::experiments::fig5;
use vpc::metrics::QosLedger;
use vpc::prelude::*;
use vpc_mem::ChannelMode;
use vpc_sim::{exec, trace};
use vpc_workloads::SPEC_NAMES;

#[derive(Debug)]
struct Args {
    workloads: Vec<WorkloadSpec>,
    arbiter: String,
    shares: Vec<Share>,
    banks: usize,
    warmup: u64,
    cycles: u64,
    channels: String,
    lru_capacity: bool,
    jobs: Option<usize>,
    trace: Option<PathBuf>,
    metrics: bool,
}

fn parse_workload(name: &str) -> Result<WorkloadSpec, String> {
    match name {
        "Loads" | "loads" => Ok(WorkloadSpec::Loads),
        "Stores" | "stores" => Ok(WorkloadSpec::Stores),
        "idle" => Ok(WorkloadSpec::Idle),
        other => {
            SPEC_NAMES.iter().find(|&&b| b == other).map(|&b| WorkloadSpec::Spec(b)).ok_or_else(
                || format!("unknown workload {other:?} (SPEC names, Loads, Stores, idle)"),
            )
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workloads: vec![
            WorkloadSpec::Spec("art"),
            WorkloadSpec::Spec("mcf"),
            WorkloadSpec::Spec("gcc"),
            WorkloadSpec::Spec("gzip"),
        ],
        arbiter: "vpc".into(),
        shares: Vec::new(),
        banks: 2,
        warmup: 50_000,
        cycles: 200_000,
        channels: "private".into(),
        lru_capacity: false,
        jobs: None,
        trace: None,
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--workloads" => {
                args.workloads = value("--workloads")?
                    .split(',')
                    .map(parse_workload)
                    .collect::<Result<_, _>>()?;
            }
            "--arbiter" => args.arbiter = value("--arbiter")?,
            "--shares" => {
                args.shares = value("--shares")?
                    .split(',')
                    .map(|s| s.parse::<Share>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--banks" => {
                args.banks = value("--banks")?.parse().map_err(|e| format!("--banks: {e}"))?;
            }
            "--warmup" => {
                args.warmup = value("--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?;
            }
            "--cycles" => {
                args.cycles = value("--cycles")?.parse().map_err(|e| format!("--cycles: {e}"))?;
            }
            "--channels" => args.channels = value("--channels")?,
            "--lru-capacity" => args.lru_capacity = true,
            "--jobs" => {
                let n: usize = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs needs a positive integer".into());
                }
                args.jobs = Some(n);
            }
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--metrics" => args.metrics = true,
            "--help" | "-h" => {
                println!(
                    "usage: simulate [--workloads a,b,c,d] [--arbiter fcfs|row|rr|vpc|drr|sfq]\n\
                     \x20               [--shares p/q,...] [--banks N] [--warmup N] [--cycles N]\n\
                     \x20               [--channels private|shared-fcfs|shared-fq] [--lru-capacity]\n\
                     \x20               [--jobs N] [--trace out.json] [--metrics]\n\
                     \n\
                     --trace writes a Chrome trace_event JSON of the measured window\n\
                     (open in chrome://tracing or Perfetto); --metrics prints the\n\
                     per-thread QoS ledger and L2 latency percentiles to stderr.\n\
                     Neither flag changes stdout."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if args.shares.is_empty() {
        let n = args.workloads.len() as u32;
        args.shares = vec![Share::new(1, n).map_err(|e| e.to_string())?; n as usize];
    }
    if args.shares.len() != args.workloads.len() {
        return Err("need exactly one share per workload".into());
    }
    Ok(args)
}

fn build_arbiter(args: &Args) -> Result<ArbiterPolicy, String> {
    let shares = args.shares.clone();
    Ok(match args.arbiter.as_str() {
        "fcfs" => ArbiterPolicy::Fcfs,
        "row" => ArbiterPolicy::RowFcfs,
        "rr" => ArbiterPolicy::RoundRobin,
        "vpc" => ArbiterPolicy::Vpc { shares, order: IntraThreadOrder::ReadOverWrite },
        "drr" => ArbiterPolicy::Drr { shares },
        "sfq" => ArbiterPolicy::Sfq { shares },
        other => return Err(format!("unknown arbiter {other:?}")),
    })
}

fn run() -> Result<(), String> {
    vpc_bench::skip_from_args();
    let args = parse_args()?;
    // Installed process-wide so any pooled work (and future parallel
    // paths) honors the flag; the single CmpSystem run itself is serial.
    exec::set_jobs(args.jobs);
    let threads = args.workloads.len();
    if threads == 0 || threads > 8 {
        return Err("1 to 8 workloads required".into());
    }

    let mut cfg = CmpConfig::table1_with_threads(threads).with_banks(args.banks);
    cfg.l2.arbiter = build_arbiter(&args)?;
    cfg.l2.capacity = if args.lru_capacity {
        CapacityPolicy::Lru
    } else {
        CapacityPolicy::Vpc { shares: args.shares.clone() }
    };
    cfg.channels = match args.channels.as_str() {
        "private" => ChannelMode::PerThread,
        "shared-fcfs" => ChannelMode::SharedFcfs,
        "shared-fq" => ChannelMode::SharedFq { shares: args.shares.clone() },
        other => return Err(format!("unknown channel mode {other:?}")),
    };

    let base = CmpConfig::table1_with_threads(threads).with_banks(args.banks);
    let mut sys = CmpSystem::new(cfg, &args.workloads);
    sys.run(args.warmup);
    if args.trace.is_some() {
        // The simulation runs on this thread, so the thread-local
        // recorder sees the whole measured window.
        trace::install(trace::DEFAULT_CAPACITY);
    }
    let snap = sys.snapshot();
    let mut ledger = args.metrics.then(|| {
        let entitlements = args.shares.iter().map(|&s| (s, s)).collect();
        QosLedger::new(entitlements, fig5::QOS_WINDOW, fig5::QOS_SLACK)
    });
    match &mut ledger {
        Some(ledger) => sys.run_with_ledger(args.cycles, ledger),
        None => sys.run(args.cycles),
    }
    let m = sys.measure(&snap);
    let trace_log = if args.trace.is_some() { trace::take() } else { None };

    println!(
        "== simulate: {} threads, {} banks, arbiter {}, channels {} ==",
        threads, args.banks, args.arbiter, args.channels
    );
    println!(
        "{:<10} {:>7} {:>8} {:>8} {:>9} {:>12} {:>10}",
        "thread", "share", "IPC", "target", "IPC/tgt", "L2 lat mean", "gathering"
    );
    for (i, w) in args.workloads.iter().enumerate() {
        let thread = ThreadId(i as u8);
        let target = if args.shares[i].is_zero() {
            0.0
        } else {
            target_ipc(&base, *w, args.shares[i], args.shares[i], args.warmup, args.cycles)
        };
        let hist = sys.l2().read_latency(thread);
        let norm = if target > 0.0 { m.ipc[i] / target } else { f64::NAN };
        println!(
            "{:<10} {:>7} {:>8.3} {:>8.3} {:>9.3} {:>12.1} {:>9.1}%",
            w.name(),
            args.shares[i].to_string(),
            m.ipc[i],
            target,
            norm,
            hist.mean(),
            m.gathering_rate[i] * 100.0,
        );
    }
    println!(
        "utilization: data {:.1}%  bus {:.1}%  tag {:.1}%",
        m.util.data_array * 100.0,
        m.util.data_bus * 100.0,
        m.util.tag_array * 100.0
    );

    if let Some(path) = &args.trace {
        let log = trace_log.expect("recorder installed before the measured window");
        let doc = vpc::trace::chrome_trace("simulate", &log);
        vpc::trace::write_chrome_trace(path, &doc)
            .map_err(|e| format!("cannot write trace {}: {e}", path.display()))?;
        eprintln!(
            "-- wrote {} ({} events, {} dropped) --",
            path.display(),
            log.events().len(),
            log.dropped(),
        );
    }
    if let Some(ledger) = &ledger {
        eprint!("{ledger}");
        for (i, w) in args.workloads.iter().enumerate() {
            let hist = sys.l2().read_latency(ThreadId(i as u8));
            eprintln!(
                "  {} L2 read latency p50/p90/p99: {}/{}/{} cycles",
                w.name(),
                hist.p50(),
                hist.p90(),
                hist.p99(),
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
