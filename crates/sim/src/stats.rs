//! Statistics primitives used to produce the paper's utilization figures.

use std::fmt;

use crate::types::Cycle;

/// A simple monotonically increasing event counter.
///
/// ```
/// use vpc_sim::Counter;
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `total`, or 0 if `total` is zero.
    pub fn fraction_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Tracks how many cycles a resource was busy, yielding the utilization
/// series plotted in Figures 5, 6 and 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UtilizationMeter {
    busy: u64,
}

impl UtilizationMeter {
    /// Records `cycles` of busy time (e.g. one 8-cycle data array access).
    #[inline]
    pub fn add_busy(&mut self, cycles: u64) {
        self.busy += cycles;
    }

    /// Total busy cycles recorded.
    #[inline]
    pub fn busy_cycles(self) -> u64 {
        self.busy
    }

    /// Utilization over an elapsed window, clamped to `[0, 1]`.
    pub fn utilization(self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.busy as f64 / elapsed as f64).min(1.0)
        }
    }
}

/// An events-per-cycle rate meter (e.g. IPC).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RateMeter {
    events: u64,
}

impl RateMeter {
    /// Records `n` events.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.events += n;
    }

    /// Total events recorded.
    #[inline]
    pub fn events(self) -> u64 {
        self.events
    }

    /// Events per elapsed cycle (e.g. instructions per cycle).
    pub fn rate(self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.events as f64 / elapsed as f64
        }
    }
}

/// A power-of-two-bucketed latency histogram.
///
/// Bucket `k` counts samples in `[2^k, 2^(k+1))` (bucket 0 covers 0 and 1).
/// Cheap to record, mergeable, and accurate enough for the percentile
/// questions the preemption-latency analysis asks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: [0; 32], count: 0, sum: 0, max: 0 }
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.max(1).leading_zeros() as usize - 1).min(31)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (`p` in `0..=1`): the upper bound of the
    /// bucket containing the p-quantile sample. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << (k + 1)).min(self.max.max(1));
            }
        }
        self.max
    }

    /// Median sample bound — shorthand for `percentile(0.5)`.
    pub fn p50(&self) -> u64 {
        self.percentile(0.5)
    }

    /// 90th-percentile sample bound — shorthand for `percentile(0.9)`.
    pub fn p90(&self) -> u64 {
        self.percentile(0.9)
    }

    /// 99th-percentile sample bound — shorthand for `percentile(0.99)`.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Harmonic mean of a slice of positive values — the paper's headline
/// throughput metric over normalized IPCs.
///
/// Returns 0 if the slice is empty or any value is non-positive (a starved
/// thread's normalized IPC of zero drives the harmonic mean to zero, which
/// is exactly the property that makes it a fairness-sensitive metric).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for &v in values {
        if v <= 0.0 {
            return 0.0;
        }
        sum += 1.0 / v;
    }
    values.len() as f64 / sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.fraction_of(40) - 0.25).abs() < 1e-12);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn utilization_clamps() {
        let mut u = UtilizationMeter::default();
        u.add_busy(150);
        assert_eq!(u.utilization(100), 1.0);
        assert!((u.utilization(300) - 0.5).abs() < 1e-12);
        assert_eq!(UtilizationMeter::default().utilization(0), 0.0);
    }

    #[test]
    fn rate_meter_ipc() {
        let mut r = RateMeter::default();
        r.add(500);
        assert!((r.rate(1000) - 0.5).abs() < 1e-12);
        assert_eq!(r.rate(0), 0.0);
    }

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((harmonic_mean(&[1.0, 0.5]) - (2.0 / 3.0)).abs() < 1e-12);
        // A starved thread zeroes the metric.
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn histogram_mean_count_max() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        assert!((256..=1024).contains(&p50), "p50 bucket bound {p50}");
        assert!(h.percentile(1.0) >= 512);
        assert!(h.percentile(0.0) >= 1);
        assert_eq!(Histogram::new().percentile(0.5), 0);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn harmonic_mean_below_arithmetic() {
        let vals = [0.3, 0.9, 0.7, 1.0];
        let am: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(harmonic_mean(&vals) <= am);
    }
}
