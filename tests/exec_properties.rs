//! Property tests for the `vpc_sim::exec` job-map layer — the machinery
//! every experiment grid now runs on. The properties here are the
//! contract the serial-equivalence guarantee rests on: each job runs
//! exactly once, results come back in input order regardless of worker
//! interleaving, and a panicking job surfaces its label instead of
//! hanging the batch.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use vpc_sim::check::{self, Config};
use vpc_sim::ensure;
use vpc_sim::exec::{self, Job};

#[test]
fn every_job_runs_exactly_once_in_input_order() {
    check::forall("exec_runs_once_in_order", Config::cases(64), |rng| {
        let n = rng.below(40) as usize;
        let parallelism = 1 + rng.below(12) as usize;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let jobs = counters
            .iter()
            .enumerate()
            .map(|(i, counter)| {
                Job::new(format!("case/{i}"), move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i
                })
            })
            .collect();
        let out = exec::map_indexed(jobs, parallelism);
        ensure!(
            out == (0..n).collect::<Vec<_>>(),
            "results out of order at n={n}, parallelism={parallelism}: {out:?}"
        );
        for (i, counter) in counters.iter().enumerate() {
            let runs = counter.load(Ordering::Relaxed);
            ensure!(runs == 1, "job {i} ran {runs} times (n={n}, parallelism={parallelism})");
        }
        Ok(())
    });
    exec::take_timings();
}

#[test]
fn one_timing_per_job_in_input_order() {
    check::forall("exec_timings_match_jobs", Config::cases(32), |rng| {
        let n = rng.below(20) as usize;
        let parallelism = 1 + rng.below(6) as usize;
        exec::take_timings();
        let jobs = (0..n).map(|i| Job::new(format!("timed/{i}"), move || i)).collect::<Vec<_>>();
        exec::map_indexed(jobs, parallelism);
        let timings = exec::take_timings();
        ensure!(timings.len() == n, "{} timings for {n} jobs", timings.len());
        for (i, timing) in timings.iter().enumerate() {
            ensure!(
                timing.label == format!("timed/{i}"),
                "timing {i} out of order: {:?}",
                timing.label
            );
        }
        Ok(())
    });
}

#[test]
fn panicking_job_surfaces_its_label() {
    check::forall("exec_panic_labels", Config::cases(32), |rng| {
        let n = 1 + rng.below(20) as usize;
        let parallelism = 1 + rng.below(8) as usize;
        let victim = rng.below(n as u64) as usize;
        let jobs: Vec<Job<'_, usize>> = (0..n)
            .map(|i| {
                Job::new(format!("grid/{i}"), move || {
                    if i == victim {
                        panic!("injected failure {i}");
                    }
                    i
                })
            })
            .collect();
        let payload =
            panic::catch_unwind(AssertUnwindSafe(|| exec::map_indexed(jobs, parallelism)))
                .err()
                .ok_or_else(|| {
                    format!("batch with a panicking job returned Ok (victim {victim})")
                })?;
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".into());
        ensure!(
            message.contains(&format!("'grid/{victim}'")),
            "panic message lost the label: {message:?}"
        );
        ensure!(
            message.contains(&format!("injected failure {victim}")),
            "panic message lost the payload: {message:?}"
        );
        Ok(())
    });
    exec::take_timings();
}

#[test]
fn results_are_independent_of_parallelism() {
    check::forall("exec_parallelism_invariance", Config::cases(32), |rng| {
        let n = rng.below(30) as usize;
        let inputs: Vec<u64> = (0..n).map(|_| rng.below(1 << 20)).collect();
        let run = |parallelism: usize| {
            let jobs = inputs
                .iter()
                .map(|&v| Job::new("mix", move || v.wrapping_mul(0x9E37_79B9).rotate_left(13)))
                .collect();
            exec::map_indexed(jobs, parallelism)
        };
        let serial = run(1);
        for parallelism in [2usize, 4, 16] {
            let parallel = run(parallelism);
            ensure!(
                parallel == serial,
                "parallelism {parallelism} changed the results: {parallel:?} vs {serial:?}"
            );
        }
        Ok(())
    });
    exec::take_timings();
}
