//! Microbenchmarks of the simulator's building blocks: arbiter grant
//! throughput (the paper's Figure 3 hardware is a handful of comparators,
//! so the software model must also be cheap), capacity-manager victim
//! selection, and the DRAM channel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use vpc::prelude::*;
use vpc_arbiters::ArbRequest;
use vpc_capacity::{ReplacementPolicy, TagSet, TrueLru, VpcCapacityManager};
use vpc_mem::{DramChannel, MemConfig};
use vpc_sim::{AccessKind, LineAddr, SplitMix64};

fn bench_arbiters(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter_grant");
    let q = Share::new(1, 4).unwrap();
    for policy in [
        ArbiterPolicy::Fcfs,
        ArbiterPolicy::RowFcfs,
        ArbiterPolicy::RoundRobin,
        ArbiterPolicy::vpc_equal(4),
        ArbiterPolicy::Drr { shares: vec![q; 4] },
        ArbiterPolicy::Sfq { shares: vec![q; 4] },
    ] {
        group.bench_function(BenchmarkId::from_parameter(policy.label()), |b| {
            b.iter_batched(
                || {
                    let mut arb = policy.build(4);
                    for i in 0..64u64 {
                        let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
                        let service = if kind.is_read() { 8 } else { 16 };
                        arb.enqueue(ArbRequest::new(i, ThreadId((i % 4) as u8), kind, service), i);
                    }
                    arb
                },
                |mut arb| {
                    let mut now = 0;
                    while let Some(req) = arb.select(now) {
                        now += req.service_time;
                        black_box(req.id);
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("victim_selection");
    let mut set = TagSet::new(32);
    let mut rng = SplitMix64::new(1);
    for way in 0..32 {
        set.fill(way, LineAddr(way as u64), ThreadId((way % 4) as u8), rng.below(1000));
    }
    let lru = TrueLru;
    let vpc = VpcCapacityManager::equal(4, 32);
    group.bench_function("true_lru", |b| {
        b.iter(|| black_box(lru.choose_victim(black_box(&set), ThreadId(0))))
    });
    group.bench_function("vpc_way_quota", |b| {
        b.iter(|| black_box(vpc.choose_victim(black_box(&set), ThreadId(0))))
    });
    group.finish();
}

fn bench_dram_channel(c: &mut Criterion) {
    c.bench_function("dram_channel_16_reads", |b| {
        b.iter_batched(
            || DramChannel::new(MemConfig::ddr2_800()),
            |mut ch| {
                let mut now = 0;
                for i in 0..16u64 {
                    while !ch.bank_available(LineAddr(i), now) {
                        now += 5;
                    }
                    black_box(ch.issue(LineAddr(i), AccessKind::Read, i, now));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_system_cycle_rate(c: &mut Criterion) {
    // Whole-system simulation rate: cycles per second of the 4-thread
    // Table 1 machine under VPC arbiters.
    c.bench_function("cmp_system_10k_cycles", |b| {
        b.iter_batched(
            || {
                let mut cfg = CmpConfig::table1().with_arbiter(ArbiterPolicy::vpc_equal(4));
                cfg.l2.total_sets = 1024;
                let mix = [
                    WorkloadSpec::Spec("art"),
                    WorkloadSpec::Spec("mcf"),
                    WorkloadSpec::Spec("gcc"),
                    WorkloadSpec::Spec("gzip"),
                ];
                CmpSystem::new(cfg, &mix)
            },
            |mut sys| {
                sys.run(10_000);
                black_box(sys.now());
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_arbiters,
    bench_capacity,
    bench_dram_channel,
    bench_system_cycle_rate
);
criterion_main!(benches);
