//! Figure 4: cache timing of back-to-back reads to different banks.
//!
//! The paper's timing diagram shows two reads issued on consecutive
//! interconnect cycles to different banks: each takes 16 processor cycles
//! to its critical word (2 interconnect + 4 tag + 8 data + 2 first bus
//! beat), and because the banks' pipelines are independent the second
//! finishes right behind the first rather than serializing.

use std::fmt;

use vpc_mem::MemConfig;
use vpc_sim::{AccessKind, CacheRequest, LineAddr, ThreadId};

use vpc_cache::SharedL2;

use crate::config::CmpConfig;

/// Timing of the two reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig4Result {
    /// Cycles from issue to critical word, first read (bank 1).
    pub first_latency: u64,
    /// Cycles from issue to critical word, second read (bank 2).
    pub second_latency: u64,
}

impl Fig4Result {
    /// The pipelining gain: how much sooner the second read finishes than
    /// two serialized accesses would.
    pub fn overlap(&self) -> i64 {
        2 * self.first_latency as i64 - self.second_latency as i64
    }
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4: back-to-back reads to different cache banks")?;
        writeln!(
            f,
            "  read to bank 1: critical word after {:2} cycles (paper: 16)",
            self.first_latency
        )?;
        writeln!(
            f,
            "  read to bank 2: critical word after {:2} cycles (paper: ~18, pipelined)",
            self.second_latency
        )?;
        writeln!(f, "  bank-level overlap saves {} cycles vs. serialized access", self.overlap())
    }
}

/// Runs the two-read timing experiment on an otherwise idle Table 1 cache.
pub fn run(base: &CmpConfig) -> Fig4Result {
    let mut l2 = SharedL2::new(base.l2.clone(), MemConfig::ddr2_800());
    let thread = ThreadId(0);
    // Lines 0 and 1 interleave to banks 0 and 1.
    let lines = [LineAddr(0), LineAddr(1)];
    // Warm both lines (the figure shows hits).
    let mut now = 0;
    for (i, &line) in lines.iter().enumerate() {
        l2.submit(CacheRequest { thread, line, kind: AccessKind::Read, token: i as u64 }, now);
        while l2.pop_response(now).is_none() {
            l2.tick(now);
            now += 1;
            assert!(now < 10_000, "warmup read did not complete");
        }
    }
    // Let everything drain, and align to an even (L2 clock) cycle.
    for _ in 0..64 {
        l2.tick(now);
        now += 1;
    }
    if now % 2 != 0 {
        l2.tick(now);
        now += 1;
    }

    // Issue the two reads back-to-back.
    let start = now;
    l2.submit(CacheRequest { thread, line: lines[0], kind: AccessKind::Read, token: 10 }, now);
    l2.submit(CacheRequest { thread, line: lines[1], kind: AccessKind::Read, token: 11 }, now);
    let mut first = None;
    let mut second = None;
    while first.is_none() || second.is_none() {
        l2.tick(now);
        while let Some(resp) = l2.pop_response(now) {
            match resp.token {
                10 => first = Some(now - start),
                11 => second = Some(now - start),
                _ => unreachable!("unexpected token"),
            }
        }
        now += 1;
        assert!(now < start + 1000, "timing experiment did not complete");
    }
    Fig4Result {
        first_latency: first.expect("first read completed"),
        second_latency: second.expect("second read completed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_reads_pipeline_across_banks() {
        let mut base = CmpConfig::table1();
        base.l2.total_sets = 512;
        let r = run(&base);
        assert!(
            (14..=20).contains(&r.first_latency),
            "first read ~16 cycles, got {}",
            r.first_latency
        );
        assert!(
            r.second_latency < 2 * r.first_latency,
            "second read must overlap, got {} vs first {}",
            r.second_latency,
            r.first_latency
        );
        assert!(r.second_latency >= r.first_latency, "second read is behind the first");
        let text = r.to_string();
        assert!(text.contains("Figure 4"));
    }
}
