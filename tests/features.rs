//! Integration tests for the library's extension features: trace-driven
//! workloads through the full system, and live VPM repartitioning.

use vpc::prelude::*;
use vpc::vpm::{VpmAllocation, VpmConfig};
use vpc_sim::ThreadId;
use vpc_workloads::{record, spec, TraceWorkload};

fn quick_config(threads: usize) -> CmpConfig {
    let mut cfg = CmpConfig::table1_with_threads(threads);
    cfg.l2.total_sets = 1024;
    cfg
}

#[test]
fn recorded_trace_reproduces_the_generator_through_the_full_system() {
    // Record a long prefix of the art generator, then run the generator
    // and the recorded trace through identical systems: as long as the
    // trace has not wrapped, the machines are cycle-identical.
    let ops = 200_000;
    let mut generator = spec::workload("art", ThreadId(0)).unwrap();
    let text = record(&mut generator, ops);
    let trace: TraceWorkload = text.parse().unwrap();
    assert_eq!(trace.len(), ops);

    let fresh_generator = spec::workload("art", ThreadId(0)).unwrap();
    let mut sys_gen = CmpSystem::with_workloads(quick_config(1), vec![Box::new(fresh_generator)]);
    let mut sys_trace = CmpSystem::with_workloads(quick_config(1), vec![Box::new(trace)]);

    // 30k cycles dispatch far fewer than 200k ops, so no wrap occurs.
    sys_gen.run(30_000);
    sys_trace.run(30_000);
    assert_eq!(
        sys_gen.core(ThreadId(0)).retired(),
        sys_trace.core(ThreadId(0)).retired(),
        "trace replay must be cycle-identical to the generator"
    );
    assert!(sys_gen.core(ThreadId(0)).retired() > 1_000);
}

#[test]
fn vpm_repartitioning_shifts_qos_between_live_threads() {
    // Phase 1: thread 0 owns 3/4 of the machine. Phase 2: the OS flips the
    // partitioning. Both phases' IPC ratios must follow the registers.
    let shares = vec![Share::new(3, 4).unwrap(), Share::new(1, 4).unwrap()];
    let cfg = quick_config(2).with_vpc_shares(shares);
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Loads]);

    sys.run(10_000);
    let snap = sys.snapshot();
    sys.run(40_000);
    let phase1 = sys.measure(&snap);
    assert!(phase1.ipc[0] > phase1.ipc[1] * 2.0, "phase 1: thread 0 dominates: {:?}", phase1.ipc);

    let flipped = VpmConfig::new(vec![
        VpmAllocation::symmetric(Share::new(1, 4).unwrap()),
        VpmAllocation::symmetric(Share::new(3, 4).unwrap()),
    ])
    .unwrap();
    assert!(flipped.apply(&mut sys));

    sys.run(10_000); // settle
    let snap = sys.snapshot();
    sys.run(40_000);
    let phase2 = sys.measure(&snap);
    assert!(
        phase2.ipc[1] > phase2.ipc[0] * 2.0,
        "phase 2: thread 1 dominates after repartitioning: {:?}",
        phase2.ipc
    );
}

#[test]
fn per_thread_utilization_attribution_sums_to_total() {
    let cfg = quick_config(2).with_arbiter(ArbiterPolicy::vpc_equal(2));
    let mut sys = CmpSystem::new(cfg, &[WorkloadSpec::Loads, WorkloadSpec::Stores]);
    let m = sys.run_measured(10_000, 40_000);
    let sum: f64 = m.data_util_per_thread.iter().sum();
    assert!(
        (sum - m.util.data_array).abs() < 0.02,
        "per-thread attribution ({sum:.3}) must sum to the total ({:.3})",
        m.util.data_array
    );
    assert!(m.data_util_per_thread.iter().all(|&u| u > 0.0));
}

#[test]
fn heterogeneous_cores_compose_with_the_system() {
    // One prefetching low-MLP core next to a stock core.
    let cfg = quick_config(2).with_arbiter(ArbiterPolicy::vpc_equal(2));
    let mut stock = cfg.core;
    stock.prefetch_degree = 0;
    let mut prefetching = cfg.core;
    prefetching.l1.lmq_entries = 2;
    prefetching.prefetch_degree = 4;
    let mut sys = CmpSystem::with_core_configs(
        cfg,
        &[stock, prefetching],
        &[WorkloadSpec::Spec("gcc"), WorkloadSpec::Spec("swim")],
    );
    let m = sys.run_measured(10_000, 40_000);
    assert!(m.ipc[0] > 0.0 && m.ipc[1] > 0.0);
    assert!(sys.core(ThreadId(1)).stats().prefetches.get() > 0, "thread 1 prefetches");
    assert_eq!(sys.core(ThreadId(0)).stats().prefetches.get(), 0, "thread 0 does not");
}

/// Full-length calibration regression: the 18 SPEC profiles preserve the
/// paper's Figure 6 ordering and aggregate. All 18 standard-budget runs
/// go through the `exec` job pool, which keeps this fast enough to run
/// by default.
#[test]
fn spec_calibration_matches_figure6_shape() {
    use vpc::experiments::{fig6, RunBudget};
    let base = CmpConfig::table1();
    let r = fig6::run(&base, RunBudget::standard());
    // Mean data-array utilization near the paper's 26%.
    let mean = r.mean_data_util();
    assert!(
        (0.22..0.32).contains(&mean),
        "mean data utilization {mean:.3} should be near the paper's 0.26"
    );
    // The plotting order (most to least aggressive) is non-increasing
    // within a tolerance band.
    let utils: Vec<f64> = r.rows.iter().map(|row| row.util.data_array).collect();
    for w in utils.windows(2) {
        assert!(w[1] <= w[0] * 1.15, "ordering violated: {utils:?}");
    }
    // Streaming benchmarks invert tag vs data.
    let swim = r.row("swim").unwrap();
    assert!(swim.util.tag_array >= swim.util.data_array * 0.9);
}
