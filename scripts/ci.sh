#!/usr/bin/env bash
# Tier-1 verification, run fully offline: the workspace is hermetic
# (std-only, path dependencies only), so a network-less build MUST work.
# Any attempt to pull a registry crate is a failure, not an environment
# problem.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== build (release, offline) =="
cargo build --release
cargo build --release --workspace --bins

echo "== test (workspace, including formerly-slow ignored tests) =="
cargo test -q --workspace -- --include-ignored

echo "== rustdoc (warnings are errors, binaries included) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --bins

echo "== fmt =="
cargo fmt --all -- --check

if command -v cargo-clippy >/dev/null 2>&1; then
    echo "== clippy =="
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== clippy not installed; skipping =="
fi

echo "== perf smoke (non-gating) =="
# Wall-clock comparison against the checked-in BENCH_5.json baseline.
# Informational only: shared CI hardware is too noisy to gate on.
if [ -f BENCH_5.json ]; then
    ./target/release/perf_smoke || echo "perf smoke failed (non-gating)"
else
    echo "no BENCH_5.json baseline checked in; skipping"
fi

echo "CI OK"
