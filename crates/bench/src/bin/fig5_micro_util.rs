//! Figure 5: microbenchmark L2 utilization vs. number of banks.
//!
//! `--trace out.json` additionally records the 4-thread contention
//! variant (one Loads stream vs. three Stores streams under equal-share
//! VPC arbiters) as a Chrome trace_event file, plus one per-job trace
//! for each grid point. `--metrics` prints the QoS ledger of the same
//! scenario under VPC and FCFS to stderr. Neither flag changes stdout.

use std::time::Instant;

use vpc::experiments::fig5;
use vpc::prelude::*;
use vpc::report::{to_json, Fig5Report};
use vpc_sim::trace;

fn main() {
    let budget = vpc_bench::budget_from_args();
    let jobs = vpc_bench::jobs_from_args();
    let trace_path = vpc_bench::trace_from_args();
    let start = Instant::now();
    let result = fig5::run(&CmpConfig::table1(), budget);
    let wall = start.elapsed();
    if vpc_bench::json_requested() {
        println!("{}", to_json(&Fig5Report::from(&result)));
    } else {
        vpc_bench::header("Figure 5", budget);
        println!("{result}");
    }
    vpc_bench::report_timings("fig5", jobs, wall);

    if let Some(path) = &trace_path {
        // The headline trace is the 4-thread contention scenario: that is
        // where grant/defer interleaving and virtual times mean something.
        // The single-thread grid points land in per-job side files.
        let log = fig5::trace_scenario(&CmpConfig::table1(), budget, trace::DEFAULT_CAPACITY);
        let doc = vpc::trace::chrome_trace("fig5/contention Loads+3xStores", &log);
        if let Err(err) = vpc::trace::write_chrome_trace(path, &doc) {
            eprintln!("error: cannot write trace {}: {err}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "-- wrote {} ({} events, {} dropped; contention scenario) --",
            path.display(),
            log.events().len(),
            log.dropped(),
        );
        for (label, job_log) in trace::take_job_logs() {
            let job_path = vpc_bench::job_trace_path(path, &label);
            let job_doc = vpc::trace::chrome_trace(&label, &job_log);
            if let Err(err) = vpc::trace::write_chrome_trace(&job_path, &job_doc) {
                eprintln!("error: cannot write trace {}: {err}", job_path.display());
                std::process::exit(1);
            }
        }
    }

    if vpc_bench::metrics_requested() {
        let base = CmpConfig::table1();
        for (name, arbiter) in
            [("VPC (equal shares)", ArbiterPolicy::vpc_equal(4)), ("FCFS", ArbiterPolicy::Fcfs)]
        {
            let ledger = fig5::qos_ledger(&base, arbiter, budget);
            eprintln!("-- contention scenario under {name} --");
            eprint!("{ledger}");
        }
    }
}
