//! Workloads for the Virtual Private Caches evaluation.
//!
//! * [`micro`] — the paper's Table 2 microbenchmarks: **Loads** (a constant
//!   stream of L2 read hits) and **Stores** (a constant stream of L2
//!   writes), operating on a 32 KB array with 64-byte rows — twice the L1
//!   size, so every access reaches the L2.
//! * [`trace`] — trace-driven workloads: a line-oriented text format, a
//!   replaying [`TraceWorkload`], and a recorder — for users with real
//!   traces.
//! * [`spec`] — synthetic stand-ins for the 18 SPEC CPU 2000 benchmarks the
//!   paper plots. The real sampled traces are proprietary; each
//!   [`spec::SyntheticSpec`] generator is parameterized (instruction mix,
//!   L1/L2 miss behavior, store locality, burstiness) so its *solo* L2
//!   utilization and write mix land near the paper's Figures 6 and 7,
//!   which is what determines the benchmark's behavior in the sharing
//!   experiments — the VPC mechanisms see only the request stream.
//!
//! # Examples
//!
//! ```
//! use vpc_cpu::Workload;
//! use vpc_workloads::{loads_micro, spec};
//!
//! let mut loads = loads_micro(vpc_sim::ThreadId(0));
//! assert_eq!(loads.name(), "Loads");
//!
//! let art = spec::workload("art", vpc_sim::ThreadId(1)).unwrap();
//! assert_eq!(art.name(), "art");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod spec;
pub mod trace;

pub use micro::{loads_micro, stores_micro};
pub use spec::{SpecParams, SyntheticSpec, SPEC_NAMES};
pub use trace::{format_trace, parse_trace, record, TraceWorkload};
