//! QoS under hostile load: a soft-real-time application (modeled by the
//! `mcf` profile — low memory-level parallelism, latency-sensitive) shares
//! the L2 with three threads intentionally inundating the cache with
//! stores, the paper's worst-case background (Section 5.3's second
//! experiment).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example qos_guarantee
//! ```

use vpc::experiments::fig9;
use vpc::prelude::*;

fn main() {
    let base = CmpConfig::table1();
    let (warmup, window) = (40_000, 160_000);
    let budget = vpc::experiments::RunBudget { warmup, window };
    let subject = "mcf";
    let quarter = Share::new(1, 4).unwrap();

    println!("== QoS guarantee: {subject} vs 3x Stores (malicious background) ==\n");

    // Standalone reference: the subject on a full private machine with a
    // quarter of the cache ways.
    let full = target_ipc(&base, WorkloadSpec::Spec(subject), Share::FULL, quarter, warmup, window);
    println!("standalone (full bandwidth): IPC {full:.3}\n");

    // Unmanaged baseline.
    let fcfs = fig9::run_subject(&base, subject, ArbiterPolicy::Fcfs, budget);
    println!(
        "FCFS shared cache:           IPC {:.3}  ({:.0}% of standalone)",
        fcfs,
        100.0 * fcfs / full
    );

    // VPC with increasing guarantees.
    for (num, den) in [(1u32, 4u32), (1, 2), (1, 1)] {
        let policy = fig9::subject_share_policy(num, den);
        let ipc = fig9::run_subject(&base, subject, policy, budget);
        let beta = Share::new(num, den).unwrap();
        let target = target_ipc(&base, WorkloadSpec::Spec(subject), beta, quarter, warmup, window);
        let met = if ipc >= target * 0.95 { "met" } else { "MISSED" };
        println!(
            "VPC beta={beta}:   IPC {:.3}  (target {:.3}, {met}; {:.0}% of standalone)",
            ipc,
            target,
            100.0 * ipc / full
        );
    }

    println!(
        "\nThe VPC arbiter bounds the background threads' impact: the subject\n\
         never falls below its private-machine target, and excess bandwidth\n\
         the Stores threads cannot claim flows back to it."
    );
}
