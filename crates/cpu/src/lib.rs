//! Out-of-order core model for the Virtual Private Caches reproduction.
//!
//! Each simulated processor is a parameterized out-of-order core in the
//! spirit of the paper's IBM 970 configuration (Table 1): a reorder buffer
//! of 20 five-instruction dispatch groups, load/store reorder queues,
//! two load/store units, a private write-through L1 D-cache with MSHRs and
//! an LMQ depth limit, and in-order retirement. Instructions come from a
//! [`Workload`] — an infinite generator that produces non-memory
//! instructions, loads and stores at line granularity.
//!
//! The performance-relevant behaviors the sharing experiments depend on are
//! modeled explicitly:
//!
//! * memory-level parallelism is bounded by the LMQ/MSHRs, the LRQ and the
//!   ROB, making bursty miss streams (and their preemption-latency
//!   amortization, §4.1.2) emerge naturally;
//! * stores are posted write-through traffic throttled by the half-frequency
//!   crossbar port and back-pressured by the bank input credits and store
//!   gathering buffers;
//! * dispatch stalls when in-order structures fill, which is how L2
//!   bandwidth starvation turns into IPC loss.
//!
//! # Examples
//!
//! ```
//! use vpc_cpu::{Core, CoreConfig, Op, Workload};
//! use vpc_sim::ThreadId;
//!
//! /// A trivial workload: pure non-memory instructions.
//! #[derive(Debug)]
//! struct Spin;
//! impl Workload for Spin {
//!     fn next_op(&mut self) -> Op {
//!         Op::NonMem
//!     }
//!     fn name(&self) -> &'static str {
//!         "spin"
//!     }
//! }
//!
//! let core = Core::new(CoreConfig::table1(), ThreadId(0), Box::new(Spin));
//! assert_eq!(core.retired(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod workload;

pub use crate::core::{Core, CoreConfig};
pub use workload::{FixedTrace, Op, Workload};
