//! Memory-system ordering and isolation properties under random traffic.

use vpc_mem::{ChannelMode, MemConfig, MemRequest, MemoryController};
use vpc_sim::check::{self, Config};
use vpc_sim::{ensure, ensure_eq, AccessKind, LineAddr, Share, ThreadId};

fn read(thread: u8, line: u64, token: u64) -> MemRequest {
    MemRequest { thread: ThreadId(thread), line: LineAddr(line), kind: AccessKind::Read, token }
}

/// With a private channel, a thread's reads to the *same bank* complete
/// in issue order, and every read completes exactly once.
#[test]
fn private_channel_reads_complete_exactly_once() {
    check::forall("private_channel_reads_complete_exactly_once", Config::cases(24), |rng| {
        let mut mc = MemoryController::new(MemConfig::ddr2_800(), 2);
        let mut submitted = std::collections::BTreeSet::new();
        let mut completed = std::collections::BTreeSet::new();
        let mut token = 0u64;
        for now in 0..5000u64 {
            if rng.chance(0.1) {
                let t = rng.below(2) as u8;
                token += 1;
                if mc.enqueue(read(t, rng.below(64), token), now) {
                    submitted.insert(token);
                }
            }
            mc.tick(now);
            while let Some(r) = mc.pop_response() {
                ensure!(completed.insert(r.token), "token {} completed twice", r.token);
            }
        }
        let mut now = 5000;
        while !mc.is_idle() && now < 100_000 {
            mc.tick(now);
            while let Some(r) = mc.pop_response() {
                ensure!(completed.insert(r.token));
            }
            now += 1;
        }
        ensure!(mc.is_idle(), "controller drains");
        ensure_eq!(submitted, completed);
        Ok(())
    });
}

/// Shared FQ channel: the same conservation property holds with any
/// share configuration, including zero-share threads.
#[test]
fn shared_fq_conserves_requests() {
    check::forall("shared_fq_conserves_requests", Config::cases(24), |rng| {
        let num = rng.below(5) as u32;
        let shares = vec![Share::new(num, 4).unwrap(), Share::new(4 - num, 4).unwrap()];
        let mut mc =
            MemoryController::with_mode(MemConfig::ddr2_800(), 2, ChannelMode::SharedFq { shares });
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut token = 0u64;
        for now in 0..4000u64 {
            if rng.chance(0.1) {
                let t = rng.below(2) as u8;
                token += 1;
                if mc.enqueue(read(t, rng.below(64), token), now) {
                    submitted += 1;
                }
            }
            mc.tick(now);
            while mc.pop_response().is_some() {
                completed += 1;
            }
        }
        let mut now = 4000;
        while !mc.is_idle() && now < 200_000 {
            mc.tick(now);
            while mc.pop_response().is_some() {
                completed += 1;
            }
            now += 1;
        }
        ensure!(mc.is_idle(), "shared channel drains");
        ensure_eq!(submitted, completed);
        Ok(())
    });
}
